// Orchestrator for the multi-pass analyzer (see lint.h for the pass map).
// This file owns the layer model, file discovery, the cache-aware pass-1
// driver, the v1 rule families (re-expressed over the FileSummary IR with
// byte-identical diagnostics), central emission, and the baseline filter.
#include "sdslint/lint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sdslint/baseline.h"
#include "sdslint/cache.h"
#include "sdslint/json.h"
#include "sdslint/model.h"
#include "sdslint/passes.h"
#include "sdslint/source.h"
#include "sdslint/symbols.h"

namespace sdslint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Layer model
// ---------------------------------------------------------------------------

struct LayerInfo {
  const char* name;
  int rank;
  bool deterministic;
};

// The DAG from DESIGN.md §11. Equal rank == sibling layers that must not
// include each other. tests/bench/tools/examples sit above everything and may
// include anything.
constexpr LayerInfo kLayers[] = {
    {"common", 0, true},
    {"stats", 1, true},      {"signal", 1, true},    {"telemetry", 1, false},
    {"sim", 2, true},
    {"vm", 3, true},
    {"pcm", 4, true},
    {"attacks", 5, true},    {"workloads", 5, true}, {"detect", 5, true},
    {"fault", 5, true},
    {"cluster", 6, true},    {"obs", 6, true},
    {"svc", 7, true},
    {"eval", 8, false},
    {"tests", 100, false},   {"bench", 100, false},  {"tools", 100, false},
    {"examples", 100, false},
};

const LayerInfo* FindLayer(const std::string& name) {
  for (const auto& l : kLayers) {
    if (name == l.name) return &l;
  }
  return nullptr;
}

// Layers whose sources live under src/<layer>/ (vs the top-level trees).
bool IsSrcLayer(const std::string& name) {
  const LayerInfo* l = FindLayer(name);
  return l != nullptr && l->rank < 100;
}

// Legal same-rank edges: within the rank-1 band the spectral code builds on
// descriptive statistics, never the reverse.
struct SiblingEdge {
  const char* from;
  const char* to;
};
constexpr SiblingEdge kAllowedSiblingEdges[] = {
    {"signal", "stats"},
};

bool SiblingEdgeAllowed(const std::string& from, const std::string& to) {
  for (const SiblingEdge& e : kAllowedSiblingEdges) {
    if (from == e.from && to == e.to) return true;
  }
  return false;
}

// Layers whose dependents are enumerated explicitly: the rank test alone
// would let EVERY higher layer include them, but these seams are narrower
// than their rank. The non-layer trees (tests/bench/tools/examples, rank >=
// 100) may always include them.
struct RestrictedLayer {
  const char* name;
  const char* dependents;  // comma-separated src layers allowed to include it
};
constexpr RestrictedLayer kRestrictedLayers[] = {
    // fault wraps two seams of the response pipeline: the pcm SampleSource
    // (monitoring-plane injection) and the Actuator's ActuationFaultPlan
    // (actuation-plane injection). Only the layers that own those seams —
    // cluster and eval — may depend on it; the detectors under test must
    // never see the injection machinery. svc joins them for its stable-store
    // crash points (fault/service_plan.h).
    {"fault", "cluster,eval,svc"},
    // obs is the off-path observability plane: rollups, SLO scoring and
    // detector snapshots consume detector state but nothing on the
    // decision path may grow a dependency on its aggregates. Only eval
    // (which replays merged streams) and svc (whose checkpoints ride the
    // versioned snapshot envelope) may include it from src/.
    {"obs", "eval,svc"},
    // svc is the streaming service shell around the detectors; only the
    // evaluation harness may drive it from src/.
    {"svc", "eval"},
};

const RestrictedLayer* FindRestricted(const std::string& name) {
  for (const RestrictedLayer& r : kRestrictedLayers) {
    if (name == r.name) return &r;
  }
  return nullptr;
}

bool RestrictedDependentAllowed(const RestrictedLayer& restricted,
                                const std::string& from) {
  std::string cur;
  for (const char* p = restricted.dependents;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (cur == from) return true;
      cur.clear();
      if (*p == '\0') return false;
    } else {
      cur.push_back(*p);
    }
  }
}

// Wall-clock reads that are part of a layer's charter even though the layer
// would otherwise be rank-checked. Today: the telemetry profiler's kWall
// domain. telemetry is already non-deterministic by table, so these entries
// are documentation-grade belt-and-braces — they keep the tool correct if
// someone later flips telemetry deterministic.
struct BuiltinAllow {
  const char* path_fragment;
  const char* rule;
};
constexpr BuiltinAllow kBuiltinAllows[] = {
    {"src/telemetry/", kRuleDetClock},
    {"src/eval/experiment", kRuleDetClock},  // wall-clock run timing report
};

// Why-texts for the direct determinism sink tokens (pass 1 records the
// occurrences; the message stays identical to v1).
struct BanWhy {
  const char* token;
  const char* why;
};
constexpr BanWhy kBanWhys[] = {
    {"rand",
     "libc rand() draws from ambient global state; use sds::Rng seeded "
     "from the run config"},
    {"srand", "seeding the global C RNG makes run order matter; use sds::Rng"},
    {"random_device",
     "std::random_device is nondeterministic by definition; use sds::Rng "
     "seeded from the run config"},
    {"system_clock",
     "wall-clock reads break bit-identical replays; use the tick clock "
     "(sds::TickClock) or move the timing to eval/telemetry"},
    {"steady_clock",
     "wall-clock reads break bit-identical replays; use the tick clock "
     "(sds::TickClock) or move the timing to eval/telemetry"},
    {"high_resolution_clock",
     "wall-clock reads break bit-identical replays; use the tick clock "
     "(sds::TickClock) or move the timing to eval/telemetry"},
    {"clock_gettime", "wall-clock reads break bit-identical replays"},
    {"gettimeofday", "wall-clock reads break bit-identical replays"},
};

const char* WhyOf(const std::string& token) {
  for (const BanWhy& b : kBanWhys) {
    if (token == b.token) return b.why;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  explicit Analyzer(const Options& options) : options_(options) {}

  Result Run() {
    CollectFiles();
    for (const std::string& path : scan_list_) Load(path);
    result_.stats.files_scanned = static_cast<int>(scan_list_.size());
    for (const std::string& path : scan_list_) Check(files_.at(path));
    RunCrossTuPasses();
    std::sort(result_.diagnostics.begin(), result_.diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    ApplyBaseline();
    for (const std::string& path : scan_list_) {
      for (const AllowComment& a : files_.at(path).allows) {
        result_.suppressions.push_back(
            {path, a.target_line, a.comment_line, a.raw_rules, a.used});
      }
    }
    result_.files_scanned = static_cast<int>(scan_list_.size());
    return std::move(result_);
  }

 private:
  static bool IsSourceFile(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
  }

  bool Ignored(const std::string& generic) const {
    for (const std::string& frag : options_.ignores) {
      if (!frag.empty() && generic.find(frag) != std::string::npos) return true;
    }
    return false;
  }

  void CollectFiles() {
    std::set<std::string> seen;
    for (const std::string& root : options_.paths) {
      std::error_code ec;
      if (fs::is_directory(root, ec)) {
        for (fs::recursive_directory_iterator it(root, ec), end;
             !ec && it != end; it.increment(ec)) {
          if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
            const std::string g =
                it->path().lexically_normal().generic_string();
            if (!Ignored(g)) seen.insert(g);
          }
        }
      } else if (fs::is_regular_file(root, ec) && IsSourceFile(root)) {
        const std::string g = fs::path(root).lexically_normal().generic_string();
        if (!Ignored(g)) seen.insert(g);
      }
    }
    scan_list_.assign(seen.begin(), seen.end());
  }

  // Cache-aware pass 1: bytes -> hash -> cached summary or a fresh parse.
  FileSummary* Load(const std::string& path) {
    auto it = files_.find(path);
    if (it != files_.end()) return &it->second;
    std::string bytes;
    if (!LoadFileBytes(path, &bytes)) return nullptr;
    const std::uint64_t hash = Fnv1a64(bytes);
    FileSummary summary;
    if (!options_.cache_dir.empty() &&
        LoadCachedSummary(options_.cache_dir, path, hash, &summary)) {
      ++result_.stats.cache_hits;
    } else {
      SourceText text;
      BuildSourceText(path, bytes, &text);
      const std::string ext = fs::path(path).extension().string();
      summary = BuildSummary(text, LayerOfPath(path),
                             ext == ".h" || ext == ".hpp");
      summary.content_hash = hash;
      ++result_.stats.parsed;
      if (!options_.cache_dir.empty()) {
        StoreCachedSummary(options_.cache_dir, summary);
      }
    }
    return &files_.emplace(path, std::move(summary)).first->second;
  }

  // Resolves a quoted include ("detect/params.h") to a file under
  // <include_root>/src, loading it on demand (it need not be in the scan
  // set). Returns nullptr when the target does not exist.
  FileSummary* Resolve(const std::string& target) {
    const fs::path p = fs::path(options_.include_root) / "src" / target;
    std::error_code ec;
    if (!fs::is_regular_file(p, ec)) return nullptr;
    return Load(p.lexically_normal().generic_string());
  }

  bool BuiltinAllowed(const FileSummary& f, const std::string& rule) const {
    for (const BuiltinAllow& a : kBuiltinAllows) {
      if (rule == a.rule && f.path.find(a.path_fragment) != std::string::npos)
        return true;
    }
    return false;
  }

  void Emit(FileSummary& f, int line, const std::string& rule,
            std::string message) {
    if (BuiltinAllowed(f, rule)) return;
    for (AllowComment& a : f.allows) {
      if (a.target_line != line) continue;
      for (const std::string& r : a.rules) {
        if (r == rule || r == "all" || r == "*") {
          a.used = true;
          return;
        }
      }
    }
    ++result_.stats.rule_hits[rule];
    result_.diagnostics.push_back({f.path, line, rule, std::move(message)});
  }

  // Would Emit drop this diagnostic? (Without marking suppressions used —
  // taint seeding must not count as a firing.)
  bool Silenced(const FileSummary& f, int line, const std::string& rule) const {
    if (BuiltinAllowed(f, rule)) return true;
    for (const AllowComment& a : f.allows) {
      if (a.target_line != line) continue;
      for (const std::string& r : a.rules) {
        if (r == rule || r == "all" || r == "*") return true;
      }
    }
    return false;
  }

  void RunCrossTuPasses() {
    PassContext ctx;
    for (const std::string& path : scan_list_) {
      ctx.files.push_back(&files_.at(path));
    }
    ctx.resolve = [this](const std::string& target) { return Resolve(target); };
    ctx.emit = [this](FileSummary& f, int line, const std::string& rule,
                      std::string message) {
      Emit(f, line, rule, std::move(message));
    };
    ctx.silenced = [this](const FileSummary& f, int line,
                          const std::string& rule) {
      return Silenced(f, line, rule);
    };
    ctx.stats = &result_.stats;
    RunGraphPasses(ctx);
    RunConcPass(ctx);
  }

  void ApplyBaseline() {
    if (options_.baseline_path.empty()) return;
    std::map<std::string, std::string> entries;
    if (!LoadBaseline(options_.baseline_path, &entries)) return;
    std::set<std::string> matched;
    std::vector<Diagnostic> live;
    for (Diagnostic& d : result_.diagnostics) {
      const std::string fp = BaselineFingerprint(d, options_.include_root);
      if (entries.count(fp) != 0) {
        matched.insert(fp);
        result_.baselined.push_back(std::move(d));
      } else {
        live.push_back(std::move(d));
      }
    }
    result_.diagnostics = std::move(live);
    for (const auto& [fp, text] : entries) {
      if (matched.count(fp) == 0) {
        result_.stale_baseline_entries.push_back(text);
      }
    }
  }

  // ---- v1 rule families, emitted from the pass-1 summaries ----

  void Check(FileSummary& f) {
    CheckIncludes(f);
    if (f.is_header) {
      CheckPragmaOnce(f);
      CheckSelfContained(f);
    }
    if (IsDeterministicLayer(f.layer)) {
      CheckDeterminismTokens(f);
      CheckUnorderedIteration(f);
    }
    CheckActuationIdempotent(f);
    CheckAttribLedger(f);
    CheckSnapshotVersioned(f);
    CheckWalVersioned(f);
    CheckHandoffVersioned(f);
  }

  // det-handoff-versioned: migration orchestration (cluster layer) and the
  // eval harnesses must never move detector state as raw SaveState /
  // RestoreState bytes — a handoff blob crosses hosts and release
  // boundaries, so it must travel inside the versioned + fingerprinted obs
  // envelope (obs/handoff.h), whose OpenSnapshot rejection is what turns a
  // config or format skew into a LOUD cold start instead of a misparse.
  // The detect layer (producing its own payload), the obs wrappers and the
  // svc WAL path are the sanctioned callers and stay out of scope.
  void CheckHandoffVersioned(FileSummary& f) {
    if (f.layer != "cluster" && f.layer != "eval") return;
    for (const VerbCall& v : f.verb_calls) {
      if (v.verb != "SaveState" && v.verb != "RestoreState") continue;
      Emit(f, v.line, kRuleDetHandoffVersioned,
           v.verb + "() called directly from " + f.path +
               ": detector state crossing hosts must ride the versioned "
               "handoff envelope (obs::PackSdsHandoff/ApplySdsHandoff or "
               "the KsTest equivalents) so fingerprint/version skew "
               "rejects loudly instead of misparsing");
    }
  }

  // det-snapshot-versioned: an obs-layer file that serializes or parses a
  // snapshot byte stream (SnapshotWriter / SnapshotReader) must reference
  // kSnapshotVersion somewhere in its code, so every blob format in the obs
  // plane carries the version pin that OpenSnapshot rejects on (DESIGN.md
  // §13). Detector-side SaveState payloads are out of scope: they are always
  // wrapped in the versioned obs envelope before leaving the process.
  void CheckSnapshotVersioned(FileSummary& f) {
    if (f.layer != "obs") return;
    if (f.snapshot.first_use != 0 && !f.snapshot.versioned) {
      Emit(f, f.snapshot.first_use, kRuleDetSnapshotVersioned,
           "obs-layer snapshot serialization without a kSnapshotVersion "
           "reference: every blob format must carry the version pin that "
           "OpenSnapshot validates, or restores after a format change would "
           "misparse old bytes instead of rejecting them");
    }
  }

  // det-wal-versioned: a svc-layer file that encodes or scans WAL frames
  // (WalWriter / WalReader) must reference obs::kSnapshotVersion somewhere
  // in its code, so every WAL payload carries the same version pin the
  // checkpoint envelope does (DESIGN.md §14).
  void CheckWalVersioned(FileSummary& f) {
    if (f.layer != "svc") return;
    if (f.wal.first_use != 0 && !f.wal.versioned) {
      Emit(f, f.wal.first_use, kRuleDetWalVersioned,
           "svc-layer WAL framing without a kSnapshotVersion reference: "
           "every WAL record must carry the snapshot version pin so a "
           "recovery scan rejects frames written by a different format "
           "instead of misparsing them");
    }
  }

  // det-actuation-idempotent: inside the cluster layer, only the Cluster
  // itself and the Actuator may invoke the placement-mutating verbs
  // (Migrate / StopVm / ResumeVm). Everything else — the MitigationEngine
  // above all — must route commands through the Actuator so the
  // one-outstanding-command-per-VM idempotency guard and the actuation fault
  // plan stay in the path.
  void CheckActuationIdempotent(FileSummary& f) {
    if (f.layer != "cluster") return;
    if (f.path.find("cluster/cluster.") != std::string::npos ||
        f.path.find("cluster/actuator.") != std::string::npos) {
      return;
    }
    for (const VerbCall& v : f.verb_calls) {
      if (v.verb != "Migrate" && v.verb != "StopVm" && v.verb != "ResumeVm") {
        continue;
      }
      Emit(f, v.line, kRuleDetActuationIdempotent,
           v.verb + "() called directly from " + f.path +
               ": cluster-layer code must route placement changes "
               "through the Actuator (SubmitMigrate/SubmitStop/"
               "SubmitResume) so the idempotency guard and the actuation "
               "fault plan apply");
    }
  }

  // det-attrib-ledger: the interference attribution ledger is a sim-layer
  // observer — only the hardware models (cache, bus, machine) may record
  // into it. Consumers (pcm sampler, forensics engine) read through the
  // const accessors only.
  void CheckAttribLedger(FileSummary& f) {
    if (!IsSrcLayer(f.layer) || f.layer == "sim") return;
    for (const VerbCall& v : f.verb_calls) {
      if (v.verb != "RecordTickStart" && v.verb != "RecordEviction" &&
          v.verb != "RecordBusOccupancy" && v.verb != "RecordBusStall") {
        continue;
      }
      Emit(f, v.line, kRuleDetAttribLedger,
           v.verb + "() mutates the AttributionLedger from layer '" + f.layer +
               "': hardware evidence may only be recorded by the sim layer; "
               "every other layer reads the ledger through its const "
               "accessors");
    }
  }

  void CheckIncludes(FileSummary& f) {
    const LayerInfo* from = FindLayer(f.layer);
    for (const IncludeDirective& inc : f.includes) {
      if (inc.angle) continue;
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string to_name = inc.target.substr(0, slash);
      const LayerInfo* to = FindLayer(to_name);
      if (to == nullptr || !IsSrcLayer(to_name)) continue;

      if (from != nullptr && IsSrcLayer(f.layer) && f.is_header &&
          to_name == "telemetry" && f.layer != "telemetry") {
        Emit(f, inc.line, kRuleHdrTelemetryFwd,
             "header includes \"" + inc.target +
                 "\"; headers outside src/telemetry must forward-declare "
                 "sds::telemetry types and include telemetry headers from the "
                 ".cpp only (PR 3 policy)");
        continue;
      }
      if (from == nullptr) continue;  // unknown tree: no DAG claim

      bool ok;
      const RestrictedLayer* restricted = FindRestricted(to_name);
      if (to_name == f.layer) {
        ok = true;
      } else if (to_name == "telemetry") {
        // Universal observability sink: any layer may include it.
        ok = true;
      } else if (restricted != nullptr) {
        ok = from->rank >= 100 ||
             RestrictedDependentAllowed(*restricted, f.layer);
      } else {
        ok = to->rank < from->rank || SiblingEdgeAllowed(f.layer, to_name);
      }
      if (!ok && restricted != nullptr) {
        Emit(f, inc.line, kRuleLayerDag,
             "include of \"" + inc.target + "\" (restricted layer " +
                 to_name + ") from layer " + f.layer + "; only {" +
                 restricted->dependents +
                 "} and the test/bench/tool trees may depend on " + to_name);
      } else if (!ok) {
        Emit(f, inc.line, kRuleLayerDag,
             "include of \"" + inc.target + "\" (layer " + to_name + ", rank " +
                 std::to_string(to->rank) + ") from layer " + f.layer +
                 " (rank " + std::to_string(from->rank) +
                 ") inverts the layer DAG common -> stats/signal -> sim -> vm "
                 "-> pcm -> {attacks,workloads,detect,fault} -> cluster -> "
                 "eval");
      }
    }
  }

  void CheckDeterminismTokens(FileSummary& f) {
    for (const SinkOccur& s : f.sinks) {
      if (s.rule == kRuleDetPointerPrint) {
        Emit(f, s.line, kRuleDetPointerPrint,
             "\"%p\" in a format string in deterministic layer " + f.layer +
                 ": pointer values differ across runs and machines; print a "
                 "stable id instead");
      } else {
        Emit(f, s.line, s.rule,
             s.token + " in deterministic layer " + f.layer + ": " +
                 WhyOf(s.token));
      }
    }
  }

  void CheckUnorderedIteration(FileSummary& f) {
    for (const IterSite& it : f.iters) {
      bool hit = it.range_text.find("unordered_map") != std::string::npos ||
                 it.range_text.find("unordered_set") != std::string::npos;
      if (!hit) {
        for (const std::string& name : f.unordered_names) {
          if (HasToken(it.range_text, name)) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        Emit(f, it.line, kRuleDetUnorderedIter,
             "range-for over an unordered container in deterministic layer " +
                 f.layer +
                 ": iteration order is implementation-defined and varies with "
                 "rehashing; iterate a sorted view or switch to std::map/set");
      }
    }
  }

  void CheckPragmaOnce(FileSummary& f) {
    if (f.pragma_diag_line != 0) {
      Emit(f, f.pragma_diag_line, kRuleHdrPragmaOnce,
           "header's first code line must be #pragma once");
    }
  }

  // Transitive closure of <angle> includes reachable through the project
  // include graph (quoted includes resolved under <include_root>/src).
  const std::set<std::string>& AngleClosure(const std::string& path) {
    auto it = closures_.find(path);
    if (it != closures_.end()) return it->second;
    // Insert first to break include cycles.
    auto& closure = closures_[path];
    FileSummary* f = Load(path);
    if (f == nullptr) return closure;
    std::vector<std::string> nested;
    for (const IncludeDirective& inc : f->includes) {
      if (inc.angle) {
        closure.insert(inc.target);
      } else if (FileSummary* dep = Resolve(inc.target)) {
        nested.push_back(dep->path);
      }
    }
    for (const std::string& dep : nested) {
      const std::set<std::string>& sub = AngleClosure(dep);
      closure.insert(sub.begin(), sub.end());
    }
    return closure;
  }

  void CheckSelfContained(FileSummary& f) {
    const std::set<std::string>& closure = AngleClosure(f.path);
    for (const StdUse& use : f.std_uses) {
      const char* providers_cstr = StdProvidersFor(use.ident);
      if (providers_cstr == nullptr) continue;
      bool satisfied = false;
      std::stringstream ss{std::string(providers_cstr)};
      std::string provider;
      while (std::getline(ss, provider, ',')) {
        if (closure.count(provider) != 0) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        const std::string providers(providers_cstr);
        Emit(f, use.line, kRuleHdrSelfContained,
             "header uses std::" + use.ident + " but its include closure "
             "never pulls in <" + providers.substr(0, providers.find(',')) +
             ">; include it directly so the header stays self-contained");
      }
    }
  }

  const Options& options_;
  std::vector<std::string> scan_list_;
  std::map<std::string, FileSummary> files_;
  std::map<std::string, std::set<std::string>> closures_;
  Result result_;
};

}  // namespace

int LayerRank(const std::string& layer) {
  const LayerInfo* l = FindLayer(layer);
  return l == nullptr ? -1 : l->rank;
}

bool IsDeterministicLayer(const std::string& layer) {
  const LayerInfo* l = FindLayer(layer);
  return l != nullptr && l->deterministic;
}

std::string LayerOfPath(const std::string& path) {
  const fs::path p(path);
  std::vector<std::string> parts;
  for (const auto& comp : p) parts.push_back(comp.generic_string());
  // The src/<layer>/ pattern wins anywhere in the path (the lint fixture
  // tree nests a src/ mirror under tests/), then the top-level trees.
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src" && i + 1 < parts.size() && IsSrcLayer(parts[i + 1]))
      return parts[i + 1];
  }
  for (const std::string& part : parts) {
    const LayerInfo* l = FindLayer(part);
    if (l != nullptr && l->rank >= 100) return part;
  }
  return "";
}

Result Run(const Options& options) { return Analyzer(options).Run(); }

std::string FormatText(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

std::string ToJson(const Result& result) {
  std::string out = "{\"files_scanned\":" +
                    std::to_string(result.files_scanned) +
                    ",\"diagnostics\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i != 0) out += ",";
    out += "{\"file\":\"" + JsonEscape(d.file) +
           "\",\"line\":" + std::to_string(d.line) + ",\"rule\":\"" +
           JsonEscape(d.rule) + "\",\"message\":\"" + JsonEscape(d.message) +
           "\"}";
  }
  out += "],\"suppressions\":[";
  for (std::size_t i = 0; i < result.suppressions.size(); ++i) {
    const Suppression& s = result.suppressions[i];
    if (i != 0) out += ",";
    out += "{\"file\":\"" + JsonEscape(s.file) +
           "\",\"line\":" + std::to_string(s.line) + ",\"rules\":\"" +
           JsonEscape(s.rules) + "\",\"used\":" + (s.used ? "true" : "false") +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace sdslint
