file(REMOVE_RECURSE
  "CMakeFiles/periodic_monitor.dir/periodic_monitor.cpp.o"
  "CMakeFiles/periodic_monitor.dir/periodic_monitor.cpp.o.d"
  "periodic_monitor"
  "periodic_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
