# Empty dependencies file for periodic_monitor.
# This may be replaced when dependencies are built.
