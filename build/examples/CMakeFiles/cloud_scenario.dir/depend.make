# Empty dependencies file for cloud_scenario.
# This may be replaced when dependencies are built.
