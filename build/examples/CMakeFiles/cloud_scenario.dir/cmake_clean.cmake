file(REMOVE_RECURSE
  "CMakeFiles/cloud_scenario.dir/cloud_scenario.cpp.o"
  "CMakeFiles/cloud_scenario.dir/cloud_scenario.cpp.o.d"
  "cloud_scenario"
  "cloud_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
