file(REMOVE_RECURSE
  "CMakeFiles/sds_workloads.dir/catalog.cpp.o"
  "CMakeFiles/sds_workloads.dir/catalog.cpp.o.d"
  "CMakeFiles/sds_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/sds_workloads.dir/synthetic.cpp.o.d"
  "libsds_workloads.a"
  "libsds_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
