
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/catalog.cpp" "src/workloads/CMakeFiles/sds_workloads.dir/catalog.cpp.o" "gcc" "src/workloads/CMakeFiles/sds_workloads.dir/catalog.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/sds_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/sds_workloads.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sds_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
