# Empty compiler generated dependencies file for sds_workloads.
# This may be replaced when dependencies are built.
