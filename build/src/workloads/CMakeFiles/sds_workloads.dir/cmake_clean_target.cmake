file(REMOVE_RECURSE
  "libsds_workloads.a"
)
