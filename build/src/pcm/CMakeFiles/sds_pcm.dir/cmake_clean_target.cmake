file(REMOVE_RECURSE
  "libsds_pcm.a"
)
