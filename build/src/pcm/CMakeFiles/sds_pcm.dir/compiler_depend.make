# Empty compiler generated dependencies file for sds_pcm.
# This may be replaced when dependencies are built.
