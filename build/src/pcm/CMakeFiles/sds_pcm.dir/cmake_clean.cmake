file(REMOVE_RECURSE
  "CMakeFiles/sds_pcm.dir/pcm_sampler.cpp.o"
  "CMakeFiles/sds_pcm.dir/pcm_sampler.cpp.o.d"
  "CMakeFiles/sds_pcm.dir/trace.cpp.o"
  "CMakeFiles/sds_pcm.dir/trace.cpp.o.d"
  "libsds_pcm.a"
  "libsds_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
