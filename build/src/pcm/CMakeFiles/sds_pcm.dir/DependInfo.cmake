
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcm/pcm_sampler.cpp" "src/pcm/CMakeFiles/sds_pcm.dir/pcm_sampler.cpp.o" "gcc" "src/pcm/CMakeFiles/sds_pcm.dir/pcm_sampler.cpp.o.d"
  "/root/repo/src/pcm/trace.cpp" "src/pcm/CMakeFiles/sds_pcm.dir/trace.cpp.o" "gcc" "src/pcm/CMakeFiles/sds_pcm.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sds_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
