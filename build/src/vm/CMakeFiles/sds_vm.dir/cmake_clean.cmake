file(REMOVE_RECURSE
  "CMakeFiles/sds_vm.dir/hypervisor.cpp.o"
  "CMakeFiles/sds_vm.dir/hypervisor.cpp.o.d"
  "CMakeFiles/sds_vm.dir/vm.cpp.o"
  "CMakeFiles/sds_vm.dir/vm.cpp.o.d"
  "libsds_vm.a"
  "libsds_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
