# Empty dependencies file for sds_vm.
# This may be replaced when dependencies are built.
