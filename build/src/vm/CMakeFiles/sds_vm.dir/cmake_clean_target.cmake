file(REMOVE_RECURSE
  "libsds_vm.a"
)
