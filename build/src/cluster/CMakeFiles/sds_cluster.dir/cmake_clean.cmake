file(REMOVE_RECURSE
  "CMakeFiles/sds_cluster.dir/cluster.cpp.o"
  "CMakeFiles/sds_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/sds_cluster.dir/mitigation.cpp.o"
  "CMakeFiles/sds_cluster.dir/mitigation.cpp.o.d"
  "libsds_cluster.a"
  "libsds_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
