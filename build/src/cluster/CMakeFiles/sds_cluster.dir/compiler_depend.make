# Empty compiler generated dependencies file for sds_cluster.
# This may be replaced when dependencies are built.
