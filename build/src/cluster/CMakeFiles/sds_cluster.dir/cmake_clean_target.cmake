file(REMOVE_RECURSE
  "libsds_cluster.a"
)
