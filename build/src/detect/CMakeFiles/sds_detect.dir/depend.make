# Empty dependencies file for sds_detect.
# This may be replaced when dependencies are built.
