file(REMOVE_RECURSE
  "CMakeFiles/sds_detect.dir/boundary.cpp.o"
  "CMakeFiles/sds_detect.dir/boundary.cpp.o.d"
  "CMakeFiles/sds_detect.dir/kstest_detector.cpp.o"
  "CMakeFiles/sds_detect.dir/kstest_detector.cpp.o.d"
  "CMakeFiles/sds_detect.dir/offline.cpp.o"
  "CMakeFiles/sds_detect.dir/offline.cpp.o.d"
  "CMakeFiles/sds_detect.dir/period.cpp.o"
  "CMakeFiles/sds_detect.dir/period.cpp.o.d"
  "CMakeFiles/sds_detect.dir/profile.cpp.o"
  "CMakeFiles/sds_detect.dir/profile.cpp.o.d"
  "CMakeFiles/sds_detect.dir/sds_detector.cpp.o"
  "CMakeFiles/sds_detect.dir/sds_detector.cpp.o.d"
  "libsds_detect.a"
  "libsds_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
