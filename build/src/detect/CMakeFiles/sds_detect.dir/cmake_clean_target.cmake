file(REMOVE_RECURSE
  "libsds_detect.a"
)
