
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/boundary.cpp" "src/detect/CMakeFiles/sds_detect.dir/boundary.cpp.o" "gcc" "src/detect/CMakeFiles/sds_detect.dir/boundary.cpp.o.d"
  "/root/repo/src/detect/kstest_detector.cpp" "src/detect/CMakeFiles/sds_detect.dir/kstest_detector.cpp.o" "gcc" "src/detect/CMakeFiles/sds_detect.dir/kstest_detector.cpp.o.d"
  "/root/repo/src/detect/offline.cpp" "src/detect/CMakeFiles/sds_detect.dir/offline.cpp.o" "gcc" "src/detect/CMakeFiles/sds_detect.dir/offline.cpp.o.d"
  "/root/repo/src/detect/period.cpp" "src/detect/CMakeFiles/sds_detect.dir/period.cpp.o" "gcc" "src/detect/CMakeFiles/sds_detect.dir/period.cpp.o.d"
  "/root/repo/src/detect/profile.cpp" "src/detect/CMakeFiles/sds_detect.dir/profile.cpp.o" "gcc" "src/detect/CMakeFiles/sds_detect.dir/profile.cpp.o.d"
  "/root/repo/src/detect/sds_detector.cpp" "src/detect/CMakeFiles/sds_detect.dir/sds_detector.cpp.o" "gcc" "src/detect/CMakeFiles/sds_detect.dir/sds_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/sds_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sds_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/sds_pcm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
