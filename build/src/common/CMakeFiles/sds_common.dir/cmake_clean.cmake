file(REMOVE_RECURSE
  "CMakeFiles/sds_common.dir/check.cpp.o"
  "CMakeFiles/sds_common.dir/check.cpp.o.d"
  "CMakeFiles/sds_common.dir/csv.cpp.o"
  "CMakeFiles/sds_common.dir/csv.cpp.o.d"
  "CMakeFiles/sds_common.dir/flags.cpp.o"
  "CMakeFiles/sds_common.dir/flags.cpp.o.d"
  "CMakeFiles/sds_common.dir/rng.cpp.o"
  "CMakeFiles/sds_common.dir/rng.cpp.o.d"
  "libsds_common.a"
  "libsds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
