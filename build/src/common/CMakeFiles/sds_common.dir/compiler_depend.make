# Empty compiler generated dependencies file for sds_common.
# This may be replaced when dependencies are built.
