file(REMOVE_RECURSE
  "CMakeFiles/sds_attacks.dir/bus_lock_attacker.cpp.o"
  "CMakeFiles/sds_attacks.dir/bus_lock_attacker.cpp.o.d"
  "CMakeFiles/sds_attacks.dir/llc_cleansing_attacker.cpp.o"
  "CMakeFiles/sds_attacks.dir/llc_cleansing_attacker.cpp.o.d"
  "CMakeFiles/sds_attacks.dir/pulsing_workload.cpp.o"
  "CMakeFiles/sds_attacks.dir/pulsing_workload.cpp.o.d"
  "CMakeFiles/sds_attacks.dir/scheduled_workload.cpp.o"
  "CMakeFiles/sds_attacks.dir/scheduled_workload.cpp.o.d"
  "libsds_attacks.a"
  "libsds_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
