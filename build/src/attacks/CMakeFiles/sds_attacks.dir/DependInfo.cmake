
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/bus_lock_attacker.cpp" "src/attacks/CMakeFiles/sds_attacks.dir/bus_lock_attacker.cpp.o" "gcc" "src/attacks/CMakeFiles/sds_attacks.dir/bus_lock_attacker.cpp.o.d"
  "/root/repo/src/attacks/llc_cleansing_attacker.cpp" "src/attacks/CMakeFiles/sds_attacks.dir/llc_cleansing_attacker.cpp.o" "gcc" "src/attacks/CMakeFiles/sds_attacks.dir/llc_cleansing_attacker.cpp.o.d"
  "/root/repo/src/attacks/pulsing_workload.cpp" "src/attacks/CMakeFiles/sds_attacks.dir/pulsing_workload.cpp.o" "gcc" "src/attacks/CMakeFiles/sds_attacks.dir/pulsing_workload.cpp.o.d"
  "/root/repo/src/attacks/scheduled_workload.cpp" "src/attacks/CMakeFiles/sds_attacks.dir/scheduled_workload.cpp.o" "gcc" "src/attacks/CMakeFiles/sds_attacks.dir/scheduled_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sds_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
