file(REMOVE_RECURSE
  "libsds_attacks.a"
)
