# Empty dependencies file for sds_attacks.
# This may be replaced when dependencies are built.
