file(REMOVE_RECURSE
  "libsds_eval.a"
)
