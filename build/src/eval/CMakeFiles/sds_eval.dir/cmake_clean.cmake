file(REMOVE_RECURSE
  "CMakeFiles/sds_eval.dir/aggregate.cpp.o"
  "CMakeFiles/sds_eval.dir/aggregate.cpp.o.d"
  "CMakeFiles/sds_eval.dir/experiment.cpp.o"
  "CMakeFiles/sds_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/sds_eval.dir/report.cpp.o"
  "CMakeFiles/sds_eval.dir/report.cpp.o.d"
  "CMakeFiles/sds_eval.dir/scenario.cpp.o"
  "CMakeFiles/sds_eval.dir/scenario.cpp.o.d"
  "libsds_eval.a"
  "libsds_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
