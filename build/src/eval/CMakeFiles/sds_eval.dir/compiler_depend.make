# Empty compiler generated dependencies file for sds_eval.
# This may be replaced when dependencies are built.
