file(REMOVE_RECURSE
  "CMakeFiles/sds_stats.dir/chebyshev.cpp.o"
  "CMakeFiles/sds_stats.dir/chebyshev.cpp.o.d"
  "CMakeFiles/sds_stats.dir/correlation.cpp.o"
  "CMakeFiles/sds_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/sds_stats.dir/descriptive.cpp.o"
  "CMakeFiles/sds_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/sds_stats.dir/ks_test.cpp.o"
  "CMakeFiles/sds_stats.dir/ks_test.cpp.o.d"
  "libsds_stats.a"
  "libsds_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
