# Empty compiler generated dependencies file for sds_stats.
# This may be replaced when dependencies are built.
