
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chebyshev.cpp" "src/stats/CMakeFiles/sds_stats.dir/chebyshev.cpp.o" "gcc" "src/stats/CMakeFiles/sds_stats.dir/chebyshev.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/sds_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/sds_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/sds_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/sds_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/sds_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/sds_stats.dir/ks_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
