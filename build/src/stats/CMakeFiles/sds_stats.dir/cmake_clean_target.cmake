file(REMOVE_RECURSE
  "libsds_stats.a"
)
