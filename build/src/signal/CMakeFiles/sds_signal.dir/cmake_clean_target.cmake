file(REMOVE_RECURSE
  "libsds_signal.a"
)
