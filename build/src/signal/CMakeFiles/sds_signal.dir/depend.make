# Empty dependencies file for sds_signal.
# This may be replaced when dependencies are built.
