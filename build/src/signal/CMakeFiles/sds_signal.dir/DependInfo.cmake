
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/acf.cpp" "src/signal/CMakeFiles/sds_signal.dir/acf.cpp.o" "gcc" "src/signal/CMakeFiles/sds_signal.dir/acf.cpp.o.d"
  "/root/repo/src/signal/coherence.cpp" "src/signal/CMakeFiles/sds_signal.dir/coherence.cpp.o" "gcc" "src/signal/CMakeFiles/sds_signal.dir/coherence.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/signal/CMakeFiles/sds_signal.dir/fft.cpp.o" "gcc" "src/signal/CMakeFiles/sds_signal.dir/fft.cpp.o.d"
  "/root/repo/src/signal/moving_average.cpp" "src/signal/CMakeFiles/sds_signal.dir/moving_average.cpp.o" "gcc" "src/signal/CMakeFiles/sds_signal.dir/moving_average.cpp.o.d"
  "/root/repo/src/signal/period_detect.cpp" "src/signal/CMakeFiles/sds_signal.dir/period_detect.cpp.o" "gcc" "src/signal/CMakeFiles/sds_signal.dir/period_detect.cpp.o.d"
  "/root/repo/src/signal/periodogram.cpp" "src/signal/CMakeFiles/sds_signal.dir/periodogram.cpp.o" "gcc" "src/signal/CMakeFiles/sds_signal.dir/periodogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sds_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
