file(REMOVE_RECURSE
  "CMakeFiles/sds_signal.dir/acf.cpp.o"
  "CMakeFiles/sds_signal.dir/acf.cpp.o.d"
  "CMakeFiles/sds_signal.dir/coherence.cpp.o"
  "CMakeFiles/sds_signal.dir/coherence.cpp.o.d"
  "CMakeFiles/sds_signal.dir/fft.cpp.o"
  "CMakeFiles/sds_signal.dir/fft.cpp.o.d"
  "CMakeFiles/sds_signal.dir/moving_average.cpp.o"
  "CMakeFiles/sds_signal.dir/moving_average.cpp.o.d"
  "CMakeFiles/sds_signal.dir/period_detect.cpp.o"
  "CMakeFiles/sds_signal.dir/period_detect.cpp.o.d"
  "CMakeFiles/sds_signal.dir/periodogram.cpp.o"
  "CMakeFiles/sds_signal.dir/periodogram.cpp.o.d"
  "libsds_signal.a"
  "libsds_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
