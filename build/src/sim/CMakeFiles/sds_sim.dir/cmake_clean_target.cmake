file(REMOVE_RECURSE
  "libsds_sim.a"
)
