file(REMOVE_RECURSE
  "CMakeFiles/sds_sim.dir/bus.cpp.o"
  "CMakeFiles/sds_sim.dir/bus.cpp.o.d"
  "CMakeFiles/sds_sim.dir/cache.cpp.o"
  "CMakeFiles/sds_sim.dir/cache.cpp.o.d"
  "CMakeFiles/sds_sim.dir/dram.cpp.o"
  "CMakeFiles/sds_sim.dir/dram.cpp.o.d"
  "CMakeFiles/sds_sim.dir/machine.cpp.o"
  "CMakeFiles/sds_sim.dir/machine.cpp.o.d"
  "libsds_sim.a"
  "libsds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
