# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/signal_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/vm_tests[1]_include.cmake")
include("/root/repo/build/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/attacks_tests[1]_include.cmake")
include("/root/repo/build/tests/pcm_tests[1]_include.cmake")
include("/root/repo/build/tests/detect_tests[1]_include.cmake")
include("/root/repo/build/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build/tests/eval_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
