# Empty compiler generated dependencies file for pcm_tests.
# This may be replaced when dependencies are built.
