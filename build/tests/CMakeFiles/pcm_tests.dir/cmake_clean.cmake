file(REMOVE_RECURSE
  "CMakeFiles/pcm_tests.dir/pcm/pcm_sampler_test.cpp.o"
  "CMakeFiles/pcm_tests.dir/pcm/pcm_sampler_test.cpp.o.d"
  "CMakeFiles/pcm_tests.dir/pcm/trace_test.cpp.o"
  "CMakeFiles/pcm_tests.dir/pcm/trace_test.cpp.o.d"
  "pcm_tests"
  "pcm_tests.pdb"
  "pcm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
