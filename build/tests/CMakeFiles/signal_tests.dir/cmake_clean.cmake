file(REMOVE_RECURSE
  "CMakeFiles/signal_tests.dir/signal/acf_test.cpp.o"
  "CMakeFiles/signal_tests.dir/signal/acf_test.cpp.o.d"
  "CMakeFiles/signal_tests.dir/signal/coherence_test.cpp.o"
  "CMakeFiles/signal_tests.dir/signal/coherence_test.cpp.o.d"
  "CMakeFiles/signal_tests.dir/signal/fft_test.cpp.o"
  "CMakeFiles/signal_tests.dir/signal/fft_test.cpp.o.d"
  "CMakeFiles/signal_tests.dir/signal/moving_average_test.cpp.o"
  "CMakeFiles/signal_tests.dir/signal/moving_average_test.cpp.o.d"
  "CMakeFiles/signal_tests.dir/signal/period_detect_test.cpp.o"
  "CMakeFiles/signal_tests.dir/signal/period_detect_test.cpp.o.d"
  "CMakeFiles/signal_tests.dir/signal/periodogram_test.cpp.o"
  "CMakeFiles/signal_tests.dir/signal/periodogram_test.cpp.o.d"
  "signal_tests"
  "signal_tests.pdb"
  "signal_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
