# Empty dependencies file for bench_fig10_specificity.
# This may be replaced when dependencies are built.
