file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_specificity.dir/fig10_specificity.cpp.o"
  "CMakeFiles/bench_fig10_specificity.dir/fig10_specificity.cpp.o.d"
  "bench_fig10_specificity"
  "bench_fig10_specificity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_specificity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
