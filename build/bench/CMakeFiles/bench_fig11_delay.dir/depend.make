# Empty dependencies file for bench_fig11_delay.
# This may be replaced when dependencies are built.
