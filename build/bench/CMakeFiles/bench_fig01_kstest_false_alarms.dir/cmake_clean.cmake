file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_kstest_false_alarms.dir/fig01_kstest_false_alarms.cpp.o"
  "CMakeFiles/bench_fig01_kstest_false_alarms.dir/fig01_kstest_false_alarms.cpp.o.d"
  "bench_fig01_kstest_false_alarms"
  "bench_fig01_kstest_false_alarms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_kstest_false_alarms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
