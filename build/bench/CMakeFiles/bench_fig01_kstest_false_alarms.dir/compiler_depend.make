# Empty compiler generated dependencies file for bench_fig01_kstest_false_alarms.
# This may be replaced when dependencies are built.
