file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_sdsb_example.dir/fig07_sdsb_example.cpp.o"
  "CMakeFiles/bench_fig07_sdsb_example.dir/fig07_sdsb_example.cpp.o.d"
  "bench_fig07_sdsb_example"
  "bench_fig07_sdsb_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_sdsb_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
