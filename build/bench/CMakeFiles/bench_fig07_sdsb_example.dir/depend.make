# Empty dependencies file for bench_fig07_sdsb_example.
# This may be replaced when dependencies are built.
