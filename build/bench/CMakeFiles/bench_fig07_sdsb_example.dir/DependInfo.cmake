
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_sdsb_example.cpp" "bench/CMakeFiles/bench_fig07_sdsb_example.dir/fig07_sdsb_example.cpp.o" "gcc" "bench/CMakeFiles/bench_fig07_sdsb_example.dir/fig07_sdsb_example.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sds_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/sds_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sds_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/sds_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/sds_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/sds_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sds_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
