# Empty dependencies file for bench_fig08_sdsp_example.
# This may be replaced when dependencies are built.
