file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_sdsp_example.dir/fig08_sdsp_example.cpp.o"
  "CMakeFiles/bench_fig08_sdsp_example.dir/fig08_sdsp_example.cpp.o.d"
  "bench_fig08_sdsp_example"
  "bench_fig08_sdsp_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_sdsp_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
