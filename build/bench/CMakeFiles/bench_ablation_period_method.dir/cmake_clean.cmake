file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_period_method.dir/ablation_period_method.cpp.o"
  "CMakeFiles/bench_ablation_period_method.dir/ablation_period_method.cpp.o.d"
  "bench_ablation_period_method"
  "bench_ablation_period_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_period_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
