# Empty compiler generated dependencies file for bench_ablation_period_method.
# This may be replaced when dependencies are built.
