# Empty compiler generated dependencies file for bench_fig13_18_sensitivity.
# This may be replaced when dependencies are built.
