file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preprocessing.dir/ablation_preprocessing.cpp.o"
  "CMakeFiles/bench_ablation_preprocessing.dir/ablation_preprocessing.cpp.o.d"
  "bench_ablation_preprocessing"
  "bench_ablation_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
