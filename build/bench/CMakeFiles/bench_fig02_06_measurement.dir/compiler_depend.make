# Empty compiler generated dependencies file for bench_fig02_06_measurement.
# This may be replaced when dependencies are built.
