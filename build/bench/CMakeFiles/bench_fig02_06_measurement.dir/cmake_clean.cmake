file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_06_measurement.dir/fig02_06_measurement.cpp.o"
  "CMakeFiles/bench_fig02_06_measurement.dir/fig02_06_measurement.cpp.o.d"
  "bench_fig02_06_measurement"
  "bench_fig02_06_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_06_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
