file(REMOVE_RECURSE
  "CMakeFiles/bench_sec34_correlation.dir/sec34_correlation.cpp.o"
  "CMakeFiles/bench_sec34_correlation.dir/sec34_correlation.cpp.o.d"
  "bench_sec34_correlation"
  "bench_sec34_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec34_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
