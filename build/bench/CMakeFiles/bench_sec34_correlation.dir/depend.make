# Empty dependencies file for bench_sec34_correlation.
# This may be replaced when dependencies are built.
