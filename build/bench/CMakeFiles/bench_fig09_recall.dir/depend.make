# Empty dependencies file for bench_fig09_recall.
# This may be replaced when dependencies are built.
