file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_recall.dir/fig09_recall.cpp.o"
  "CMakeFiles/bench_fig09_recall.dir/fig09_recall.cpp.o.d"
  "bench_fig09_recall"
  "bench_fig09_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
