// Figure 10: specificity of SDS vs KStest (plus SDS/B and SDS/P for the
// periodic applications), per application, for both attacks' clean stages.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace sds;
  bench::SweepOptions options;
  if (!bench::ParseSweepFlags(argc, argv, options)) return options.help ? 0 : 1;

  bench::PrintBenchHeader(
      std::cout, "bench_fig10_specificity",
      "Figure 10 (a: bus locking, b: LLC cleansing): specificity, median "
      "with 10th/90th percentile bars over seeded runs");

  const auto rows = bench::RunOrLoadAccuracySweep(options, std::cout);
  bench::MaybeEmitTelemetryRun(options, std::cout);

  double sds_sum = 0.0;
  double ks_sum = 0.0;
  int sds_n = 0;
  int ks_n = 0;
  for (eval::AttackKind attack :
       {eval::AttackKind::kBusLock, eval::AttackKind::kLlcCleansing}) {
    std::cout << "Figure 10("
              << (attack == eval::AttackKind::kBusLock ? 'a' : 'b')
              << "): specificity during the attack-free stage ("
              << eval::AttackName(attack) << " experiment)\n\n";
    TextTable table;
    table.SetHeader({"application", "scheme", "specificity med [p10, p90]"});
    for (const auto& row : rows) {
      if (row.attack != attack) continue;
      table.Row(row.app, eval::SchemeName(row.scheme),
                eval::FormatSummary(row.agg.specificity, 2));
      if (row.scheme == eval::Scheme::kSds) {
        sds_sum += row.agg.specificity.median;
        ++sds_n;
      } else if (row.scheme == eval::Scheme::kKsTest) {
        ks_sum += row.agg.specificity.median;
        ++ks_n;
      }
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout << "mean median specificity: SDS "
            << FormatFixed(100.0 * sds_sum / sds_n, 1) << "%  vs  KStest "
            << FormatFixed(100.0 * ks_sum / ks_n, 1)
            << "%\nShape check (paper): SDS 90-100%, KStest only 30-80% — "
               "SDS up to 65% higher.\n";
  return 0;
}
