// Chaos-restart harness for the streaming detection service.
//
// Kills the service at deterministic fault-plan points — mid-WAL-append at
// several torn byte fractions, mid-checkpoint, and immediately after a
// clean final append — restarts it from the surviving store bytes, re-drives
// the same at-least-once feed, and verifies the recovered decision log,
// alarm sequence and accounting are bit-identical to an uninterrupted
// reference run. Emits the `BENCH_svc {json}` line with the recovery-cost
// curve (WAL records replayed + redelivered events deduplicated per crash
// point) and the shed rate under ghost-tenant burst pressure.
//
// No counterpart figure in the paper: this extends the evaluation to the
// operational premise of ROADMAP item 5 — a detector that monitors tenants
// continuously must survive its own host dying mid-write.
#include <fstream>
#include <iostream>
#include <string>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/reporter.h"
#include "eval/service_chaos.h"

int main(int argc, char** argv) {
  using namespace sds;

  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"tenants", "clean tenants in the feed (default 6)"},
           {"ticks", "feed length in ticks (default 1200)"},
           {"seed", "feed seed (default 42)"},
           {"threads", "crash points evaluated in parallel (default 4)"},
           {"smoke", "short feed + sparse crash grid: CI smoke test"},
           {"accounting_out", "write svc_ref/svc_recovery JSONL here"},
           {"json_out", "also write the BENCH_svc JSON to this file"}})) {
    return flags.help_requested() ? 0 : 1;
  }

  eval::ServiceChaosConfig config;
  config.tenants = static_cast<std::uint32_t>(flags.GetInt("tenants", 6));
  config.ticks = static_cast<Tick>(flags.GetInt("ticks", 1200));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.threads = static_cast<int>(flags.GetInt("threads", 4));
  config.attack_start = config.ticks / 2;

  if (flags.GetBool("smoke", false)) {
    // CI-sized: short feed, one torn fraction, two ordinals. Still covers
    // every crash kind and both recovery sources (checkpoint + WAL tail).
    config.ticks = 500;
    config.attack_start = 250;
    config.tenants = 4;
    config.op_fractions = {0.3, 0.8};
    config.byte_fractions = {0.5};
  }

  bench::PrintBenchHeader(
      std::cout, "bench_svc_chaos_sweep",
      "Robustness extension (no paper counterpart): crash-consistent "
      "service recovery — WAL replay + redelivery dedupe vs crash point");
  std::cout << "tenants=" << config.tenants << " ticks=" << config.ticks
            << " seed=" << config.seed << " threads=" << config.threads
            << "\n\n";

  std::ofstream accounting;
  std::ostream* accounting_out = nullptr;
  const std::string accounting_path = flags.GetString("accounting_out", "");
  if (!accounting_path.empty()) {
    accounting.open(accounting_path);
    if (!accounting) {
      std::cerr << "cannot write " << accounting_path << "\n";
      return 1;
    }
    accounting_out = &accounting;
  }

  const eval::ServiceChaosResult result =
      eval::RunServiceChaosSweep(config, accounting_out);

  std::cout << "reference: events=" << result.feed_events
            << " wal_appends=" << result.ref_wal_appends
            << " checkpoints=" << result.ref_checkpoints
            << " alarms=" << result.ref_alarms
            << " decisions=" << result.ref_decisions
            << " shed_rate=" << FormatFixed(result.ref_shed_rate, 3) << "\n\n";

  TextTable table;
  table.SetHeader({"crash kind", "op", "bytes", "fired", "crash tick",
                   "ckpt", "replayed", "deduped", "identical"});
  for (const auto& p : result.points) {
    table.Row(fault::ServiceFaultKindName(p.kind),
              TextTable::Str(p.op_index), FormatFixed(p.byte_fraction, 2),
              p.fired ? "yes" : "NO", TextTable::Str(p.crash_tick),
              p.recovered_from_checkpoint ? "yes" : "no",
              TextTable::Str(p.replayed_records),
              TextTable::Str(p.redelivered_deduped),
              p.bit_identical ? "yes" : "NO");
  }
  table.Print(std::cout);

  std::cout << "\nShape check: every crash point fires and recovers "
               "bit-identical; later crash\npoints replay more WAL records "
               "and dedupe more redelivered events; torn frames\nshow "
               "wal_stop=torn_frame while fraction-0 tears end cleanly.\n\n";

  if (!bench::EmitBenchJson(std::cout, "svc", flags.GetString("json_out", ""),
                            [&](std::ostream& os) {
                              eval::WriteServiceChaosJson(config, result, os);
                            })) {
    return 1;
  }
  return result.all_bit_identical ? 0 : 1;
}
