// Ablation (extension, paper Section 6): the full detect -> respond pipeline.
//
// A victim and a bus-locking attacker share host 0 of a two-host cluster;
// host 1 is spare. SDS watches the victim; on its first alarm the mitigation
// engine applies a policy. The bench reports the victim's throughput in
// three windows — before the attack, under the attack, and after mitigation
// — for each policy, demonstrating why detection (rather than blind
// migration) is the actionable primitive.
#include <iostream>
#include <memory>

#include "attacks/bus_lock_attacker.h"
#include "attacks/scheduled_workload.h"
#include "cluster/mitigation.h"
#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "detect/sds_detector.h"
#include "workloads/catalog.h"

namespace {

using namespace sds;

struct PipelineResult {
  double rate_clean = 0.0;
  double rate_attacked = 0.0;
  double rate_after = 0.0;
  double detect_delay_s = -1.0;
  cluster::MitigationPolicy applied = cluster::MitigationPolicy::kNone;
};

PipelineResult RunPipeline(cluster::MitigationPolicy policy,
                           std::uint64_t seed) {
  const TickClock clock;
  detect::DetectorParams params;

  eval::ScenarioConfig base;
  base.app = "kmeans";
  const auto clean_samples = eval::CollectCleanSamples(base, 12000, seed + 1);
  const auto profile = detect::BuildSdsProfile(clean_samples, params);

  cluster::Cluster cl(2, cluster::HostConfig{}, seed);
  const Tick attack_start = 6000;
  const cluster::VmRef victim =
      cl.Deploy(0, "victim", [] { return workloads::MakeApp("kmeans"); });
  const cluster::VmRef attacker = cl.Deploy(0, "attacker", [attack_start] {
    return std::make_unique<attacks::ScheduledWorkload>(
        std::make_unique<attacks::BusLockAttacker>(attacks::BusLockConfig{}),
        attack_start, -1);
  });
  for (int i = 0; i < 7; ++i) {
    cl.Deploy(0, "benign", [] { return workloads::MakeBenignUtility(); });
  }

  detect::SdsDetector detector(cl.hypervisor(0), victim.id, profile, params,
                               detect::SdsMode::kCombined);
  cluster::MitigationEngine engine(cl, victim, policy, /*spare=*/1);

  PipelineResult result;
  std::uint64_t mark = 0;
  auto rate_since = [&](const cluster::VmRef& placement, Tick ticks) {
    const auto now = cl.counters(placement).llc_accesses;
    const double rate = static_cast<double>(now - mark) /
                        static_cast<double>(ticks);
    mark = now;
    return rate;
  };

  // Clean window.
  for (Tick t = 0; t < attack_start; ++t) {
    cl.RunTick();
    detector.OnTick();
  }
  result.rate_clean = rate_since(victim, attack_start) *
                      static_cast<double>(attack_start) /
                      static_cast<double>(attack_start);

  // Attack until detection (cap at 60 s).
  Tick attacked_ticks = 0;
  const Tick detect_cap = 6000;
  while (attacked_ticks < detect_cap) {
    cl.RunTick();
    detector.OnTick();
    ++attacked_ticks;
    if (detector.attack_active()) break;
  }
  result.rate_attacked = rate_since(victim, attacked_ticks);
  if (detector.attack_active()) {
    result.detect_delay_s = clock.ToSeconds(attacked_ticks);
    // SDS does not attribute; pass 0 (the quarantine policy falls back to
    // migration). A provider running KStest-style identification would pass
    // the culprit here — model that with the true attacker id for the
    // quarantine policy to show its effect.
    engine.OnAlarm(policy == cluster::MitigationPolicy::kQuarantineAttacker
                       ? attacker.id
                       : 0);
  }
  result.applied = engine.applied_policy();

  // Recovery window at the victim's (possibly new) placement.
  const cluster::VmRef placement = engine.victim();
  mark = cl.counters(placement).llc_accesses;
  const Tick recovery = 6000;
  for (Tick t = 0; t < recovery; ++t) cl.RunTick();
  result.rate_after = rate_since(placement, recovery);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv, {"seed"})) return 1;
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 101));

  bench::PrintBenchHeader(
      std::cout, "bench_ablation_mitigation",
      "Extension (paper Section 6): detection-triggered mitigation — "
      "victim throughput before / under / after the response");

  TextTable table;
  table.SetHeader({"policy", "applied", "delay (s)", "clean rate",
                   "attacked rate", "post-mitigation rate", "recovered"});
  for (auto policy : {cluster::MitigationPolicy::kNone,
                      cluster::MitigationPolicy::kMigrateVictim,
                      cluster::MitigationPolicy::kQuarantineAttacker}) {
    const auto r = RunPipeline(policy, seed);
    const double recovered = r.rate_after / r.rate_clean;
    table.Row(cluster::MitigationPolicyName(policy),
              cluster::MitigationPolicyName(r.applied),
              r.detect_delay_s >= 0 ? FormatFixed(r.detect_delay_s, 1) : "-",
              FormatFixed(r.rate_clean, 0), FormatFixed(r.rate_attacked, 0),
              FormatFixed(r.rate_after, 0),
              FormatFixed(recovered * 100.0, 0) + "%");
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.Print(std::cout);
  std::cout << "\nExpected: without a response the victim stays degraded; "
               "both migration and quarantine\nrestore ~100% of the clean "
               "throughput within the recovery window.\n";
  return 0;
}
