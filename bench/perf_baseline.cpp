// Performance regression baseline for the whole detection pipeline.
//
// Runs the quickstart scenario (kmeans victim, co-located bus-locking
// attacker, combined SDS detector) with the span profiler enabled on the
// wall clock, then emits ONE machine-readable line:
//
//   BENCH_perf {"ticks":12000,"wall_ms":...,"ticks_per_sec":...,
//               "ns_per_cache_access":...,"detector_ns_per_sample":...,
//               "pcm_ns_per_sample":...,"spans":{"vm.tick":{...},...}}
//
// CI greps for the "BENCH_perf {" prefix (a missing line means the harness
// or the profiler broke) and developers diff the numbers across commits.
// Everything before that line is human-oriented context; the profiler's
// subsystem shares answer "WHERE did the regression land" without rerunning
// anything.
//
//   --smoke        short run for CI (fewer ticks, still every pipeline stage)
//   --seconds S    virtual seconds to simulate under attack monitoring
//   --trace_out F  also write a Perfetto/Chrome trace of the run to F
//   --profile_out F  write the full telemetry JSONL (spans included) to F
//
// ns_per_cache_access is measured separately on a bare, telemetry-free
// machine — the same fast path BM_CacheAccess pins — so the line also
// documents that attaching the (disabled) profiler costs nothing there.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/reporter.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/scenario.h"
#include "telemetry/perfetto.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeline.h"

namespace {

using namespace sds;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The BM_CacheAccess loop, inline: a bare machine, no telemetry handle, one
// owner striding through twice the cache's working set.
double MeasureNsPerCacheAccess() {
  sim::MachineConfig config;
  sim::Machine machine(config);
  const std::uint64_t lines =
      static_cast<std::uint64_t>(config.cache.sets) * config.cache.ways * 2;
  constexpr std::uint64_t kAccesses = 4'000'000;
  machine.BeginTick();
  LineAddr addr = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kAccesses; ++i) {
    machine.Access(1, addr);
    addr = (addr + 37) % lines;
    if ((i & 1023u) == 1023u) machine.BeginTick();  // keep the bus refilled
  }
  const double ms = MillisSince(start);
  return ms * 1e6 / static_cast<double>(kAccesses);
}

void PrintSpanEntry(std::string& out, const telemetry::SpanNodeStats& agg,
                    bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s\"%s\":{\"count\":%" PRIu64 ",\"total_ns\":%" PRIu64
                ",\"self_ns\":%" PRIu64 "}",
                first ? "" : ",", agg.name, agg.count, agg.total, agg.self);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"smoke", "short CI run (~10 virtual seconds per stage)"},
           {"seconds", "virtual seconds of monitored attack run (default 60)"},
           {"seed", "scenario seed"},
           {"trace_out", "write a Perfetto/Chrome trace JSON to this path"},
           {"profile_out", "write full telemetry JSONL to this path"},
           {"json_out", "also write the BENCH_perf JSON to this file"}})) {
    return flags.help_requested() ? 0 : 1;
  }
  const bool smoke = flags.GetBool("smoke", false);
  const TickClock clock;
  const double seconds = flags.GetDouble("seconds", smoke ? 10.0 : 60.0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const Tick profile_ticks = clock.ToTicks(smoke ? 30.0 : 120.0);
  const Tick run_ticks = clock.ToTicks(seconds);
  const Tick attack_start = run_ticks / 2;

  // Stage 1: clean profile (unprofiled; this is setup, not the measurement).
  eval::ScenarioConfig base;
  base.app = "kmeans";
  const auto clean = eval::CollectCleanSamples(base, profile_ticks, seed + 1);
  detect::DetectorParams params;
  const detect::SdsProfile profile = detect::BuildSdsProfile(clean, params);

  // Stage 2: the measured run — every layer instrumented, profiler on.
  telemetry::Telemetry telemetry;
  telemetry.profiler().Enable(telemetry::ProfileClock::kWall);
  eval::ScenarioConfig cfg;
  cfg.app = "kmeans";
  cfg.attack = eval::AttackKind::kBusLock;
  cfg.attack_start = attack_start;
  cfg.seed = seed;
  cfg.machine.telemetry = &telemetry;
  eval::Scenario scenario = eval::BuildScenario(cfg);
  detect::SdsDetector detector(*scenario.hypervisor, scenario.victim, profile,
                               params, detect::SdsMode::kCombined);

  const auto run_start = std::chrono::steady_clock::now();
  for (Tick t = 0; t < run_ticks; ++t) {
    scenario.hypervisor->RunTick();
    detector.OnTick();
  }
  const double wall_ms = MillisSince(run_start);

  std::printf("perf baseline: %" PRId64 " ticks (%.0fs virtual) in %.1f ms, "
              "alarm %s\n",
              run_ticks, seconds, wall_ms,
              detector.alarm_events() > 0 ? "raised" : "not raised");
  const auto incidents = telemetry::ReconstructIncidents(
      telemetry, {.attack_start = attack_start});
  telemetry::WriteIncidentReport(std::cout, incidents, telemetry);
  std::cout.flush();

  // Stage 3: the bare cache-access fast path, for the zero-cost-off claim.
  const double ns_per_access = MeasureNsPerCacheAccess();

  const telemetry::SpanNodeStats det =
      telemetry.profiler().AggregateByName("detect.sds.tick");
  const telemetry::SpanNodeStats pcm =
      telemetry.profiler().AggregateByName("pcm.sample");

  std::string spans;
  bool first = true;
  for (const char* name : {"vm.tick", "vm.schedule", "sim.tick", "pcm.sample",
                           "detect.sds.tick", "detect.kstest.tick",
                           "cluster.mitigate"}) {
    const telemetry::SpanNodeStats agg =
        telemetry.profiler().AggregateByName(name);
    if (agg.count == 0) continue;
    PrintSpanEntry(spans, agg, first);
    first = false;
  }

  char payload[4096];
  std::snprintf(
      payload, sizeof payload,
      "{\"ticks\":%" PRId64
      ",\"wall_ms\":%.3f,\"ticks_per_sec\":%.0f,"
      "\"ns_per_cache_access\":%.2f,\"detector_ns_per_sample\":%.0f,"
      "\"pcm_ns_per_sample\":%.0f,\"spans\":{%s}}",
      run_ticks, wall_ms,
      wall_ms > 0.0 ? static_cast<double>(run_ticks) / (wall_ms / 1000.0)
                    : 0.0,
      ns_per_access,
      det.count > 0 ? static_cast<double>(det.total) /
                          static_cast<double>(det.count)
                    : 0.0,
      pcm.count > 0 ? static_cast<double>(pcm.total) /
                          static_cast<double>(pcm.count)
                    : 0.0,
      spans.c_str());
  if (!sds::bench::EmitBenchJson(std::cout, "perf",
                                 flags.GetString("json_out", ""),
                                 [&](std::ostream& os) { os << payload; })) {
    return 1;
  }

  const std::string trace_out = flags.GetString("trace_out", "");
  if (!trace_out.empty()) {
    if (!telemetry::WritePerfettoTraceFile(telemetry, trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("perfetto trace written to %s (open in ui.perfetto.dev or "
                "chrome://tracing)\n",
                trace_out.c_str());
  }
  const std::string profile_out = flags.GetString("profile_out", "");
  if (!profile_out.empty()) {
    if (!telemetry.WriteJsonlFile(profile_out)) {
      std::fprintf(stderr, "cannot write %s\n", profile_out.c_str());
      return 1;
    }
    std::printf("telemetry JSONL written to %s (inspect with "
                "tools/trace_inspect)\n",
                profile_out.c_str());
  }
  return 0;
}
