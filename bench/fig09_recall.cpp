// Figure 9: recall of SDS vs KStest (plus SDS/B and SDS/P for the periodic
// applications), per application, for both attacks.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace sds;
  bench::SweepOptions options;
  if (!bench::ParseSweepFlags(argc, argv, options)) return options.help ? 0 : 1;

  bench::PrintBenchHeader(
      std::cout, "bench_fig09_recall",
      "Figure 9 (a: bus locking, b: LLC cleansing): recall, median with "
      "10th/90th percentile bars over seeded runs");

  const auto rows = bench::RunOrLoadAccuracySweep(options, std::cout);
  bench::MaybeEmitTelemetryRun(options, std::cout);

  for (eval::AttackKind attack :
       {eval::AttackKind::kBusLock, eval::AttackKind::kLlcCleansing}) {
    std::cout << "Figure 9("
              << (attack == eval::AttackKind::kBusLock ? 'a' : 'b')
              << "): recall under the " << eval::AttackName(attack)
              << " attack\n\n";
    TextTable table;
    table.SetHeader({"application", "scheme", "recall med [p10, p90]",
                     "detected runs"});
    for (const auto& row : rows) {
      if (row.attack != attack) continue;
      table.Row(row.app, eval::SchemeName(row.scheme),
                eval::FormatSummary(row.agg.recall, 2),
                TextTable::Str(row.agg.detected_runs) + "/" +
                    TextTable::Str(row.agg.runs));
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check (paper): median recall 100% for every scheme "
               "and application;\nSDS marginally better than KStest at the "
               "percentile tails.\n";
  return 0;
}
