// Figures 13-18: sensitivity analysis of the SDS parameters.
//
//   Fig 13  EWMA smoothing factor alpha      (k-means, bus locking)
//   Fig 14  boundary factor k                (H_C re-derived via Chebyshev)
//   Fig 15  window size W
//   Fig 16  sliding step dW
//   Fig 17  SDS/P window W_P                 (FaceNet)
//   Fig 18  SDS/P sliding step dW_P          (FaceNet)
//
// Each row reports recall, specificity and detection delay (medians over
// seeded runs) for one parameter value, everything else at Table 1 defaults.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "eval/report.h"
#include "stats/chebyshev.h"

namespace {

using namespace sds;

struct Row {
  double value = 0.0;
  eval::AggregatedDetection agg;
};

void PrintFigure(const std::string& title, const std::string& param,
                 const std::vector<Row>& rows, const std::string& shape) {
  std::cout << title << "\n\n";
  TextTable table;
  table.SetHeader({param, "recall", "specificity", "delay (s)"});
  for (const auto& r : rows) {
    table.Row(FormatFixed(r.value, 3), FormatFixed(r.agg.recall.median, 2),
              FormatFixed(r.agg.specificity.median, 2),
              FormatFixed(r.agg.delay_seconds.median, 1));
  }
  table.Print(std::cout);
  std::cout << "shape check (paper): " << shape << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv, {"runs", "seed"})) return 1;
  const int runs = static_cast<int>(flags.GetInt("runs", 2));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 61));

  bench::PrintBenchHeader(
      std::cout, "bench_fig13_18_sensitivity",
      "Figures 13-18: sensitivity of alpha, k, W, dW (k-means) and W_P, "
      "dW_P (FaceNet)");

  const int threads = eval::DefaultThreads();
  auto run_config = [&](const std::string& app,
                        const detect::DetectorParams& params,
                        eval::Scheme scheme) {
    eval::DetectionRunConfig cfg;
    cfg.app = app;
    cfg.attack = eval::AttackKind::kBusLock;
    cfg.scheme = scheme;
    cfg.params = params;
    return eval::AggregateDetection(cfg, runs, seed, threads);
  };

  // Figure 13: alpha.
  {
    std::vector<Row> rows;
    for (double alpha : {0.05, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      detect::DetectorParams p;
      p.alpha = alpha;
      rows.push_back({alpha, run_config("kmeans", p, eval::Scheme::kSdsB)});
      std::cout << "." << std::flush;
    }
    std::cout << '\n';
    PrintFigure("Figure 13: sensitivity of the EWMA smoothing factor alpha",
                "alpha", rows,
                "accuracy stays near 1 over a wide range; delay shrinks "
                "slightly as alpha grows (less smoothing inertia)");
  }

  // Figure 14: k, with H_C re-derived for 99.9% confidence (Equation 4).
  {
    std::vector<Row> rows;
    for (double k : {1.1, 1.125, 1.25, 1.5, 2.0}) {
      detect::DetectorParams p;
      p.boundary_k = k;
      p.h_c = RequiredConsecutiveViolations(k, 0.999);
      rows.push_back({k, run_config("kmeans", p, eval::Scheme::kSdsB)});
      std::cout << "." << std::flush;
    }
    std::cout << '\n';
    PrintFigure(
        "Figure 14: sensitivity of the boundary factor k (H_C from "
        "Chebyshev at 99.9%)",
        "k", rows,
        "specificity rises and recall falls slightly with k; delay shrinks "
        "as the matching H_C drops");
  }

  // Figure 15: W.
  {
    std::vector<Row> rows;
    for (std::size_t w : {100u, 200u, 500u, 1000u}) {
      detect::DetectorParams p;
      p.window = w;
      p.step = std::min(p.step, w);
      rows.push_back({static_cast<double>(w),
                      run_config("kmeans", p, eval::Scheme::kSdsB)});
      std::cout << "." << std::flush;
    }
    std::cout << '\n';
    PrintFigure("Figure 15: sensitivity of the window size W", "W", rows,
                "accuracy barely moves (W=100 may dip); delay grows with W");
  }

  // Figure 16: dW.
  {
    std::vector<Row> rows;
    for (std::size_t dw : {20u, 50u, 100u, 200u}) {
      detect::DetectorParams p;
      p.step = dw;
      rows.push_back({static_cast<double>(dw),
                      run_config("kmeans", p, eval::Scheme::kSdsB)});
      std::cout << "." << std::flush;
    }
    std::cout << '\n';
    PrintFigure("Figure 16: sensitivity of the sliding step dW", "dW", rows,
                "accuracy flat; delay grows roughly linearly with dW "
                "(H_C * dW * T_PCM lower bound)");
  }

  // Figure 17: W_P (as a multiple of the period p).
  {
    std::vector<Row> rows;
    for (double mult : {2.0, 4.0, 6.0}) {
      detect::DetectorParams p;
      p.wp_multiplier = mult;
      rows.push_back({mult, run_config("facenet", p, eval::Scheme::kSdsP)});
      std::cout << "." << std::flush;
    }
    std::cout << '\n';
    PrintFigure("Figure 17: sensitivity of the SDS/P window W_P (x period)",
                "W_P/p", rows,
                "accuracy flat; delay grows with W_P (normal values "
                "dominate the window longer)");
  }

  // Figure 18: dW_P.
  {
    std::vector<Row> rows;
    for (std::size_t dwp : {5u, 10u, 15u, 25u}) {
      detect::DetectorParams p;
      p.delta_wp = dwp;
      rows.push_back({static_cast<double>(dwp),
                      run_config("facenet", p, eval::Scheme::kSdsP)});
      std::cout << "." << std::flush;
    }
    std::cout << '\n';
    PrintFigure("Figure 18: sensitivity of the SDS/P sliding step dW_P",
                "dW_P", rows,
                "accuracy flat; delay grows with dW_P "
                "(H_P * dW_P * dW * T_PCM lower bound)");
  }
  return 0;
}
