// Figures 2-6: the Section 3.3 measurement study.
//
// For every application and both attacks, runs the 120-second protocol
// (attack launched at the 60 s midpoint) and reports the stage means, the
// relative change, and an ASCII rendering of the time series — the textual
// analogue of the figures' before/after plots. The periodic applications
// (PCA, FaceNet) additionally report their measured period in both stages
// (the Observation 2 stretch).
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "detect/profile.h"
#include "signal/moving_average.h"
#include "signal/period_detect.h"
#include "stats/descriptive.h"
#include "workloads/catalog.h"

namespace {

using namespace sds;

struct StageStats {
  double mean_before = 0.0;
  double mean_after = 0.0;
  double change() const { return mean_after / mean_before - 1.0; }
};

StageStats Split(const std::vector<double>& series, std::size_t at) {
  StageStats s;
  const std::vector<double> before(series.begin(),
                                   series.begin() + static_cast<long>(at));
  const std::vector<double> after(series.begin() + static_cast<long>(at),
                                  series.end());
  s.mean_before = Mean(before);
  s.mean_after = Mean(after);
  return s;
}

std::string PeriodString(const std::vector<double>& series, std::size_t from,
                         std::size_t to) {
  detect::DetectorParams params;
  const std::vector<double> slice(series.begin() + static_cast<long>(from),
                                  series.begin() + static_cast<long>(to));
  const auto ma = MovingAverageSeries(slice, params.window, params.step);
  const auto est = DetectPeriod(ma);
  if (!est) return "none";
  return FormatFixed(est->period, 1) + " MA steps";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv, {"seconds", "seed"})) return 1;
  const double seconds = flags.GetDouble("seconds", 120.0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 33));

  bench::PrintBenchHeader(
      std::cout, "bench_fig02_06_measurement",
      "Figures 2-6: AccessNum under the bus locking attack and MissNum "
      "under the LLC cleansing attack, per application, attack at the "
      "midpoint");

  const TickClock clock;
  const Tick total = clock.ToTicks(seconds);
  const Tick mid = total / 2;

  TextTable summary;
  summary.SetHeader({"application", "figure", "attack", "statistic",
                     "mean before", "mean after", "change"});

  const std::vector<std::pair<std::string, std::string>> figures = {
      {"bayes", "2(a,b)"},       {"svm", "2(c,d)"},   {"kmeans", "2(e,f)"},
      {"pca", "2(g,h)"},         {"aggregation", "3(a,b)"},
      {"join", "3(c,d)"},        {"scan", "3(e,f)"},  {"terasort", "4(a,b)"},
      {"pagerank", "5(a,b)"},    {"facenet", "6(a,b)"}};

  for (const auto& [app, figure] : figures) {
    for (eval::AttackKind attack :
         {eval::AttackKind::kBusLock, eval::AttackKind::kLlcCleansing}) {
      const auto samples =
          eval::RunMeasurementStudy(app, attack, total, mid, seed);
      const pcm::Channel channel = attack == eval::AttackKind::kBusLock
                                       ? pcm::Channel::kAccessNum
                                       : pcm::Channel::kMissNum;
      const auto series = detect::ChannelSeries(samples, channel);
      const StageStats stats = Split(series, static_cast<std::size_t>(mid));
      summary.Row(app, figure, eval::AttackName(attack),
                  pcm::ChannelName(channel),
                  FormatFixed(stats.mean_before, 1),
                  FormatFixed(stats.mean_after, 1),
                  FormatFixed(stats.change() * 100.0, 1) + "%");

      std::cout << app << " / " << eval::AttackName(attack) << " ("
                << pcm::ChannelName(channel) << ", attack at t="
                << clock.ToSeconds(mid) << "s):\n  |"
                << Sparkline(series, 100) << "|\n";
      if (workloads::AppInfoFor(app).periodic) {
        std::cout << "  period before: "
                  << PeriodString(series, 0, static_cast<std::size_t>(mid))
                  << ", after: "
                  << PeriodString(series, static_cast<std::size_t>(mid),
                                  series.size())
                  << " (Observation 2: stretched or destroyed)\n";
      }
    }
  }

  std::cout << "\nSummary (Observation 1: AccessNum drops under bus locking,"
               " MissNum rises under cleansing):\n\n";
  summary.Print(std::cout);
  return 0;
}
