// Ablation (motivated by Section 4.2.2): DFT-only vs ACF-only vs the
// combined DFT-ACF period estimator on synthetic series with planted
// periods. The paper's argument for combining them:
//   * DFT alone detects false frequencies (spectral leakage);
//   * ACF alone returns multiples of the true period;
//   * DFT candidates validated on ACF hills avoid both failure modes.
#include <cmath>
#include <iostream>
#include <numbers>
#include <optional>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/rng.h"
#include "signal/acf.h"
#include "signal/period_detect.h"
#include "signal/periodogram.h"

namespace {

using namespace sds;

std::vector<double> MakeSeries(std::size_t n, double period, double noise,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase = std::fmod(static_cast<double>(t), period) / period;
    // Asymmetric batch-like waveform, the shape cache statistics produce.
    x[t] = (phase < 0.35 ? 1.0 : -0.55) + noise * rng.Normal();
  }
  return x;
}

std::optional<double> DftOnly(const std::vector<double>& x) {
  const auto power = Periodogram(x, true);
  const auto peaks = FindSpectrumPeaks(power, x.size(), 3.0, 1);
  if (peaks.empty()) return std::nullopt;
  return peaks[0].period;
}

std::optional<double> AcfOnly(const std::vector<double>& x) {
  const auto acf = AutocorrelationFft(x, x.size() / 2);
  // Largest ACF value at any lag >= 2 that sits on a hill.
  std::optional<double> best;
  double best_val = 0.2;
  for (std::size_t lag = 2; lag < acf.size(); ++lag) {
    if (acf[lag] > best_val && IsOnAcfHill(acf, lag, 3)) {
      best_val = acf[lag];
      best = static_cast<double>(lag);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv, {"trials"})) return 1;
  const int trials = static_cast<int>(flags.GetInt("trials", 200));

  bench::PrintBenchHeader(
      std::cout, "bench_ablation_period_method",
      "Ablation of the Vlachos-style period estimator: DFT-only vs "
      "ACF-only vs DFT-ACF (Section 4.2.2)");

  TextTable table;
  table.SetHeader({"period", "noise", "DFT-only ok", "ACF-only ok",
                   "DFT-ACF ok", "ACF multiple-errors"});

  for (double period : {12.0, 17.0, 30.0}) {
    for (double noise : {0.3, 0.8}) {
      int dft_ok = 0;
      int acf_ok = 0;
      int combined_ok = 0;
      int acf_multiples = 0;
      for (int t = 0; t < trials; ++t) {
        const auto x =
            MakeSeries(static_cast<std::size_t>(period * 6), period, noise,
                       static_cast<std::uint64_t>(t) * 131 + 7);
        const auto within = [&](std::optional<double> est) {
          return est && std::abs(*est - period) / period <= 0.2;
        };
        if (within(DftOnly(x))) ++dft_ok;
        const auto acf_est = AcfOnly(x);
        if (within(acf_est)) ++acf_ok;
        if (acf_est && *acf_est > 1.6 * period) ++acf_multiples;
        const auto combined = DetectPeriod(x);
        if (within(combined ? std::optional<double>(combined->period)
                            : std::nullopt)) {
          ++combined_ok;
        }
      }
      const auto pct = [&](int n) {
        return FormatFixed(100.0 * n / trials, 0) + "%";
      };
      table.Row(FormatFixed(period, 0), FormatFixed(noise, 1), pct(dft_ok),
                pct(acf_ok), pct(combined_ok), pct(acf_multiples));
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected: DFT-ACF matches or beats both single-method "
               "estimators; ACF-only errors concentrate on period "
               "multiples; DFT-only loses accuracy at high noise via "
               "leakage.\n";
  return 0;
}
