// Ablation (extension beyond the paper, motivated by its future-work
// discussion of adaptive attackers): can a PULSING attacker evade SDS?
//
// The attacker runs the bus locking attack with a duty cycle: bursts of
// `on` ticks separated by `off` ticks. SDS/B needs H_C = 30 consecutive
// out-of-range EWMA values (~15 s), so bursts short enough reset the counter
// — but shorter bursts also inflict proportionally less damage. The bench
// sweeps the duty cycle and reports detection probability, detection delay
// AND the victim slowdown the attacker still achieves: the evasion-damage
// trade-off.
#include <iostream>
#include <memory>

#include "attacks/bus_lock_attacker.h"
#include "attacks/pulsing_workload.h"
#include "attacks/scheduled_workload.h"
#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "detect/sds_detector.h"
#include "eval/scenario.h"
#include "stats/descriptive.h"
#include "workloads/catalog.h"

namespace {

using namespace sds;

struct PulseResult {
  bool detected = false;
  double delay_seconds = 0.0;
  // Victim throughput under the pulsing attack relative to no attack.
  double victim_slowdown = 0.0;
};

PulseResult RunPulse(Tick on, Tick off, std::uint64_t seed) {
  const TickClock clock;
  detect::DetectorParams params;

  // Profile.
  eval::ScenarioConfig base;
  base.app = "kmeans";
  const auto clean = eval::CollectCleanSamples(base, 12000, seed + 1);
  const auto profile = detect::BuildSdsProfile(clean, params);

  // Deployment with a hand-built pulsing attacker.
  sim::MachineConfig mc;
  sim::Machine machine(mc);
  vm::HypervisorConfig hc;
  Rng root(seed);
  vm::Hypervisor hypervisor(machine, hc, root.Fork());
  const OwnerId victim =
      hypervisor.CreateVm("victim", workloads::MakeApp("kmeans"));
  const Tick attack_start = 10000;
  auto attacker_program = std::make_unique<attacks::PulsingWorkload>(
      std::make_unique<attacks::BusLockAttacker>(attacks::BusLockConfig{}),
      on, off, attack_start);
  hypervisor.CreateVm("attacker",
                      std::make_unique<attacks::ScheduledWorkload>(
                          std::move(attacker_program), attack_start, -1));
  for (int i = 0; i < 7; ++i) {
    hypervisor.CreateVm("benign", workloads::MakeBenignUtility());
  }

  detect::SdsDetector detector(hypervisor, victim, profile, params,
                               detect::SdsMode::kCombined);

  PulseResult result;
  const Tick total = attack_start + 30000;  // 300 s of pulsing attack
  std::uint64_t accesses_clean = 0;
  std::uint64_t accesses_attacked = 0;
  std::uint64_t baseline = 0;
  for (Tick t = 0; t < total; ++t) {
    hypervisor.RunTick();
    detector.OnTick();
    if (t + 1 == attack_start) {
      accesses_clean = machine.counters(victim).llc_accesses;
      baseline = accesses_clean;
    }
    if (!result.detected && t >= attack_start && detector.attack_active()) {
      result.detected = true;
      result.delay_seconds =
          clock.ToSeconds(hypervisor.now() - attack_start);
    }
  }
  accesses_attacked = machine.counters(victim).llc_accesses - accesses_clean;
  const double clean_rate =
      static_cast<double>(baseline) / static_cast<double>(attack_start);
  const double attacked_rate =
      static_cast<double>(accesses_attacked) / 30000.0;
  result.victim_slowdown = 1.0 - attacked_rate / clean_rate;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv, {"seed"})) return 1;
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 91));

  bench::PrintBenchHeader(
      std::cout, "bench_ablation_evasion",
      "Extension: pulsing (intermittent) bus locking attack vs SDS — the "
      "evasion/damage trade-off");

  TextTable table;
  table.SetHeader({"burst on/off (s)", "duty", "detected", "delay (s)",
                   "victim slowdown"});
  struct Shape {
    Tick on;
    Tick off;
  };
  // From continuous attack down to short bursts below the H_C horizon.
  const std::vector<Shape> shapes = {
      {30000, 1}, {3000, 1000}, {2000, 2000}, {1000, 1000},
      {500, 1500}, {200, 1800},
  };
  for (const auto& s : shapes) {
    const auto r = RunPulse(s.on, s.off, seed);
    const TickClock clock;
    table.Row(FormatFixed(clock.ToSeconds(s.on), 0) + "/" +
                  FormatFixed(clock.ToSeconds(s.off), 0),
              FormatFixed(static_cast<double>(s.on) /
                              static_cast<double>(s.on + s.off),
                          2),
              r.detected ? "yes" : "NO",
              r.detected ? FormatFixed(r.delay_seconds, 1) : "-",
              FormatFixed(r.victim_slowdown * 100.0, 1) + "%");
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.Print(std::cout);
  std::cout << "\nExpected: long bursts are detected like the continuous "
               "attack; bursts well below\nH_C * dW * T_PCM = 15 s can evade "
               "SDS/B but only by sacrificing most of the damage.\n";
  return 0;
}
