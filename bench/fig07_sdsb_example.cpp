// Figure 7: SDS/B detection walk-through on k-means.
//
// Shows the monitored EWMA time series against the profiled normal range
// [mu_E - k sigma_E, mu_E + k sigma_E]: before the attack the EWMA dips out
// of range occasionally but never H_C times in a row; after the bus locking
// attack starts, violations accumulate and the alarm fires.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "detect/boundary.h"
#include "detect/profile.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv, {"app", "seed", "csv"})) return 1;
  const std::string app = flags.GetString("app", "kmeans");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));

  bench::PrintBenchHeader(
      std::cout, "bench_fig07_sdsb_example",
      "Figure 7: k-means EWMA time series vs the SDS/B normal range, bus "
      "locking attack");

  const detect::DetectorParams params;
  const TickClock clock;

  // Stage 1: profile.
  eval::ScenarioConfig base;
  base.app = app;
  const auto clean = eval::CollectCleanSamples(base, 12000, seed + 1);
  const auto profile = detect::BuildBoundaryProfile(
      detect::ChannelSeries(clean, pcm::Channel::kAccessNum), params);

  // Monitored run: 75 s clean + 75 s bus-locked.
  const Tick stage = clock.ToTicks(75.0);
  const auto samples = eval::RunMeasurementStudy(
      app, eval::AttackKind::kBusLock, 2 * stage, stage, seed);

  detect::BoundaryAnalyzer analyzer(profile, params);
  std::vector<double> ewma;
  Tick alarm_tick = kInvalidTick;
  Tick tick = 0;
  for (const auto& s : samples) {
    ++tick;
    if (const auto v =
            analyzer.Observe(static_cast<double>(s.access_num))) {
      ewma.push_back(*v);
      if (alarm_tick == kInvalidTick && analyzer.attack_active()) {
        alarm_tick = tick;
      }
    }
  }

  std::cout << "profile: mu_E = " << FormatFixed(profile.mean, 1)
            << ", sigma_E = " << FormatFixed(profile.stddev, 1)
            << ", normal range = [" << FormatFixed(analyzer.lower_bound(), 1)
            << ", " << FormatFixed(analyzer.upper_bound(), 1) << "]\n";
  std::cout << "attack starts at EWMA window "
            << (stage - static_cast<Tick>(params.window)) / static_cast<Tick>(params.step)
            << " (t=" << clock.ToSeconds(stage) << "s)\n";
  std::cout << "EWMA series (window index left to right):\n  |"
            << Sparkline(ewma, 100) << "|\n";
  if (alarm_tick != kInvalidTick) {
    std::cout << "ALARM raised at t=" << clock.ToSeconds(alarm_tick)
              << "s — " << FormatFixed(clock.ToSeconds(alarm_tick - stage), 1)
              << "s after attack launch (paper: alarm around window 150, "
                 "i.e. ~15-20 s after launch)\n";
  } else {
    std::cout << "no alarm raised (unexpected — check calibration)\n";
  }

  if (flags.GetBool("csv", false)) {
    std::cout << "\nwindow,ewma,lower,upper\n";
    CsvWriter csv(std::cout);
    for (std::size_t i = 0; i < ewma.size(); ++i) {
      csv.Row(static_cast<long long>(i), ewma[i], analyzer.lower_bound(),
              analyzer.upper_bound());
    }
  }
  return 0;
}
