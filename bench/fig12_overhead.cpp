// Figure 12: performance overhead on applications running on co-located VMs.
//
// For every application and every detection scheme, a protected VM is
// monitored while a co-located VM runs the same application to a fixed
// amount of work; no attack is launched. The normalized execution time
// (relative to running with no detection scheme) is the figure's metric.
// Baselines are computed once per (application, seed) and shared across
// schemes.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "eval/report.h"
#include "stats/descriptive.h"
#include "workloads/catalog.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv, {"runs", "work-units", "seed"})) return 1;
  const int runs = static_cast<int>(flags.GetInt("runs", 5));
  const auto work =
      static_cast<std::uint64_t>(flags.GetInt("work-units", 2000));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 51));

  bench::PrintBenchHeader(
      std::cout, "bench_fig12_overhead",
      "Figure 12: normalized execution time of a co-located application "
      "under each detection scheme (no attack running)");

  TextTable table;
  table.SetHeader({"application", "SDS", "SDS/B", "SDS/P", "KStest"});

  double sds_total = 0.0;
  double ks_total = 0.0;
  int apps = 0;

  for (const auto& info : workloads::AppCatalog()) {
    std::vector<eval::Scheme> schemes = {eval::Scheme::kSds,
                                         eval::Scheme::kSdsB,
                                         eval::Scheme::kSdsP,
                                         eval::Scheme::kKsTest};
    std::vector<std::vector<double>> ratios(schemes.size());
    for (int r = 0; r < runs; ++r) {
      eval::OverheadRunConfig cfg;
      cfg.app = info.name;
      cfg.work_target_units = work;
      cfg.scheme = eval::Scheme::kNone;
      const auto base = eval::RunOverheadRun(cfg, seed + static_cast<std::uint64_t>(r));
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        cfg.scheme = schemes[s];
        const auto with =
            eval::RunOverheadRun(cfg, seed + static_cast<std::uint64_t>(r));
        ratios[s].push_back(static_cast<double>(with.completion_ticks) /
                            static_cast<double>(base.completion_ticks));
      }
    }
    std::vector<std::string> row = {info.name};
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto summary = Summarize(ratios[s]);
      row.push_back(FormatFixed(summary.median, 3));
      if (schemes[s] == eval::Scheme::kSds) sds_total += summary.median;
      if (schemes[s] == eval::Scheme::kKsTest) ks_total += summary.median;
    }
    table.AddRow(row);
    ++apps;
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nnormalized execution time (median of " << runs
            << " paired runs; 1.000 = no overhead):\n\n";
  table.Print(std::cout);
  std::cout << "\nmean overhead: SDS "
            << FormatFixed((sds_total / apps - 1.0) * 100.0, 1)
            << "%  vs  KStest "
            << FormatFixed((ks_total / apps - 1.0) * 100.0, 1)
            << "%\nShape check (paper): SDS (and SDS/B, SDS/P) 1-2%; KStest "
               "3-8% due to throttled reference collection and the "
               "identification sweeps.\n";
  return 0;
}
