// Figure 8: SDS/P detection walk-through on FaceNet.
//
// Part (a): the MA time series of the periodic application; part (b): the
// sequence of periods computed by DFT-ACF over the sliding W_P window. The
// period sits near its profiled value (~17 MA steps) until the attack; it
// then deviates (or disappears) on H_P consecutive checks and the alarm
// fires.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "detect/period.h"
#include "detect/profile.h"
#include "eval/experiment.h"
#include "signal/moving_average.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv, {"app", "attack", "seed"})) return 1;
  const std::string app = flags.GetString("app", "facenet");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 13));
  const auto attack = flags.GetString("attack", "bus-lock") == "llc-cleansing"
                          ? eval::AttackKind::kLlcCleansing
                          : eval::AttackKind::kBusLock;

  bench::PrintBenchHeader(
      std::cout, "bench_fig08_sdsp_example",
      "Figure 8: FaceNet MA time series (a) and the real-time computed "
      "period sequence (b)");

  const detect::DetectorParams params;
  const TickClock clock;

  // Stage 1: profile the period.
  eval::ScenarioConfig base;
  base.app = app;
  const auto clean = eval::CollectCleanSamples(base, 12000, seed + 1);
  const auto access_profile = detect::ClassifyPeriodicity(
      detect::ChannelSeries(clean, pcm::Channel::kMissNum), params);
  if (!access_profile) {
    std::cout << "application did not classify as periodic; aborting\n";
    return 1;
  }
  std::cout << "profiled period p = " << FormatFixed(access_profile->period, 1)
            << " MA steps (" << FormatFixed(access_profile->period *
                                                static_cast<double>(params.step) *
                                                clock.tpcm_seconds(),
                                            1)
            << " s), strength " << FormatFixed(access_profile->strength, 2)
            << "; W_P = 2p, dW_P = " << params.delta_wp
            << ", H_P = " << params.h_p << "\n\n";

  // Monitored run: 90 s clean + 90 s attacked.
  const Tick stage = clock.ToTicks(90.0);
  const auto samples =
      eval::RunMeasurementStudy(app, attack, 2 * stage, stage, seed);
  const auto miss = detect::ChannelSeries(samples, pcm::Channel::kMissNum);

  detect::PeriodAnalyzer analyzer(*access_profile, params);
  std::vector<double> ma_series;
  Tick alarm_tick = kInvalidTick;
  {
    SlidingWindowAverage ma(params.window, params.step);
    Tick tick = 0;
    for (double v : miss) {
      ++tick;
      if (const auto m = ma.Push(v)) ma_series.push_back(*m);
      analyzer.Observe(v);
      if (alarm_tick == kInvalidTick && analyzer.attack_active()) {
        alarm_tick = tick;
      }
    }
  }

  std::cout << "(a) MA time series (attack at t=" << clock.ToSeconds(stage)
            << "s):\n  |" << Sparkline(ma_series, 100) << "|\n\n";

  std::cout << "(b) computed period at each check (MA steps; '-' = no "
               "period found):\n    ";
  for (const auto& check : analyzer.checks()) {
    if (check.period) {
      std::cout << FormatFixed(*check.period, 0);
    } else {
      std::cout << '-';
    }
    std::cout << (check.abnormal ? "! " : "  ");
  }
  std::cout << "\n    ('!' marks checks deviating >20% from the profile)\n\n";

  if (alarm_tick != kInvalidTick) {
    std::cout << "ALARM raised at t=" << clock.ToSeconds(alarm_tick) << "s — "
              << FormatFixed(clock.ToSeconds(alarm_tick - stage), 1)
              << "s after attack launch (paper: 5 consecutive deviations "
                 "trigger the alarm)\n";
  } else {
    std::cout << "no alarm raised (unexpected — check calibration)\n";
  }
  return 0;
}
