// Actuation chaos trajectory: mitigation convergence under a fallible
// control plane.
//
// Sweeps actuation fault kind x per-command fault rate over the synthetic-
// alarm chaos run (eval/actuation.h): a bus-locking attacker degrades the
// victim, an alarm fires, and the MitigationEngine has to land its response
// through an Actuator that loses, aborts or bounces commands. The output is
// a convergence curve per fault kind — settle ratio, time-to-settled,
// escalation pressure and the victim's residual degradation — plus one
// fault-free baseline cell, and a machine-readable `BENCH_actuation {json}`
// line for trend tracking across commits.
//
// This has no counterpart figure in the paper (which treats "take proper
// actions (e.g., VM migrations)" as instantaneous and infallible); it
// extends the evaluation to the operational question behind that clause:
// how unreliable can the actuation path get before the response stops
// landing at all?
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/reporter.h"
#include "eval/actuation.h"

int main(int argc, char** argv) {
  using namespace sds;

  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"app", "application to protect (default kmeans)"},
           {"policy", "migrate-victim | quarantine-attacker | "
                      "throttle-fallback (default migrate-victim)"},
           {"attribute", "pass the true attacker id with the alarm"},
           {"verify", "efficacy verification window in ticks (default 0)"},
           {"rates", "comma-separated fault rates (default 0.1,0.25,0.5)"},
           {"runs", "seeded runs per grid cell (default 3)"},
           {"seed", "base simulation seed (default 7100)"},
           {"smoke", "tiny windows + 1 run per cell: CI smoke test"},
           {"json_out", "also write the BENCH_actuation JSON to this file"}})) {
    return flags.help_requested() ? 0 : 1;
  }

  eval::ActuationSweepConfig config;
  config.run.app = flags.GetString("app", "kmeans");
  const std::string policy = flags.GetString("policy", "migrate-victim");
  config.run.mitigation.policy =
      policy == "quarantine-attacker"
          ? cluster::MitigationPolicy::kQuarantineAttacker
      : policy == "throttle-fallback"
          ? cluster::MitigationPolicy::kThrottleFallback
          : cluster::MitigationPolicy::kMigrateVictim;
  config.run.attribute = flags.GetBool("attribute", false);
  config.run.mitigation.verify_window =
      static_cast<Tick>(flags.GetInt("verify", 0));
  config.runs_per_cell = static_cast<int>(flags.GetInt("runs", 3));
  config.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7100));

  config.rates.clear();
  std::stringstream rates(flags.GetString("rates", "0.1,0.25,0.5"));
  for (std::string tok; std::getline(rates, tok, ',');) {
    if (!tok.empty()) config.rates.push_back(std::stod(tok));
  }

  if (flags.GetBool("smoke", false)) {
    // CI-sized: one run per cell, short windows, two rates. Still covers
    // every fault kind and the full retry / escalate / fallback chain.
    config.runs_per_cell = 1;
    config.run.clean_window = 200;
    config.run.attack_lead = 150;
    config.run.settle_cap = 2000;
    config.run.post_window = 200;
    config.rates = {0.25, 0.5};
  }

  bench::PrintBenchHeader(
      std::cout, "bench_actuation_fault_sweep",
      "Robustness extension (no paper counterpart): mitigation convergence "
      "vs actuation fault rate, per fault kind");
  std::cout << "app=" << config.run.app << " policy="
            << cluster::MitigationPolicyName(config.run.mitigation.policy)
            << " attributed=" << (config.run.attribute ? "yes" : "no")
            << " verify_window=" << config.run.mitigation.verify_window
            << " runs/cell=" << config.runs_per_cell << "\n\n";

  const eval::ActuationSweepResult result = eval::RunActuationSweep(config);

  TextTable table;
  table.SetHeader({"fault kind", "rate", "settled", "mean settle (ticks)",
                   "max settle", "escalated", "throttled", "retries",
                   "timeouts", "residual"});
  auto row = [&table](const eval::ActuationCell& cell, const char* kind) {
    table.Row(kind, FormatFixed(cell.rate, 2),
              FormatFixed(cell.settle_ratio(), 2),
              FormatFixed(cell.mean_time_to_settled, 0),
              TextTable::Str(cell.max_time_to_settled),
              TextTable::Str(cell.escalated_runs),
              TextTable::Str(cell.throttle_runs),
              TextTable::Str(cell.retries), TextTable::Str(cell.timeouts),
              FormatFixed(cell.mean_residual_degradation, 2));
  };
  row(result.baseline, "(baseline)");
  for (const auto& cell : result.cells) {
    row(cell, fault::ActuationFaultKindName(cell.kind));
  }
  table.Print(std::cout);

  std::cout << "\nShape check: the baseline settles at the alarm tick with "
               "zero retries; time-to-settled\nshould grow with rate while "
               "the settle ratio stays 1.0 — the throttle fallback makes\n"
               "the chain converge even when every fallible action keeps "
               "failing.\n\n";

  if (!bench::EmitBenchJson(std::cout, "actuation",
                            flags.GetString("json_out", ""),
                            [&](std::ostream& os) {
                              eval::WriteActuationJson(os, config, result);
                            })) {
    return 1;
  }
  return 0;
}
