// Micro-benchmarks (google-benchmark) for the primitives behind the paper's
// "lightweight" claim: the per-sample cost of the SDS/B pipeline, the
// per-check cost of SDS/P's DFT-ACF, the KS test the baseline runs every
// L_M, and the simulator's cache/bus hot path.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "detect/boundary.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"
#include "detect/period.h"
#include "signal/acf.h"
#include "signal/fft.h"
#include "signal/moving_average.h"
#include "signal/period_detect.h"
#include "sim/machine.h"
#include "stats/ks_test.h"

namespace {

using namespace sds;

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Normal(100.0, 10.0);
  return v;
}

void BM_BoundaryAnalyzerObserve(benchmark::State& state) {
  detect::BoundaryProfile profile{100.0, 10.0};
  detect::DetectorParams params;
  detect::BoundaryAnalyzer analyzer(profile, params);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Observe(rng.Normal(100.0, 10.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundaryAnalyzerObserve);

void BM_PeriodAnalyzerObserve(benchmark::State& state) {
  detect::PeriodProfile profile{17.0, 0.8};
  detect::DetectorParams params;
  detect::PeriodAnalyzer analyzer(profile, params);
  Rng rng(2);
  std::size_t t = 0;
  for (auto _ : state) {
    const double v =
        100.0 +
        30.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t++) /
                        850.0) +
        rng.Normal(0.0, 5.0);
    benchmark::DoNotOptimize(analyzer.Observe(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PeriodAnalyzerObserve);

void BM_DftAcfPeriodDetect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 17.0) +
           0.3 * rng.Normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DetectPeriod(x));
  }
}
BENCHMARK(BM_DftAcfPeriodDetect)->Arg(34)->Arg(68)->Arg(128)->Arg(512);

void BM_TwoSampleKsTest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(n, 4);
  const auto b = RandomSeries(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwoSampleKsTest(a, b));
  }
}
BENCHMARK(BM_TwoSampleKsTest)->Arg(100)->Arg(1000);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = RandomSeries(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FftReal(x));
  }
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(256)->Arg(1024)->Arg(100)->Arg(1000);

void BM_AutocorrelationFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = RandomSeries(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AutocorrelationFft(x, n / 2));
  }
}
BENCHMARK(BM_AutocorrelationFft)->Arg(64)->Arg(512);

void BM_SlidingWindowAverage(benchmark::State& state) {
  SlidingWindowAverage ma(200, 50);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ma.Push(rng.Normal(100.0, 10.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingWindowAverage);

void BM_CacheAccess(benchmark::State& state) {
  sim::MachineConfig cfg;
  sim::Machine machine(cfg);
  machine.BeginTick();
  Rng rng(9);
  const std::uint64_t region = 100000;
  for (auto _ : state) {
    machine.BeginTick();
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(machine.Access(1, rng.UniformInt(region)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CacheAccess);

// The same hot path with a telemetry handle attached but the profiler left
// DISABLED (the default) — the documented "observability off" configuration.
// Regression guard for the single-branch cost claim: this must stay within
// noise of BM_CacheAccess.
void BM_CacheAccessInstrumentedOff(benchmark::State& state) {
  telemetry::Telemetry telemetry;
  telemetry.tracer().DisableAllLayers();
  sim::MachineConfig cfg;
  cfg.telemetry = &telemetry;
  sim::Machine machine(cfg);
  machine.BeginTick();
  Rng rng(9);
  const std::uint64_t region = 100000;
  for (auto _ : state) {
    machine.BeginTick();
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(machine.Access(1, rng.UniformInt(region)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CacheAccessInstrumentedOff);

// Cost of one scoped span on a DISABLED profiler: the branch every
// instrumentation site pays when profiling is off at runtime.
void BM_SpanDisabled(benchmark::State& state) {
  telemetry::SpanProfiler profiler;
  const telemetry::SpanId id = profiler.RegisterSpan("bench.disabled");
  for (auto _ : state) {
    SDS_PROFILE_SPAN(&profiler, id);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

// Cost of one enter/exit pair on an ENABLED profiler (wall clock: two
// steady_clock reads plus tree bookkeeping; this bounds the overhead a
// profiled run adds per instrumented scope).
void BM_SpanEnterExit(benchmark::State& state) {
  telemetry::SpanProfiler profiler;
  const telemetry::SpanId id = profiler.RegisterSpan("bench.enabled");
  profiler.Enable(telemetry::ProfileClock::kWall);
  profiler.set_record_slices(false);
  for (auto _ : state) {
    SDS_PROFILE_SPAN(&profiler, id);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExit);

// As above but retaining slices in the drop-oldest ring (the Perfetto
// export configuration).
void BM_SpanEnterExitWithSlices(benchmark::State& state) {
  telemetry::SpanProfiler profiler;
  const telemetry::SpanId id = profiler.RegisterSpan("bench.sliced");
  profiler.Enable(telemetry::ProfileClock::kWall);
  for (auto _ : state) {
    SDS_PROFILE_SPAN(&profiler, id);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExitWithSlices);

}  // namespace

BENCHMARK_MAIN();
