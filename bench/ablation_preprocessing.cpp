// Ablation (beyond the paper's figures, motivated by Section 4.1): what does
// each preprocessing stage buy? Compares boundary detection driven by
//   raw      thresholding the raw PCM samples directly (W = dW = 1),
//   MA       the sliding-window moving average only (alpha = 1), and
//   MA+EWMA  the full SDS/B pipeline (Table 1 defaults),
// on k-means under the bus locking attack. The paper's claim: raw
// thresholding is inaccurate because of random variation; MA reduces it;
// EWMA smooths further.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "eval/report.h"
#include "stats/chebyshev.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv, {"runs", "seed", "app"})) return 1;
  const int runs = static_cast<int>(flags.GetInt("runs", 3));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 81));
  const std::string app = flags.GetString("app", "kmeans");

  bench::PrintBenchHeader(
      std::cout, "bench_ablation_preprocessing",
      "Ablation of the Section 4.1 preprocessing pipeline (raw vs MA vs "
      "MA+EWMA)");

  struct Variant {
    const char* name;
    detect::DetectorParams params;
  };
  std::vector<Variant> variants;
  {
    // Raw thresholding: no averaging at all. H_C rescaled so the minimum
    // detection time H_C * dW * T_PCM stays at the Table 1 value (15 s);
    // the per-sample violation probability is NOT Chebyshev-thin here,
    // which is exactly the weakness this ablation demonstrates.
    detect::DetectorParams p;
    p.window = 1;
    p.step = 1;
    p.alpha = 1.0;
    p.h_c = 1500;
    variants.push_back({"raw threshold", p});
  }
  {
    detect::DetectorParams p;  // W=200, dW=50
    p.alpha = 1.0;             // EWMA disabled: S_n == M_n
    variants.push_back({"MA only", p});
  }
  {
    detect::DetectorParams p;  // full Table 1 pipeline
    variants.push_back({"MA + EWMA", p});
  }

  const int threads = eval::DefaultThreads();
  TextTable table;
  table.SetHeader({"preprocessing", "recall", "specificity", "delay (s)"});
  for (const auto& v : variants) {
    eval::DetectionRunConfig cfg;
    cfg.app = app;
    cfg.attack = eval::AttackKind::kBusLock;
    cfg.scheme = eval::Scheme::kSdsB;
    cfg.params = v.params;
    const auto agg = eval::AggregateDetection(cfg, runs, seed, threads);
    table.Row(v.name, FormatFixed(agg.recall.median, 2),
              FormatFixed(agg.specificity.median, 2),
              FormatFixed(agg.delay_seconds.median, 1));
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.Print(std::cout);
  std::cout << "\nExpected: the smoothed variants hold high specificity; "
               "raw thresholding trades accuracy for nothing (its per-"
               "sample variance makes the Chebyshev bound loose).\n";
  return 0;
}
