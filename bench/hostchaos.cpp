// Host-chaos trajectory: blind windows, evacuation convergence, and the
// warm detector-state handoff win (DESIGN.md §17).
//
// Sweeps two cell families over the host-chaos run (eval/hostchaos.h),
// each cell executed twice on identical seeds — once with warm detector
// handoff, once cold:
//
//   * forced-migration periods — the "attacker-induced mitigation" evasion
//     cell: with cold handoff every migration resets the analyzer windows,
//     so an attacker that keeps triggering mitigations is never caught;
//   * host crash rates — hosts die and the evacuation engine re-places
//     their VMs through the actuator while the detector follows the victim.
//
// Output: per-cell warm-vs-cold blind-window ticks and missed-alarm rate,
// evacuation convergence counters, and a machine-readable
// `BENCH_hostchaos {json}` line. The binary FAILS (exit 1) unless warm is
// strictly below cold on both metrics in every cell — the acceptance
// criterion of the handoff subsystem, enforced on every CI run.
//
// No counterpart figure in the paper, which treats migration as free and
// instantaneous; this extends the evaluation to what migration costs the
// detector and how that cost is eliminated.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/reporter.h"
#include "eval/hostchaos.h"

int main(int argc, char** argv) {
  using namespace sds;

  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"app", "application to protect (default kmeans)"},
           {"periods",
            "comma-separated forced-migration periods in ticks "
            "(default 800,1600,3200)"},
           {"rates",
            "comma-separated per-host-tick crash rates "
            "(default 0.0003,0.0006,0.0012)"},
           {"runs", "seeded runs per cell side (default 2)"},
           {"seed", "base simulation seed (default 9100)"},
           {"smoke", "tiny grid + short horizon: CI smoke test"},
           {"json_out", "also write the BENCH_hostchaos JSON to this file"},
           {"trace_out",
            "write one warm + one cold chaos-run JSONL trace for "
            "trace_inspect --hostchaos"}})) {
    return flags.help_requested() ? 0 : 1;
  }

  eval::HostChaosSweepConfig config;
  config.run.app = flags.GetString("app", "kmeans");
  config.runs_per_cell = static_cast<int>(flags.GetInt("runs", 2));
  config.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 9100));

  config.migration_periods.clear();
  std::stringstream periods(flags.GetString("periods", "800,1600,3200"));
  for (std::string tok; std::getline(periods, tok, ',');) {
    if (!tok.empty()) {
      config.migration_periods.push_back(
          static_cast<Tick>(std::stoll(tok)));
    }
  }
  config.crash_rates.clear();
  std::stringstream rates(flags.GetString("rates", "0.0003,0.0006,0.0012"));
  for (std::string tok; std::getline(rates, tok, ',');) {
    if (!tok.empty()) config.crash_rates.push_back(std::stod(tok));
  }

  if (flags.GetBool("smoke", false)) {
    // CI-sized: one run per cell side, one cell per family, a short
    // horizon, and a faster-deciding detector (smaller W / h_c) so the
    // warm-vs-cold gap is still measured through the full machinery.
    config.runs_per_cell = 1;
    config.migration_periods = {400};
    config.crash_rates = {0.001};
    config.run.attack_start = 500;
    config.run.horizon = 3000;
    config.run.params.window = 100;
    config.run.params.step = 25;
    config.run.params.h_c = 8;
    config.scheduled_crash_after = 400;
    config.scheduled_crash_down = 600;
  }

  bench::PrintBenchHeader(
      std::cout, "bench_hostchaos",
      "Robustness extension (no paper counterpart): blind windows and "
      "missed alarms across migrations, warm vs cold detector handoff");
  std::cout << "app=" << config.run.app << " hosts=" << config.run.hosts
            << " horizon=" << config.run.horizon
            << " attack_start=" << config.run.attack_start
            << " runs/cell=" << config.runs_per_cell << "\n\n";

  const eval::HostChaosSweepResult result = eval::RunHostChaosSweep(config);

  TextTable table;
  table.SetHeader({"cell", "migrations", "blind warm", "blind cold",
                   "missed warm", "missed cold", "evac ok", "throttled",
                   "down ticks"});
  const auto row = [&table](const std::string& name,
                            const eval::HostChaosCell& cell) {
    table.Row(name, TextTable::Str(cell.warm.migrations),
              FormatFixed(cell.warm.mean_blind_ticks, 1),
              FormatFixed(cell.cold.mean_blind_ticks, 1),
              FormatFixed(cell.warm.missed_alarm_rate, 3),
              FormatFixed(cell.cold.missed_alarm_rate, 3),
              TextTable::Str(cell.warm.evac_migrated),
              TextTable::Str(cell.warm.evac_throttled),
              TextTable::Str(cell.warm.down_ticks));
  };
  for (const auto& cell : result.migration_cells) {
    row("period " + std::to_string(cell.migrate_every), cell);
  }
  for (const auto& cell : result.chaos_cells) {
    std::ostringstream name;
    name << "crash " << cell.crash_rate;
    row(name.str(), cell);
  }
  table.Print(std::cout);

  std::cout << "\nShape check: warm blind windows and missed-alarm rates sit "
               "strictly below cold in\nevery cell; cold misses grow as the "
               "forced-migration period shrinks below the\ndetection delay "
               "(the evasion window the handoff closes).\n\n";

  const std::string trace_out = flags.GetString("trace_out", "");
  if (!trace_out.empty()) {
    // One warm + one cold run of the first chaos cell (same seeds), so the
    // inspectors can show the host timeline, evacuations and both handoff
    // modes side by side.
    eval::HostChaosRunConfig run = config.run;
    run.host_plan.set_rate(fault::HostFaultKind::kCrash,
                           config.crash_rates.empty()
                               ? 0.0
                               : config.crash_rates.front());
    fault::ScheduledHostFault crash;
    crash.tick = run.attack_start + config.scheduled_crash_after;
    crash.host = 0;
    crash.kind = fault::HostFaultKind::kCrash;
    crash.duration = config.scheduled_crash_down;
    run.host_plan.scheduled.push_back(crash);
    run.host_plan.seed = config.fault_seed;
    std::ofstream trace(trace_out);
    if (!trace) {
      std::cerr << "cannot write trace file: " << trace_out << "\n";
      return 1;
    }
    for (const bool warm : {true, false}) {
      run.warm_handoff = warm;
      const eval::HostChaosRunResult res =
          eval::RunHostChaosRun(run, config.base_seed);
      eval::WriteHostChaosTrace(trace, run, res);
    }
    std::cout << "wrote hostchaos trace to " << trace_out << "\n";
  }

  if (!bench::EmitBenchJson(std::cout, "hostchaos",
                            flags.GetString("json_out", ""),
                            [&](std::ostream& os) {
                              eval::WriteHostChaosJson(os, config, result);
                            })) {
    return 1;
  }

  if (!result.warm_strictly_better) {
    std::cerr << "FAIL: warm handoff did not strictly beat cold in every "
                 "cell\n";
    return 1;
  }
  return 0;
}
