// Figure 1 + Section 3.2: KStest false alarms on attack-free runs.
//
// Reproduces (a) the four per-interval 0/1 decision strips of Figure 1 for
// TeraSort — showing runs of >= 4 consecutive rejections although no attack
// exists — and (b) the per-application false-alarm fractions quoted in
// Section 3.2 (TeraSort > 60%, PCA/FaceNet 55-60%, stationary apps 20-40%).
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "workloads/catalog.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv, {"intervals", "seed"})) return 1;
  const int intervals = static_cast<int>(flags.GetInt("intervals", 12));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 21));

  bench::PrintBenchHeader(
      std::cout, "bench_fig01_kstest_false_alarms",
      "Figure 1 (KStest decisions on TeraSort, no attack) and the "
      "Section 3.2 per-application false-alarm fractions");

  const detect::KsTestParams params;

  // Part (a): TeraSort decision strips.
  const auto terasort =
      eval::RunKsFalseAlarmStudy("terasort", params, intervals, seed);
  std::cout << "TeraSort, no attack: KS test decisions per L_R interval\n"
            << "(1 = 'distributions differ'; >=4 consecutive 1s would "
               "declare an attack)\n\n";
  const std::size_t shown =
      std::min<std::size_t>(4, terasort.interval_decisions.size());
  for (std::size_t i = 0; i < shown; ++i) {
    std::cout << "  interval " << i << ": ";
    int consecutive = 0;
    bool alarm = false;
    for (int v : terasort.interval_decisions[i]) {
      std::cout << v << ' ';
      consecutive = v ? consecutive + 1 : 0;
      if (consecutive >= params.consecutive_rejections) alarm = true;
    }
    std::cout << (alarm ? "  -> FALSE ALARM" : "") << '\n';
  }
  std::cout << '\n';

  // Part (b): alarm fraction per application.
  TextTable table;
  table.SetHeader({"application", "false-alarm fraction", "paper reports"});
  const std::vector<std::pair<std::string, std::string>> paper = {
      {"bayes", "~30%"},    {"svm", "~35%"},         {"kmeans", "~20%"},
      {"pca", "~60%"},      {"aggregation", "~40%"}, {"join", "-"},
      {"scan", "~40%"},     {"terasort", ">60%"},    {"pagerank", "~30%"},
      {"facenet", "~55%"}};
  for (const auto& [app, reported] : paper) {
    const auto result =
        app == "terasort"
            ? terasort
            : eval::RunKsFalseAlarmStudy(app, params, intervals, seed);
    table.Row(app, FormatFixed(result.alarm_fraction * 100.0, 0) + "%",
              reported);
  }
  table.Print(std::cout);
  std::cout << "\nShape check: phase-switching and periodic applications "
               "(terasort, pca, facenet)\nshould false-alarm in a majority "
               "of intervals; stationary ones in a minority.\n";
  return 0;
}
