// Robustness trajectory: detection accuracy under a degraded monitoring
// plane.
//
// Sweeps fault kind x fault rate over the three-stage detection protocol,
// with the PCM stream routed through a deterministic FaultInjector and the
// detector protected by the degradation policies of detect/degrade.h. The
// output is a degradation curve per fault kind — recall, specificity and
// mean detection delay as the monitoring plane rots — plus one fault-free
// baseline cell, and a machine-readable `BENCH_robustness {json}` line for
// trend tracking across commits.
//
// This has no counterpart figure in the paper (which assumes perfect PCM
// reads); it extends the evaluation to the operational question a deployer
// would ask first: how bad can the monitoring plane get before SDS stops
// earning its keep?
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/reporter.h"
#include "eval/robustness.h"

int main(int argc, char** argv) {
  using namespace sds;

  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"app", "application to protect (default kmeans)"},
           {"attack", "bus-lock | llc-cleansing (default bus-lock)"},
           {"scheme", "SDS | SDS/B | KStest (default SDS)"},
           {"policy", "gap policy: hold-last | skip-freeze | rewarm "
                      "(default hold-last)"},
           {"rates", "comma-separated fault rates (default 0.01,0.05,0.2)"},
           {"runs", "seeded runs per grid cell (default 3)"},
           {"seed", "base simulation seed (default 9000)"},
           {"smoke", "tiny stages + 1 run per cell: CI smoke test"},
           {"json_out", "also write the BENCH_robustness JSON to this file"}})) {
    return flags.help_requested() ? 0 : 1;
  }

  eval::RobustnessSweepConfig config;
  config.run.app = flags.GetString("app", "kmeans");
  const std::string attack = flags.GetString("attack", "bus-lock");
  config.run.attack = attack == "llc-cleansing"
                          ? eval::AttackKind::kLlcCleansing
                          : eval::AttackKind::kBusLock;
  const std::string scheme = flags.GetString("scheme", "SDS");
  config.run.scheme = scheme == "KStest" ? eval::Scheme::kKsTest
                      : scheme == "SDS/B" ? eval::Scheme::kSdsB
                                          : eval::Scheme::kSds;
  const std::string policy = flags.GetString("policy", "hold-last");
  config.degrade.gap_policy = policy == "skip-freeze"
                                  ? detect::GapPolicy::kSkipFreeze
                              : policy == "rewarm" ? detect::GapPolicy::kRewarm
                                                   : detect::GapPolicy::kHoldLast;
  config.runs_per_cell = static_cast<int>(flags.GetInt("runs", 3));
  config.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 9000));

  config.rates.clear();
  std::stringstream rates(flags.GetString("rates", "0.01,0.05,0.2"));
  for (std::string tok; std::getline(rates, tok, ',');) {
    if (!tok.empty()) config.rates.push_back(std::stod(tok));
  }

  if (flags.GetBool("smoke", false)) {
    // CI-sized: one run per cell, short stages, two rates. Still covers
    // every fault kind and both alarm-bearing stages.
    config.runs_per_cell = 1;
    config.run.profile_ticks = 3000;
    config.run.clean_ticks = 4000;
    config.run.attack_ticks = 4000;
    config.rates = {0.05, 0.2};
  }

  bench::PrintBenchHeader(
      std::cout, "bench_robustness_fault_sweep",
      "Robustness extension (no paper counterpart): recall / specificity / "
      "delay vs monitoring-plane fault rate, per fault kind");
  std::cout << "app=" << config.run.app
            << " attack=" << eval::AttackName(config.run.attack)
            << " scheme=" << eval::SchemeName(config.run.scheme)
            << " policy=" << detect::GapPolicyName(config.degrade.gap_policy)
            << " runs/cell=" << config.runs_per_cell << "\n\n";

  const eval::RobustnessSweepResult result = eval::RunRobustnessSweep(config);

  TextTable table;
  table.SetHeader({"fault kind", "rate", "recall", "specificity",
                   "mean delay (ticks)", "gap ticks", "quarantined",
                   "restarts"});
  auto row = [&table](const eval::RobustnessCell& cell, const char* kind) {
    table.Row(kind, FormatFixed(cell.rate, 2), FormatFixed(cell.recall(), 2),
              FormatFixed(cell.specificity(), 3),
              FormatFixed(cell.mean_delay_ticks, 0),
              TextTable::Str(cell.counters.degrade.gap_ticks),
              TextTable::Str(cell.counters.degrade.quarantined),
              TextTable::Str(cell.counters.degrade.watchdog_restarts));
  };
  row(result.baseline, "(baseline)");
  for (const auto& cell : result.cells) {
    row(cell, fault::FaultKindName(cell.kind));
  }
  table.Print(std::cout);

  std::cout << "\nShape check: the baseline matches the fault-free accuracy "
               "protocol; recall should\ndegrade gracefully (not cliff) with "
               "rate, and specificity should stay near 1.0 for\nloss-type "
               "faults while corruption stresses the quarantine gate.\n\n";

  if (!bench::EmitBenchJson(std::cout, "robustness",
                            flags.GetString("json_out", ""),
                            [&](std::ostream& os) {
                              eval::WriteRobustnessJson(os, config, result);
                            })) {
    return 1;
  }
  return 0;
}
