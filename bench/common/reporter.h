// Shared emitter for the machine-readable `BENCH_<name> {json}` lines.
//
// Every sweep binary ends with the same ritual: print the grep-able
// `BENCH_<name> ` prefix, stream one JSON object, and optionally mirror the
// payload to a --json_out file for the CI artifact upload. This reporter owns
// that ritual so the protocol can evolve in one place; it also stamps a
// `schema_version` field as the payload's first key, giving downstream trend
// tooling an explicit handle for format migrations instead of sniffing
// field sets.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace sds::bench {

// Version of the BENCH_*.json envelope (the schema_version splice itself and
// the emission protocol), not of any one bench's payload fields.
inline constexpr int kBenchSchemaVersion = 1;

// Prints `BENCH_<name> {"schema_version":N,...}` to `log` and, when
// `json_out_path` is non-empty, writes the same stamped payload (newline-
// terminated) there as well. `payload` must stream exactly one JSON object
// (starting with '{'); the schema_version key is spliced in directly after
// the brace so existing Write*Json functions need no changes. Returns false
// (after a message on `log`) only when the json_out file cannot be written.
bool EmitBenchJson(std::ostream& log, const std::string& name,
                   const std::string& json_out_path,
                   const std::function<void(std::ostream&)>& payload);

}  // namespace sds::bench
