// Shared infrastructure for the figure-reproduction benches.
//
// Figures 9 (recall), 10 (specificity) and 11 (detection delay) are three
// views of the SAME experiment sweep: every application x both attacks x the
// detection schemes, aggregated over seeded runs. Each bench binary is
// standalone, but the sweep is expensive, so the first binary to run it
// writes the rows to a cache file (keyed by the sweep options) and the
// others reload it. Delete .sds_cache/ to force recomputation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/flags.h"
#include "eval/aggregate.h"
#include "eval/experiment.h"

namespace sds::bench {

struct SweepOptions {
  int runs = 3;
  Tick profile_ticks = 12000;
  Tick clean_ticks = 15000;
  Tick attack_ticks = 15000;
  std::uint64_t base_seed = 1000;
  // When non-empty, one representative instrumented SDS run is executed after
  // the sweep and its telemetry stream (events + detector audit + metrics) is
  // written here as JSONL for tools/trace_inspect.
  std::string telemetry_out;
  // Set when parsing stopped because --help was given (exit 0, not 1).
  bool help = false;
};

// Parses the standard sweep flags (--runs, --stage-seconds, --seed,
// --telemetry_out) shared by the accuracy benches. Returns false (after
// printing usage) on error or --help; check options.help to pick the exit
// code.
bool ParseSweepFlags(int argc, char** argv, SweepOptions& options);

// Runs one fully instrumented SDS detection run (kmeans vs. bus locking by
// default) with a telemetry handle attached and writes the JSONL stream to
// options.telemetry_out. No-op when the path is empty.
void MaybeEmitTelemetryRun(const SweepOptions& options, std::ostream& log);

struct AccuracyRow {
  std::string app;
  eval::AttackKind attack = eval::AttackKind::kBusLock;
  eval::Scheme scheme = eval::Scheme::kSds;
  eval::AggregatedDetection agg;
};

// Runs (or loads from cache) the full accuracy sweep: all 10 applications x
// {bus-lock, llc-cleansing} x {SDS, KStest}, plus SDS/B and SDS/P for the
// periodic applications (PCA, FaceNet) as in Figures 9-11.
std::vector<AccuracyRow> RunOrLoadAccuracySweep(const SweepOptions& options,
                                                std::ostream& log);

// Pretty header printed by every bench: what is being reproduced, with the
// Table 1 parameters.
void PrintBenchHeader(std::ostream& os, const std::string& title,
                      const std::string& paper_reference);

}  // namespace sds::bench
