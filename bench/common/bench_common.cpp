#include "common/bench_common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/types.h"
#include "eval/report.h"
#include "telemetry/telemetry.h"
#include "workloads/catalog.h"

namespace sds::bench {
namespace {

constexpr int kCacheVersion = 3;

std::string CachePath(const SweepOptions& o) {
  std::ostringstream os;
  os << ".sds_cache/accuracy_v" << kCacheVersion << "_r" << o.runs << "_p"
     << o.profile_ticks << "_c" << o.clean_ticks << "_a" << o.attack_ticks
     << "_s" << o.base_seed << ".txt";
  return os.str();
}

const char* AttackKey(eval::AttackKind a) {
  return a == eval::AttackKind::kBusLock ? "bus" : "cleanse";
}

int SchemeKey(eval::Scheme s) { return static_cast<int>(s); }

void WriteCache(const std::string& path,
                const std::vector<AccuracyRow>& rows) {
  std::filesystem::create_directories(".sds_cache");
  std::ofstream out(path);
  for (const auto& r : rows) {
    out << r.app << ' ' << AttackKey(r.attack) << ' ' << SchemeKey(r.scheme)
        << ' ' << r.agg.runs << ' ' << r.agg.detected_runs << ' '
        << r.agg.recall.p10 << ' ' << r.agg.recall.median << ' '
        << r.agg.recall.p90 << ' ' << r.agg.specificity.p10 << ' '
        << r.agg.specificity.median << ' ' << r.agg.specificity.p90 << ' '
        << r.agg.delay_seconds.p10 << ' ' << r.agg.delay_seconds.median << ' '
        << r.agg.delay_seconds.p90 << '\n';
  }
}

bool LoadCache(const std::string& path, std::vector<AccuracyRow>& rows) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream is(line);
    AccuracyRow r;
    std::string attack;
    int scheme = 0;
    if (!(is >> r.app >> attack >> scheme >> r.agg.runs >>
          r.agg.detected_runs >> r.agg.recall.p10 >> r.agg.recall.median >>
          r.agg.recall.p90 >> r.agg.specificity.p10 >>
          r.agg.specificity.median >> r.agg.specificity.p90 >>
          r.agg.delay_seconds.p10 >> r.agg.delay_seconds.median >>
          r.agg.delay_seconds.p90)) {
      return false;
    }
    r.attack = attack == "bus" ? eval::AttackKind::kBusLock
                               : eval::AttackKind::kLlcCleansing;
    r.scheme = static_cast<eval::Scheme>(scheme);
    rows.push_back(r);
  }
  return !rows.empty();
}

}  // namespace

bool ParseSweepFlags(int argc, char** argv, SweepOptions& options) {
  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"runs", "seeded runs per app x attack x scheme configuration"},
           {"stage-seconds", "clean and attack stage length in virtual seconds"},
           {"profile-seconds", "profiling stage length in virtual seconds"},
           {"seed", "base seed for the run-index seed sequence"},
           {"telemetry_out",
            "write one instrumented run's telemetry JSONL to this path"}})) {
    options.help = flags.help_requested();
    return false;
  }
  options.runs = static_cast<int>(flags.GetInt("runs", options.runs));
  const TickClock clock;
  if (flags.Has("stage-seconds")) {
    const Tick t = clock.ToTicks(flags.GetDouble("stage-seconds", 150.0));
    options.clean_ticks = t;
    options.attack_ticks = t;
  }
  if (flags.Has("profile-seconds")) {
    options.profile_ticks =
        clock.ToTicks(flags.GetDouble("profile-seconds", 120.0));
  }
  options.base_seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", static_cast<long long>(options.base_seed)));
  options.telemetry_out = flags.GetString("telemetry_out", "");
  return true;
}

void MaybeEmitTelemetryRun(const SweepOptions& options, std::ostream& log) {
  if (options.telemetry_out.empty()) return;
  // One representative run with every layer instrumented: kmeans under the
  // bus-locking attack, combined SDS. Single-threaded, so attaching the
  // telemetry handle to the machine config is safe.
  telemetry::Telemetry telemetry;
  eval::DetectionRunConfig cfg;
  cfg.app = "kmeans";
  cfg.attack = eval::AttackKind::kBusLock;
  cfg.scheme = eval::Scheme::kSds;
  cfg.profile_ticks = options.profile_ticks;
  cfg.clean_ticks = options.clean_ticks;
  cfg.attack_ticks = options.attack_ticks;
  cfg.scenario.machine.telemetry = &telemetry;
  const auto result = eval::RunDetectionRun(cfg, options.base_seed);
  if (!telemetry.WriteJsonlFile(options.telemetry_out)) {
    log << "telemetry: cannot write " << options.telemetry_out << "\n";
    return;
  }
  log << "telemetry: wrote " << options.telemetry_out << " ("
      << telemetry.tracer().emitted() << " events, "
      << telemetry.audit().records().size() << " audit records; run "
      << (result.detected ? "detected" : "missed")
      << " the attack); inspect with tools/trace_inspect\n";
}

std::vector<AccuracyRow> RunOrLoadAccuracySweep(const SweepOptions& options,
                                                std::ostream& log) {
  const std::string path = CachePath(options);
  std::vector<AccuracyRow> rows;
  if (LoadCache(path, rows)) {
    log << "(reusing sweep results from " << path
        << "; delete the file to recompute)\n\n";
    return rows;
  }

  log << "running accuracy sweep: " << options.runs
      << " runs per configuration, stages "
      << TickClock().ToSeconds(options.clean_ticks) << "s + "
      << TickClock().ToSeconds(options.attack_ticks)
      << "s (this is the expensive step; figures 9-11 share it via "
      << path << ")\n";

  const auto schemes_for = [](const workloads::AppInfo& info) {
    std::vector<eval::Scheme> schemes = {eval::Scheme::kSds,
                                         eval::Scheme::kKsTest};
    if (info.periodic) {
      schemes.push_back(eval::Scheme::kSdsB);
      schemes.push_back(eval::Scheme::kSdsP);
    }
    return schemes;
  };

  const int threads = eval::DefaultThreads();
  for (const auto& info : workloads::AppCatalog()) {
    for (eval::AttackKind attack :
         {eval::AttackKind::kBusLock, eval::AttackKind::kLlcCleansing}) {
      for (eval::Scheme scheme : schemes_for(info)) {
        eval::DetectionRunConfig cfg;
        cfg.app = info.name;
        cfg.attack = attack;
        cfg.scheme = scheme;
        cfg.profile_ticks = options.profile_ticks;
        cfg.clean_ticks = options.clean_ticks;
        cfg.attack_ticks = options.attack_ticks;
        AccuracyRow row;
        row.app = info.name;
        row.attack = attack;
        row.scheme = scheme;
        row.agg = eval::AggregateDetection(cfg, options.runs,
                                           options.base_seed, threads);
        rows.push_back(row);
        log << "  " << info.name << " / " << eval::AttackName(attack) << " / "
            << eval::SchemeName(scheme)
            << ": recall=" << row.agg.recall.median
            << " spec=" << row.agg.specificity.median
            << " delay=" << row.agg.delay_seconds.median << "s\n";
        log.flush();
      }
    }
  }
  WriteCache(path, rows);
  log << "\n";
  return rows;
}

void PrintBenchHeader(std::ostream& os, const std::string& title,
                      const std::string& paper_reference) {
  os << "================================================================\n"
     << title << "\n"
     << "reproduces: " << paper_reference << "\n"
     << "================================================================\n\n";
  eval::PrintParams(os, detect::DetectorParams{}, detect::KsTestParams{});
}

}  // namespace sds::bench
