#include "common/reporter.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace sds::bench {

bool EmitBenchJson(std::ostream& log, const std::string& name,
                   const std::string& json_out_path,
                   const std::function<void(std::ostream&)>& payload) {
  std::ostringstream body;
  payload(body);
  const std::string raw = body.str();
  SDS_CHECK(!raw.empty() && raw.front() == '{',
            "bench payload must be one JSON object");
  std::string stamped = "{\"schema_version\":";
  stamped += std::to_string(kBenchSchemaVersion);
  // A bare "{}" payload needs no separating comma.
  if (raw.size() > 1 && raw[1] != '}') stamped += ',';
  stamped.append(raw, 1, std::string::npos);

  log << "BENCH_" << name << ' ' << stamped << '\n';

  if (!json_out_path.empty()) {
    std::ofstream out(json_out_path);
    if (!out) {
      log << "cannot write " << json_out_path << "\n";
      return false;
    }
    out << stamped << '\n';
    log << "JSON written to " << json_out_path << "\n";
  }
  return true;
}

}  // namespace sds::bench
