// Figure 11: detection delay of SDS vs KStest (plus SDS/B and SDS/P for the
// periodic applications), per application, for both attacks.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  using namespace sds;
  bench::SweepOptions options;
  if (!bench::ParseSweepFlags(argc, argv, options)) return options.help ? 0 : 1;

  bench::PrintBenchHeader(
      std::cout, "bench_fig11_delay",
      "Figure 11 (a: bus locking, b: LLC cleansing): detection delay in "
      "seconds, median with 10th/90th percentile bars");

  const auto rows = bench::RunOrLoadAccuracySweep(options, std::cout);
  bench::MaybeEmitTelemetryRun(options, std::cout);

  double sds_sum = 0.0;
  double ks_sum = 0.0;
  int sds_n = 0;
  int ks_n = 0;
  for (eval::AttackKind attack :
       {eval::AttackKind::kBusLock, eval::AttackKind::kLlcCleansing}) {
    std::cout << "Figure 11("
              << (attack == eval::AttackKind::kBusLock ? 'a' : 'b')
              << "): detection delay under the " << eval::AttackName(attack)
              << " attack (seconds)\n\n";
    TextTable table;
    table.SetHeader({"application", "scheme", "delay (s) med [p10, p90]"});
    for (const auto& row : rows) {
      if (row.attack != attack) continue;
      table.Row(row.app, eval::SchemeName(row.scheme),
                eval::FormatSummary(row.agg.delay_seconds, 1));
      if (row.scheme == eval::Scheme::kSds) {
        sds_sum += row.agg.delay_seconds.median;
        ++sds_n;
      } else if (row.scheme == eval::Scheme::kKsTest) {
        ks_sum += row.agg.delay_seconds.median;
        ++ks_n;
      }
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  const double sds_mean = sds_sum / sds_n;
  const double ks_mean = ks_sum / ks_n;
  std::cout << "mean median delay: SDS " << FormatFixed(sds_mean, 1)
            << "s  vs  KStest " << FormatFixed(ks_mean, 1) << "s ("
            << FormatFixed(100.0 * (ks_mean - sds_mean) / ks_mean, 0)
            << "% shorter)\nShape check (paper): SDS 15-30 s, KStest "
               "20-50 s — SDS 5-40% shorter; SDS/P ~10 s slower than "
               "SDS/B on the periodic applications.\n";
  return 0;
}
