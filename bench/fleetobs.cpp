// Fleet observability bench: ingest rate, rollup memory ceiling and alert
// precision/recall of the obs plane (DESIGN.md §13, EXPERIMENTS.md).
//
// Drives eval::RunFleetObsSweep — a synthetic fleet of hosts x tenants
// emitting detector health metrics with a known ground-truth attack window —
// through the sharded FleetRollup and the SLO engine, then prints the fleet
// health table and a machine-readable `BENCH_fleetobs {json}` line for trend
// tracking across commits. The sweep cross-checks the sharded barrier merge
// against a single-shard reference on every run, so a determinism regression
// fails CI here even before the unit tests run.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/reporter.h"
#include "eval/fleetobs.h"

int main(int argc, char** argv) {
  using namespace sds;

  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"hosts", "simulated hosts (default 16)"},
           {"tenants", "tenants per host (default 8)"},
           {"ticks", "stream length in ticks (default 6000)"},
           {"window", "rollup window in ticks (default 100)"},
           {"shards", "rollup shards (default 8)"},
           {"threads", "ingest worker threads (default 8)"},
           {"max_series", "live-series ceiling per shard (default 4096)"},
           {"seed", "stream seed (default 42)"},
           {"attacked", "attacked pair fraction (default 0.25)"},
           {"smoke", "tiny fleet: CI smoke test"},
           {"json_out", "also write the BENCH_fleetobs JSON to this file"},
           {"rollup_out", "write rollup + SLO JSONL here (fleet_inspect "
                          "input)"}})) {
    return flags.help_requested() ? 0 : 1;
  }

  eval::FleetObsConfig config;
  config.hosts = static_cast<std::uint32_t>(flags.GetInt("hosts", 16));
  config.tenants_per_host =
      static_cast<std::uint32_t>(flags.GetInt("tenants", 8));
  config.ticks = flags.GetInt("ticks", 6000);
  config.window_ticks = flags.GetInt("window", 100);
  config.shards = static_cast<std::uint32_t>(flags.GetInt("shards", 8));
  config.threads = static_cast<int>(flags.GetInt("threads", 8));
  config.max_series_per_shard =
      static_cast<std::size_t>(flags.GetInt("max_series", 4096));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.attacked_fraction = flags.GetDouble("attacked", 0.25);

  if (flags.GetBool("smoke", false)) {
    config.hosts = 4;
    config.tenants_per_host = 4;
    config.ticks = 1200;
    config.shards = 4;
    config.threads = 4;
  }

  bench::PrintBenchHeader(
      std::cout, "bench_fleetobs",
      "Fleet observability plane (no paper counterpart): sharded rollup "
      "ingest rate, fixed-memory ceiling, SLO alerting and alert "
      "precision/recall vs ground-truth attack windows");
  std::cout << "hosts=" << config.hosts
            << " tenants/host=" << config.tenants_per_host
            << " ticks=" << config.ticks << " shards=" << config.shards
            << " threads=" << config.threads << " seed=" << config.seed
            << "\n\n";

  std::ofstream rollup_out;
  std::ostream* rollup_stream = nullptr;
  const std::string rollup_path = flags.GetString("rollup_out", "");
  if (!rollup_path.empty()) {
    rollup_out.open(rollup_path);
    if (!rollup_out) {
      std::cerr << "cannot write " << rollup_path << "\n";
      return 1;
    }
    rollup_stream = &rollup_out;
  }

  const eval::FleetObsResult result =
      eval::RunFleetObsSweep(config, rollup_stream);

  std::cout << "ingest: " << result.samples << " samples in "
            << FormatFixed(result.ingest_wall_seconds, 3) << " s ("
            << FormatFixed(result.ingest_rate_per_sec / 1e6, 2)
            << " Msamples/s across " << config.shards << " shards)\n";
  std::cout << "rollup: " << result.rows << " rows, " << result.live_series
            << " live series, "
            << FormatFixed(
                   static_cast<double>(result.rollup_memory_bytes) / 1024.0, 1)
            << " KiB ceiling, drops late/series/samples = "
            << result.dropped_late << "/" << result.dropped_series << "/"
            << result.dropped_samples << "\n";
  std::cout << "slo:    " << result.slo_alerts << " alerts ("
            << result.slo_pages << " page, " << result.slo_warns
            << " warn) over " << result.attacked_pairs
            << " attacked pairs\n";
  std::cout << "determinism: sharded merge "
            << (result.verified_single_shard
                    ? (result.sharded_matches_single_shard
                           ? "bit-identical to single-shard reference"
                           : "MISMATCH vs single-shard reference")
                    : "not cross-checked")
            << "\n\n";

  TextTable table;
  table.SetHeader({"threshold", "tp", "fp", "fn", "precision", "recall"});
  for (const eval::ThresholdPoint& p : result.curve) {
    table.Row(FormatFixed(p.threshold, 0), TextTable::Str(p.true_positives),
              TextTable::Str(p.false_positives),
              TextTable::Str(p.false_negatives), FormatFixed(p.precision, 3),
              FormatFixed(p.recall, 3));
  }
  table.Print(std::cout);

  std::cout << "\nShape check: precision and recall should both be high near "
               "the 600-tick SLO\nthreshold and trade off away from it; a "
               "sharded-merge mismatch is a determinism\nregression.\n\n";

  if (!bench::EmitBenchJson(std::cout, "fleetobs",
                            flags.GetString("json_out", ""),
                            [&](std::ostream& os) {
                              eval::WriteFleetObsJson(config, result, os);
                            })) {
    return 1;
  }
  if (!rollup_path.empty()) {
    std::cout << "rollup JSONL written to " << rollup_path << "\n";
  }
  return result.verified_single_shard && !result.sharded_matches_single_shard
             ? 1
             : 0;
}
