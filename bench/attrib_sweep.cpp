// Attribution accuracy sweep over the attack x workload grid.
//
// Every cell runs with the hardware attribution ledger enabled and scores
// the forensics engine against the simulator's ground truth: which VM
// actually ran the attack program. The grid covers both attack programs on
// each application, a quiet (no-attack) cell per application where the
// engine must decline to attribute, one colluding two-attacker cell, and
// one cell driven by the real KStest baseline so the ledger's verdict is
// scored against the throttling-derived culprit. Emits the
// `BENCH_attrib {json}` line.
//
// The whole sweep runs TWICE and the exit code enforces two properties:
//   - determinism: both runs must produce the same fingerprint (FNV over
//     every scored field) — divergence means attribution scoring picked up
//     hidden state and the bench fails;
//   - accuracy: the true attacker must be the rank-1 suspect on >= 90% of
//     single-attacker cells.
//
// No counterpart figure in the paper: section V identifies the culprit by
// throttling candidates one at a time; this extends the evaluation to
// zero-perturbation attribution from hardware evidence alone.
#include <fstream>
#include <iostream>
#include <string>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/reporter.h"
#include "eval/attribution_sweep.h"

int main(int argc, char** argv) {
  using namespace sds;

  Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"smoke", "short CI grid: two apps, no KStest cell"},
           {"seed", "base seed for the grid (default 9100)"},
           {"json_out", "also write the BENCH_attrib JSON to this file"},
           {"forensics_out",
            "write every cell's forensic report as JSONL here (the stream "
            "trace_inspect/fleet_inspect --forensics summarize)"}})) {
    return flags.help_requested() ? 0 : 1;
  }

  eval::AttributionSweepConfig config;
  config.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 9100));
  if (flags.GetBool("smoke", false)) {
    // CI-sized: still covers both attack programs, a quiet cell and the
    // colluding cell; drops the (slow) KStest identification cell.
    config.apps = {"kmeans", "bayes"};
    config.attack_ticks = 400;
    config.kstest_cell = false;
  }

  bench::PrintBenchHeader(
      std::cout, "bench_attrib_sweep",
      "Attribution extension (no paper counterpart): forensic suspect "
      "ranking from the hardware interference ledger vs ground truth");

  std::cout << "run 1:\n";
  const eval::AttributionSweepResult result =
      eval::RunAttributionSweep(config, &std::cout);
  std::cout << "run 2 (determinism self-check):\n";
  const eval::AttributionSweepResult repeat =
      eval::RunAttributionSweep(config, &std::cout);

  std::cout << "\nrank1_fraction=" << FormatFixed(result.rank1_fraction, 3)
            << " precision=" << FormatFixed(result.precision, 3)
            << " recall=" << FormatFixed(result.recall, 3)
            << " mean_rank_of_true="
            << FormatFixed(result.mean_rank_of_true, 2)
            << " (tp=" << result.true_positives
            << " fp=" << result.false_positives
            << " fn=" << result.false_negatives << ")\n";

  std::cout << "\nShape check: every single-attacker cell ranks the true "
               "attacker first; quiet\ncells stay unattributed; the "
               "colluding cell names one of the two attackers;\nthe KStest "
               "cell's ledger verdict agrees with the throttling sweep.\n\n";

  const std::string forensics_out = flags.GetString("forensics_out", "");
  if (!forensics_out.empty()) {
    std::ofstream os(forensics_out);
    if (!os) {
      std::cerr << "cannot write " << forensics_out << "\n";
      return 1;
    }
    for (const eval::AttributionCell& cell : result.cells) {
      detect::WriteForensicReportJson(os, cell.report);
      os << '\n';
    }
    std::cout << "forensic reports written to " << forensics_out << " ("
              << result.cells.size() << " incidents)\n";
  }

  if (!bench::EmitBenchJson(std::cout, "attrib",
                            flags.GetString("json_out", ""),
                            [&](std::ostream& os) {
                              eval::WriteAttributionJson(os, config, result);
                            })) {
    return 1;
  }

  if (repeat.fingerprint != result.fingerprint) {
    std::cerr << "FAIL: attribution scoring diverged between identical runs "
                 "(fingerprints " << result.fingerprint << " vs "
              << repeat.fingerprint << ")\n";
    return 1;
  }
  if (result.rank1_fraction < 0.9) {
    std::cerr << "FAIL: rank-1 attribution on "
              << FormatFixed(result.rank1_fraction * 100.0, 1)
              << "% of single-attacker cells (need >= 90%)\n";
    return 1;
  }
  return 0;
}
