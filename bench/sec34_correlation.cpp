// Section 3.4: the exploration the paper ran BEFORE designing SDS —
// spectral coherence, cross-correlation and Pearson correlation between
// cache-statistic segments, with and without an attack. The negative result
// to reproduce: none of these measures shows a usable decreasing trend once
// the attack starts, which is why SDS/B and SDS/P use boundaries and periods
// instead.
#include <iostream>

#include "common/bench_common.h"
#include "common/csv.h"
#include "common/flags.h"
#include "detect/profile.h"
#include "signal/coherence.h"
#include "stats/correlation.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv, {"seed"})) return 1;
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 71));

  bench::PrintBenchHeader(
      std::cout, "bench_sec34_correlation",
      "Section 3.4: correlation-based approaches do not separate attack "
      "from no-attack");

  TextTable table;
  table.SetHeader({"application", "attack", "measure", "clean stage",
                   "attack stage"});

  CoherenceOptions copts;
  copts.segment_length = 256;
  copts.overlap = 128;

  for (const char* app : {"bayes", "kmeans", "terasort", "facenet"}) {
    for (eval::AttackKind attack :
         {eval::AttackKind::kBusLock, eval::AttackKind::kLlcCleansing}) {
      const Tick stage = 8000;
      const auto samples =
          eval::RunMeasurementStudy(app, attack, 2 * stage, stage, seed);
      const pcm::Channel channel = attack == eval::AttackKind::kBusLock
                                       ? pcm::Channel::kAccessNum
                                       : pcm::Channel::kMissNum;
      const auto series = detect::ChannelSeries(samples, channel);

      // Split each stage into two equal segments and correlate them — the
      // "statistics at different times should correlate when clean" idea.
      const auto seg = [&](std::size_t i) {
        const std::size_t quarter = series.size() / 4;
        return std::vector<double>(
            series.begin() + static_cast<long>(i * quarter),
            series.begin() + static_cast<long>((i + 1) * quarter));
      };
      const auto c0 = seg(0);
      const auto c1 = seg(1);
      const auto a0 = seg(2);
      const auto a1 = seg(3);

      table.Row(app, eval::AttackName(attack), "pearson",
                FormatFixed(PearsonCorrelation(c0, c1), 3),
                FormatFixed(PearsonCorrelation(a0, a1), 3));
      table.Row(app, eval::AttackName(attack), "max |xcorr| (lag<=100)",
                FormatFixed(MaxAbsCrossCorrelation(c0, c1, 100), 3),
                FormatFixed(MaxAbsCrossCorrelation(a0, a1, 100), 3));
      table.Row(app, eval::AttackName(attack), "mean coherence",
                FormatFixed(MeanCoherence(c0, c1, copts), 3),
                FormatFixed(MeanCoherence(a0, a1, copts), 3));
    }
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.Print(std::cout);
  std::cout
      << "\nShape check (paper): no measure shows a consistent decrease "
         "from the clean stage\nto the attack stage across applications — "
         "correlation cannot drive detection.\n";
  return 0;
}
