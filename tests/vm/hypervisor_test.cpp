#include "vm/hypervisor.h"

#include <memory>

#include <gtest/gtest.h>

#include "vm/vm.h"

namespace sds::vm {
namespace {

// Deterministic test workload: issues `rate` sequential accesses per tick
// over a private region, counting what actually executed.
class FixedRateWorkload final : public Workload {
 public:
  explicit FixedRateWorkload(std::uint32_t rate, std::uint64_t region = 1024,
                             bool atomic = false)
      : rate_(rate), region_(region), atomic_(atomic) {}

  void Bind(LineAddr base, Rng /*rng*/) override { base_ = base; }
  void BeginTick(Tick /*now*/) override {
    left_ = rate_;
    ++ticks_seen_;
  }
  bool NextOp(sim::MemOp& op) override {
    if (left_ == 0) return false;
    --left_;
    op.atomic = atomic_;
    op.addr = base_ + (cursor_++ % region_);
    return true;
  }
  void OnOutcome(const sim::MemOp&, sim::AccessOutcome outcome) override {
    if (outcome != sim::AccessOutcome::kStalled) {
      ++completed_;
    } else {
      ++stalled_;
    }
  }
  std::uint64_t work_completed() const override { return completed_; }
  std::string_view name() const override { return "fixed-rate"; }

  std::uint64_t completed() const { return completed_; }
  std::uint64_t stalled() const { return stalled_; }
  std::uint64_t ticks_seen() const { return ticks_seen_; }

 private:
  std::uint32_t rate_;
  std::uint64_t region_;
  bool atomic_;
  LineAddr base_ = 0;
  std::uint32_t left_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t stalled_ = 0;
  std::uint64_t ticks_seen_ = 0;
};

struct Rig {
  sim::MachineConfig config;
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<Hypervisor> hypervisor;

  explicit Rig(std::uint32_t bus_slots = 10000,
               double monitor_load = 0.0) {
    config.cache.sets = 64;
    config.cache.ways = 4;
    config.bus.slots_per_tick = bus_slots;
    machine = std::make_unique<sim::Machine>(config);
    HypervisorConfig hc;
    hc.monitor_load_fraction = monitor_load > 0.0 ? monitor_load : 0.012;
    hypervisor = std::make_unique<Hypervisor>(*machine, hc, Rng(5));
  }
};

TEST(HypervisorTest, AssignsSequentialOwnerIds) {
  Rig rig;
  const OwnerId a = rig.hypervisor->CreateVm(
      "a", std::make_unique<FixedRateWorkload>(10));
  const OwnerId b = rig.hypervisor->CreateVm(
      "b", std::make_unique<FixedRateWorkload>(10));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(rig.hypervisor->vm_count(), 2u);
  EXPECT_EQ(rig.hypervisor->vm(a).name(), "a");
}

TEST(HypervisorTest, VmsGetDisjointAddressBases) {
  Rig rig;
  const OwnerId a = rig.hypervisor->CreateVm(
      "a", std::make_unique<FixedRateWorkload>(1));
  const OwnerId b = rig.hypervisor->CreateVm(
      "b", std::make_unique<FixedRateWorkload>(1));
  EXPECT_NE(rig.hypervisor->vm(a).address_base(),
            rig.hypervisor->vm(b).address_base());
}

TEST(HypervisorTest, AllPlannedOpsExecuteWithAmpleBus) {
  Rig rig(100000);
  rig.hypervisor->CreateVm("a", std::make_unique<FixedRateWorkload>(50));
  rig.hypervisor->CreateVm("b", std::make_unique<FixedRateWorkload>(70));
  for (int t = 0; t < 10; ++t) rig.hypervisor->RunTick();
  EXPECT_EQ(rig.machine->counters(1).llc_accesses, 500u);
  EXPECT_EQ(rig.machine->counters(2).llc_accesses, 700u);
}

TEST(HypervisorTest, BusExhaustionLimitsThroughput) {
  Rig rig(/*bus_slots=*/100);
  rig.hypervisor->CreateVm("hog",
                           std::make_unique<FixedRateWorkload>(500, 100000));
  rig.hypervisor->RunTick();
  // Streaming misses cost 4 slots: at most ~25 can complete.
  EXPECT_LE(rig.machine->counters(1).llc_accesses, 30u);
  EXPECT_GT(rig.machine->counters(1).llc_accesses, 10u);
}

TEST(HypervisorTest, RoundRobinSharesSaturatedBusFairly) {
  Rig rig(/*bus_slots=*/400);
  rig.hypervisor->CreateVm("a",
                           std::make_unique<FixedRateWorkload>(1000, 100000));
  rig.hypervisor->CreateVm("b",
                           std::make_unique<FixedRateWorkload>(1000, 100000));
  for (int t = 0; t < 20; ++t) rig.hypervisor->RunTick();
  const auto a = rig.machine->counters(1).llc_accesses;
  const auto b = rig.machine->counters(2).llc_accesses;
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, 0u);
  const double ratio = static_cast<double>(a) / static_cast<double>(b);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(HypervisorTest, AtomicHogStarvesNormalTenant) {
  // Bus-lock asymmetry at the scheduling level: an atomic spinner plus a
  // normal tenant on a tight bus leaves the normal tenant starved.
  Rig rig(/*bus_slots=*/400);
  rig.hypervisor->CreateVm(
      "victim", std::make_unique<FixedRateWorkload>(200, 64));
  rig.hypervisor->CreateVm(
      "attacker",
      std::make_unique<FixedRateWorkload>(200, 16, /*atomic=*/true));
  for (int t = 0; t < 20; ++t) rig.hypervisor->RunTick();
  const auto victim = rig.machine->counters(1).llc_accesses;
  EXPECT_LT(victim, 200u * 20u / 2u);
}

TEST(HypervisorTest, ThrottleAllExceptPausesOthers) {
  Rig rig;
  const OwnerId prot = rig.hypervisor->CreateVm(
      "prot", std::make_unique<FixedRateWorkload>(10));
  const OwnerId other = rig.hypervisor->CreateVm(
      "other", std::make_unique<FixedRateWorkload>(10));
  rig.hypervisor->ThrottleAllExcept(prot, 5);
  for (int t = 0; t < 5; ++t) rig.hypervisor->RunTick();
  EXPECT_EQ(rig.machine->counters(prot).llc_accesses, 50u);
  EXPECT_EQ(rig.machine->counters(other).llc_accesses, 0u);
  // Throttle expired: the other VM resumes.
  rig.hypervisor->RunTick();
  EXPECT_EQ(rig.machine->counters(other).llc_accesses, 10u);
  EXPECT_FALSE(rig.hypervisor->throttling_active());
}

TEST(HypervisorTest, ThrottleVmPausesExactlyOne) {
  Rig rig;
  rig.hypervisor->CreateVm("a", std::make_unique<FixedRateWorkload>(10));
  rig.hypervisor->CreateVm("b", std::make_unique<FixedRateWorkload>(10));
  rig.hypervisor->CreateVm("c", std::make_unique<FixedRateWorkload>(10));
  rig.hypervisor->ThrottleVm(2, 3);
  EXPECT_TRUE(rig.hypervisor->vm_throttled(2));
  for (int t = 0; t < 3; ++t) rig.hypervisor->RunTick();
  EXPECT_EQ(rig.machine->counters(1).llc_accesses, 30u);
  EXPECT_EQ(rig.machine->counters(2).llc_accesses, 0u);
  EXPECT_EQ(rig.machine->counters(3).llc_accesses, 30u);
  rig.hypervisor->RunTick();
  EXPECT_EQ(rig.machine->counters(2).llc_accesses, 10u);
  EXPECT_FALSE(rig.hypervisor->vm_throttled(2));
}

TEST(HypervisorTest, StoppedVmDoesNotRun) {
  Rig rig;
  const OwnerId id = rig.hypervisor->CreateVm(
      "a", std::make_unique<FixedRateWorkload>(10));
  rig.hypervisor->vm(id).set_state(VmState::kStopped);
  rig.hypervisor->RunTick();
  EXPECT_EQ(rig.machine->counters(id).llc_accesses, 0u);
}

TEST(HypervisorTest, MonitorLoadDefersOps) {
  Rig rig(/*bus_slots=*/100000, /*monitor_load=*/0.10);
  const OwnerId id = rig.hypervisor->CreateVm(
      "a", std::make_unique<FixedRateWorkload>(100));
  rig.hypervisor->AttachMonitor();
  for (int t = 0; t < 100; ++t) rig.hypervisor->RunTick();
  const auto executed = rig.machine->counters(id).llc_accesses;
  EXPECT_LT(executed, 10000u * 93 / 100);
  EXPECT_GT(executed, 10000u * 85 / 100);
  EXPECT_GT(rig.hypervisor->monitor_dropped_ops(), 700u);
}

TEST(HypervisorTest, MonitorDetachStopsLoad) {
  Rig rig(/*bus_slots=*/100000, /*monitor_load=*/0.10);
  const OwnerId id = rig.hypervisor->CreateVm(
      "a", std::make_unique<FixedRateWorkload>(100));
  rig.hypervisor->AttachMonitor();
  rig.hypervisor->DetachMonitor();
  for (int t = 0; t < 50; ++t) rig.hypervisor->RunTick();
  EXPECT_EQ(rig.machine->counters(id).llc_accesses, 5000u);
  EXPECT_EQ(rig.hypervisor->monitor_dropped_ops(), 0u);
}

TEST(HypervisorTest, WorkloadSeesEveryRunnableTick) {
  Rig rig;
  auto workload = std::make_unique<FixedRateWorkload>(1);
  FixedRateWorkload* raw = workload.get();
  rig.hypervisor->CreateVm("a", std::move(workload));
  for (int t = 0; t < 7; ++t) rig.hypervisor->RunTick();
  EXPECT_EQ(raw->ticks_seen(), 7u);
}

}  // namespace
}  // namespace sds::vm
