#include "stats/chebyshev.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/descriptive.h"

namespace sds {
namespace {

TEST(ChebyshevTest, TailBoundValues) {
  EXPECT_DOUBLE_EQ(ChebyshevTailBound(2.0), 0.25);
  EXPECT_DOUBLE_EQ(ChebyshevTailBound(1.0), 1.0);
  // Bound is capped at 1 for k < 1.
  EXPECT_DOUBLE_EQ(ChebyshevTailBound(0.5), 1.0);
}

TEST(ChebyshevTest, ConsecutiveBound) {
  EXPECT_NEAR(ConsecutiveViolationBound(2.0, 6), std::pow(0.25, 6), 1e-15);
  EXPECT_DOUBLE_EQ(ConsecutiveViolationBound(1.0, 10), 1.0);
}

TEST(ChebyshevTest, PaperExampleK2H6) {
  // Paper Section 4.2.1: k=2, H_C=6 gives 99.9% confidence.
  EXPECT_LE(ConsecutiveViolationBound(2.0, 6), 0.001);
  EXPECT_EQ(RequiredConsecutiveViolations(2.0, 0.999), 5);
  // 5 also suffices mathematically ((1/4)^5 = 0.00098), so the paper's 6 is
  // conservative; our solver returns the tight value.
}

TEST(ChebyshevTest, PaperExampleK1125H30) {
  // Paper Table 1: k=1.125, H_C=30 gives 99.9% confidence.
  EXPECT_LE(ConsecutiveViolationBound(1.125, 30), 0.001);
  const int h = RequiredConsecutiveViolations(1.125, 0.999);
  EXPECT_LE(h, 30);
  EXPECT_GE(h, 25);
  // The returned H_C must itself satisfy the bound.
  EXPECT_LE(ConsecutiveViolationBound(1.125, h), 0.001);
}

TEST(ChebyshevTest, RequiredViolationsDecreasesWithK) {
  int prev = RequiredConsecutiveViolations(1.05, 0.999);
  for (double k : {1.1, 1.2, 1.5, 2.0, 3.0}) {
    const int cur = RequiredConsecutiveViolations(k, 0.999);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(ChebyshevTest, RequiredBoundaryFactorInvertsViolations) {
  for (int h : {1, 5, 10, 30, 50}) {
    const double k = RequiredBoundaryFactor(h, 0.999);
    EXPECT_LE(ConsecutiveViolationBound(k, h), 0.001 + 1e-12);
    // Slightly smaller k must not satisfy the bound (tightness).
    EXPECT_GT(ConsecutiveViolationBound(k * 0.99, h), 0.001);
  }
}

// Property: the Chebyshev tail bound actually holds for wildly different
// distributions (this is the inequality SDS/B's accuracy guarantee rests on).
class ChebyshevHoldsTest : public ::testing::TestWithParam<int> {};

TEST_P(ChebyshevHoldsTest, EmpiricalTailBelowBound) {
  const int dist = GetParam();
  Rng rng(static_cast<std::uint64_t>(dist) * 11 + 1);
  std::vector<double> xs;
  const int n = 200000;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    double v = 0.0;
    switch (dist) {
      case 0:  // normal
        v = rng.Normal(5.0, 2.0);
        break;
      case 1:  // uniform
        v = rng.UniformDouble(-3.0, 9.0);
        break;
      case 2:  // exponential (skewed)
        v = rng.Exponential(0.5);
        break;
      case 3:  // bimodal
        v = rng.Bernoulli(0.3) ? rng.Normal(-4.0, 1.0) : rng.Normal(6.0, 1.5);
        break;
      case 4:  // heavy-ish tail: exp squared
        v = rng.Exponential(1.0);
        v = v * v;
        break;
      default:
        break;
    }
    xs.push_back(v);
  }
  const double mu = Mean(xs);
  const double sigma = StdDev(xs);
  for (double k : {1.2, 1.5, 2.0, 3.0}) {
    int outside = 0;
    for (double v : xs) {
      if (std::abs(v - mu) >= k * sigma) ++outside;
    }
    const double frequency = static_cast<double>(outside) / n;
    EXPECT_LE(frequency, ChebyshevTailBound(k) * 1.02)
        << "dist=" << dist << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, ChebyshevHoldsTest,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace sds
