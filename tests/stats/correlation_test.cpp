#include "stats/correlation.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

TEST(PearsonTest, PerfectPositive) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  std::vector<double> x = {1.0, 1.0, 1.0};
  std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, IndependentSeriesNearZero) {
  Rng rng(8);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.05);
}

TEST(PearsonTest, InvariantToAffineTransform) {
  Rng rng(9);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Normal();
    x.push_back(v);
    y.push_back(3.0 * v + rng.Normal(0.0, 0.5));
  }
  const double r1 = PearsonCorrelation(x, y);
  std::vector<double> x2;
  for (double v : x) x2.push_back(10.0 * v - 7.0);
  EXPECT_NEAR(PearsonCorrelation(x2, y), r1, 1e-12);
}

TEST(CrossCorrelationTest, ZeroLagMatchesPearsonShape) {
  std::vector<double> x = {1.0, 3.0, 2.0, 5.0, 4.0};
  const auto cc = CrossCorrelation(x, x, 0);
  ASSERT_EQ(cc.size(), 1u);
  EXPECT_NEAR(cc[0], 1.0, 1e-12);
}

TEST(CrossCorrelationTest, DetectsShift) {
  // y is x delayed by 3 samples; peak correlation should be at lag +3.
  Rng rng(10);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.Normal();
  std::vector<double> y(200, 0.0);
  for (std::size_t i = 3; i < y.size(); ++i) y[i] = x[i - 3];
  const int max_lag = 6;
  // Element [max_lag + lag] is corr(x[t], y[t + lag]); y lags x by 3, so the
  // peak sits at lag +3.
  const auto cc = CrossCorrelation(x, y, max_lag);
  std::size_t best = 0;
  for (std::size_t i = 1; i < cc.size(); ++i) {
    if (cc[i] > cc[best]) best = i;
  }
  EXPECT_EQ(static_cast<int>(best) - max_lag, 3);
}

TEST(CrossCorrelationTest, SymmetricSize) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto cc = CrossCorrelation(x, x, 2);
  EXPECT_EQ(cc.size(), 5u);
}

TEST(CrossCorrelationTest, ValuesBounded) {
  Rng rng(11);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (auto& v : x) v = rng.Normal();
  for (auto& v : y) v = rng.Normal();
  for (double v : CrossCorrelation(x, y, 20)) {
    EXPECT_LE(std::abs(v), 1.0 + 1e-9);
  }
}

TEST(MaxAbsCrossCorrelationTest, IdenticalSeriesIsOne) {
  std::vector<double> x = {1.0, -2.0, 3.0, 0.0, 5.0, -1.0};
  EXPECT_NEAR(MaxAbsCrossCorrelation(x, x, 2), 1.0, 1e-12);
}

TEST(MaxAbsCrossCorrelationTest, ZeroVarianceGivesZero) {
  std::vector<double> x(10, 2.0);
  std::vector<double> y = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(MaxAbsCrossCorrelation(x, y, 3), 0.0);
}

}  // namespace
}  // namespace sds
