#include "stats/descriptive.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 1);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(10.0, 3.0);
    all.Add(v);
    (i < 400 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) rs.Add(1e9 + (i % 2));
  EXPECT_NEAR(rs.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(rs.variance(), 0.25025, 1e-3);
}

TEST(PercentileTest, MedianOfOddCount) {
  std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5.0, 9.0, 1.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, SingleElement) {
  std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.3), 7.0);
}

TEST(PercentileTest, TenthAndNinetieth) {
  std::vector<double> v(11);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.9), 9.0);
}

TEST(SummarizeTest, OrderedTriple) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const PercentileSummary s = Summarize(v);
  EXPECT_LT(s.p10, s.median);
  EXPECT_LT(s.median, s.p90);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
}

TEST(MeanStdDevTest, Basics) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MeanStdDevTest, ConstantSeriesZeroDeviation) {
  std::vector<double> v(10, 4.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 0.0);
}

// Property: percentile is monotone in q.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInQ) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 57; ++i) v.push_back(rng.Normal(0.0, 10.0));
  double prev = Percentile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = Percentile(v, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sds
