#include "stats/ks_test.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

std::vector<double> NormalSample(Rng& rng, int n, double mean, double sd) {
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(rng.Normal(mean, sd));
  return v;
}

TEST(KolmogorovSurvivalTest, KnownValues) {
  // Q(lambda) reference values from published Kolmogorov tables.
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 0.002);
  EXPECT_NEAR(KolmogorovSurvival(1.22), 0.102, 0.003);
  EXPECT_NEAR(KolmogorovSurvival(1.63), 0.010, 0.002);
}

TEST(KolmogorovSurvivalTest, Monotone) {
  double prev = KolmogorovSurvival(0.2);
  for (double l = 0.3; l < 3.0; l += 0.1) {
    const double cur = KolmogorovSurvival(l);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(KolmogorovSurvivalTest, Limits) {
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_NEAR(KolmogorovSurvival(5.0), 0.0, 1e-10);
}

TEST(TwoSampleKsTest, IdenticalSamplesStatisticZero) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto r = TwoSampleKsTest(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(TwoSampleKsTest, DisjointSamplesStatisticOne) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {10.0, 11.0, 12.0};
  const auto r = TwoSampleKsTest(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 0.2);
}

TEST(TwoSampleKsTest, KnownStatistic) {
  // Hand-computed: a={1,2,3,4}, b={3,4,5,6}: max CDF gap is 0.5 at x in [2,3).
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {3.0, 4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(TwoSampleKsTest(a, b).statistic, 0.5);
}

TEST(TwoSampleKsTest, SameDistributionRarelyRejected) {
  Rng rng(42);
  int rejections = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto a = NormalSample(rng, 100, 0.0, 1.0);
    const auto b = NormalSample(rng, 100, 0.0, 1.0);
    if (KsRejectsSameDistribution(a, b, 0.05)) ++rejections;
  }
  // Expected false-rejection rate is ~5%; allow generous slack.
  EXPECT_LT(rejections, trials / 8);
}

TEST(TwoSampleKsTest, ShiftedDistributionDetected) {
  Rng rng(43);
  int rejections = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const auto a = NormalSample(rng, 100, 0.0, 1.0);
    const auto b = NormalSample(rng, 100, 1.0, 1.0);
    if (KsRejectsSameDistribution(a, b, 0.05)) ++rejections;
  }
  EXPECT_GT(rejections, trials * 9 / 10);
}

TEST(TwoSampleKsTest, ScaleChangeDetected) {
  Rng rng(44);
  const auto a = NormalSample(rng, 500, 0.0, 1.0);
  const auto b = NormalSample(rng, 500, 0.0, 3.0);
  EXPECT_TRUE(KsRejectsSameDistribution(a, b, 0.05));
}

TEST(TwoSampleKsTest, UnequalSampleSizes) {
  Rng rng(45);
  const auto a = NormalSample(rng, 50, 0.0, 1.0);
  const auto b = NormalSample(rng, 400, 2.0, 1.0);
  const auto r = TwoSampleKsTest(a, b);
  EXPECT_GT(r.statistic, 0.5);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(TwoSampleKsTest, TiedValuesHandled) {
  std::vector<double> a = {1.0, 1.0, 1.0, 2.0};
  std::vector<double> b = {1.0, 2.0, 2.0, 2.0};
  const auto r = TwoSampleKsTest(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 0.5);
}

// Property: power increases with shift magnitude.
class KsPowerTest : public ::testing::TestWithParam<double> {};

TEST_P(KsPowerTest, LargeShiftAlwaysRejected) {
  const double shift = GetParam();
  Rng rng(static_cast<std::uint64_t>(shift * 100) + 7);
  for (int t = 0; t < 20; ++t) {
    const auto a = NormalSample(rng, 100, 0.0, 1.0);
    const auto b = NormalSample(rng, 100, shift, 1.0);
    EXPECT_TRUE(KsRejectsSameDistribution(a, b, 0.05))
        << "shift=" << shift << " trial=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, KsPowerTest,
                         ::testing::Values(1.5, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace sds
