#include "signal/coherence.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

TEST(CoherenceTest, IdenticalSignalsFullyCoherent) {
  Rng rng(61);
  std::vector<double> x(512);
  for (auto& v : x) v = rng.Normal();
  CoherenceOptions opts;
  const auto c = SpectralCoherence(x, x, opts);
  for (std::size_t k = 1; k < c.size(); ++k) {
    EXPECT_NEAR(c[k], 1.0, 1e-9) << "bin=" << k;
  }
}

TEST(CoherenceTest, IndependentNoiseLowCoherence) {
  Rng rng(62);
  std::vector<double> x(4096);
  std::vector<double> y(4096);
  for (auto& v : x) v = rng.Normal();
  for (auto& v : y) v = rng.Normal();
  CoherenceOptions opts;
  opts.segment_length = 64;
  opts.overlap = 32;
  EXPECT_LT(MeanCoherence(x, y, opts), 0.35);
}

TEST(CoherenceTest, ScaledSignalStillCoherent) {
  Rng rng(63);
  std::vector<double> x(1024);
  std::vector<double> y(1024);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = -3.5 * x[i];
  }
  CoherenceOptions opts;
  EXPECT_GT(MeanCoherence(x, y, opts), 0.99);
}

TEST(CoherenceTest, SignalPlusNoiseIntermediate) {
  Rng rng(64);
  std::vector<double> x(4096);
  std::vector<double> y(4096);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0) +
           0.2 * rng.Normal();
    y[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0) +
           2.0 * rng.Normal();
  }
  CoherenceOptions opts;
  const auto c = SpectralCoherence(x, y, opts);
  // At the tone's bin (64/16 = 4) coherence is high; broadband it is low.
  EXPECT_GT(c[4], 0.5);
  const double mean = MeanCoherence(x, y, opts);
  EXPECT_LT(mean, 0.6);
}

TEST(CoherenceTest, OutputSizeIsSegmentHalfPlusOne) {
  std::vector<double> x(256, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i % 7);
  }
  CoherenceOptions opts;
  opts.segment_length = 32;
  opts.overlap = 16;
  EXPECT_EQ(SpectralCoherence(x, x, opts).size(), 17u);
}

TEST(CoherenceTest, ValuesInUnitInterval) {
  Rng rng(65);
  std::vector<double> x(1024);
  std::vector<double> y(1024);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Exponential(1.0);
    y[i] = 0.5 * x[i] + rng.Normal();
  }
  CoherenceOptions opts;
  for (double v : SpectralCoherence(x, y, opts)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace sds
