#include "signal/acf.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

std::vector<double> Sine(std::size_t n, double period) {
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / period);
  }
  return x;
}

TEST(AcfTest, LagZeroIsOne) {
  Rng rng(31);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.Normal();
  const auto acf = Autocorrelation(x, 10);
  EXPECT_NEAR(acf[0], 1.0, 1e-12);
}

TEST(AcfTest, ConstantSeriesAllZero) {
  std::vector<double> x(50, 3.0);
  const auto acf = Autocorrelation(x, 10);
  for (double v : acf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AcfTest, PeriodicSeriesPeaksAtPeriod) {
  const auto x = Sine(200, 20.0);
  const auto acf = Autocorrelation(x, 60);
  // ACF of a sinusoid peaks near its period (and multiples).
  std::size_t best = 5;
  for (std::size_t lag = 5; lag <= 35; ++lag) {
    if (acf[lag] > acf[best]) best = lag;
  }
  EXPECT_NEAR(static_cast<double>(best), 20.0, 1.0);
  EXPECT_GT(acf[20], 0.9);
}

TEST(AcfTest, WhiteNoiseDecorrelates) {
  Rng rng(32);
  std::vector<double> x(5000);
  for (auto& v : x) v = rng.Normal();
  const auto acf = Autocorrelation(x, 20);
  for (std::size_t lag = 1; lag <= 20; ++lag) {
    EXPECT_LT(std::abs(acf[lag]), 0.06) << "lag=" << lag;
  }
}

TEST(AcfTest, ValuesBoundedByOne) {
  Rng rng(33);
  std::vector<double> x(300);
  for (auto& v : x) v = rng.Exponential(1.0);
  for (double v : Autocorrelation(x, 100)) {
    EXPECT_LE(std::abs(v), 1.0 + 1e-9);
  }
}

// Cross-validation: the FFT path must equal the direct path exactly.
class AcfFftEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AcfFftEquivalenceTest, MatchesDirect) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(300 + n);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.Normal(5.0, 2.0);
  const std::size_t max_lag = n / 2;
  const auto direct = Autocorrelation(x, max_lag);
  const auto fft = AutocorrelationFft(x, max_lag);
  ASSERT_EQ(direct.size(), fft.size());
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    EXPECT_NEAR(direct[lag], fft[lag], 1e-9) << "n=" << n << " lag=" << lag;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AcfFftEquivalenceTest,
                         ::testing::Values(8, 13, 32, 51, 100, 256));

TEST(AcfHillTest, DetectsPeakOnSinusoid) {
  const auto x = Sine(200, 25.0);
  const auto acf = Autocorrelation(x, 80);
  EXPECT_TRUE(IsOnAcfHill(acf, 25, 6));
  // The trough at half-period is NOT a hill.
  EXPECT_FALSE(IsOnAcfHill(acf, 12, 4));
}

TEST(AcfHillTest, LagZeroNeverOnHill) {
  const auto x = Sine(100, 10.0);
  const auto acf = Autocorrelation(x, 40);
  EXPECT_FALSE(IsOnAcfHill(acf, 0, 3));
}

TEST(AcfHillTest, OutOfRangeLagRejected) {
  const auto x = Sine(100, 10.0);
  const auto acf = Autocorrelation(x, 40);
  EXPECT_FALSE(IsOnAcfHill(acf, 1000, 3));
}

TEST(AcfHillTest, MonotoneDecayHasNoInteriorHill) {
  // AR(1)-like exponential ACF decays monotonically: no interior local max.
  std::vector<double> acf(50);
  for (std::size_t lag = 0; lag < acf.size(); ++lag) {
    acf[lag] = std::pow(0.9, static_cast<double>(lag));
  }
  for (std::size_t lag = 5; lag < 45; ++lag) {
    EXPECT_FALSE(IsOnAcfHill(acf, lag, 4)) << "lag=" << lag;
  }
}

}  // namespace
}  // namespace sds
