#include "signal/period_detect.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

std::vector<double> PeriodicSeries(std::size_t n, double period,
                                   double noise_sd, std::uint64_t seed,
                                   bool square_wave = false) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase =
        std::fmod(static_cast<double>(t), period) / period;
    const double base =
        square_wave ? (phase < 0.4 ? 1.0 : -0.6)
                    : std::sin(2.0 * std::numbers::pi * phase);
    x[t] = 10.0 + 3.0 * base + noise_sd * rng.Normal();
  }
  return x;
}

TEST(PeriodDetectTest, CleanSinusoid) {
  const auto x = PeriodicSeries(120, 17.0, 0.0, 1);
  const auto est = DetectPeriod(x);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->period, 17.0, 1.5);
  EXPECT_GT(est->strength, 0.6);
}

TEST(PeriodDetectTest, NoisySinusoid) {
  const auto x = PeriodicSeries(200, 25.0, 0.8, 2);
  const auto est = DetectPeriod(x);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->period, 25.0, 2.5);
}

TEST(PeriodDetectTest, SquareWaveLikeBatchPattern) {
  // Batch applications look like asymmetric square waves, not sinusoids.
  const auto x = PeriodicSeries(170, 17.0, 0.3, 3, /*square_wave=*/true);
  const auto est = DetectPeriod(x);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->period, 17.0, 2.0);
}

TEST(PeriodDetectTest, WhiteNoiseNotPeriodic) {
  Rng rng(4);
  std::vector<double> x(256);
  for (auto& v : x) v = rng.Normal();
  const auto est = DetectPeriod(x);
  if (est.has_value()) {
    // If anything slips through, its strength must be marginal.
    EXPECT_LT(est->strength, 0.45);
  }
}

TEST(PeriodDetectTest, LinearTrendNotPeriodic) {
  std::vector<double> x(128);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const auto est = DetectPeriod(x);
  // A pure trend has no ACF hill at any candidate: expect no detection.
  EXPECT_FALSE(est.has_value());
}

TEST(PeriodDetectTest, ConstantSeriesNotPeriodic) {
  std::vector<double> x(100, 5.0);
  EXPECT_FALSE(DetectPeriod(x).has_value());
}

TEST(PeriodDetectTest, TooShortSeriesRejected) {
  std::vector<double> x = {1.0, 2.0, 1.0, 2.0};
  EXPECT_FALSE(DetectPeriod(x).has_value());
}

TEST(PeriodDetectTest, PrefersFundamentalOverMultiple) {
  // ACF also peaks at 2p, 3p, ...; DFT-ACF must return ~p.
  const auto x = PeriodicSeries(300, 15.0, 0.2, 5);
  const auto est = DetectPeriod(x);
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->period, 23.0);
  EXPECT_NEAR(est->period, 15.0, 2.0);
}

TEST(PeriodDetectTest, TwoCyclesSuffice) {
  // SDS/P uses W_P = 2p: exactly two cycles must be enough.
  const auto x = PeriodicSeries(34, 17.0, 0.15, 6, /*square_wave=*/true);
  const auto est = DetectPeriod(x);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->period, 17.0, 3.0);
}

// Property sweep over (period, noise): the planted period is recovered
// within 20% — the exact tolerance SDS/P uses for its abnormality decision.
class PeriodRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PeriodRecoveryTest, RecoversPlantedPeriod) {
  const auto [period, noise] = GetParam();
  int recovered = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const auto n = static_cast<std::size_t>(period * 6);
    const auto x = PeriodicSeries(n, period, noise,
                                  static_cast<std::uint64_t>(trial) * 97 + 11,
                                  /*square_wave=*/trial % 2 == 0);
    const auto est = DetectPeriod(x);
    if (est && std::abs(est->period - period) / period <= 0.2) ++recovered;
  }
  EXPECT_GE(recovered, 8) << "period=" << period << " noise=" << noise;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PeriodRecoveryTest,
    ::testing::Combine(::testing::Values(8.0, 12.0, 17.0, 30.0, 50.0),
                       ::testing::Values(0.1, 0.5, 1.0)));

TEST(PeriodDetectTest, StretchedPeriodDetectedAsDifferent) {
  // The core SDS/P mechanism: in a window sized for period p, a stretched
  // period p' = 1.4p must NOT be reported as p.
  const double p = 17.0;
  const auto stretched = PeriodicSeries(static_cast<std::size_t>(2 * p), p * 1.4,
                                        0.2, 7, /*square_wave=*/true);
  const auto est = DetectPeriod(stretched);
  if (est.has_value()) {
    EXPECT_GT(std::abs(est->period - p) / p, 0.2);
  }
  // nullopt is also an acceptable outcome (pattern not confirmable).
}

}  // namespace
}  // namespace sds
