#include "signal/periodogram.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

std::vector<double> Sine(std::size_t n, double period, double amp = 1.0,
                         double offset = 0.0) {
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = offset + amp * std::sin(2.0 * std::numbers::pi *
                                   static_cast<double>(t) / period);
  }
  return x;
}

TEST(PeriodogramTest, SizeIsHalfPlusOne) {
  std::vector<double> x(64, 0.0);
  x[0] = 1.0;
  EXPECT_EQ(Periodogram(x, false).size(), 33u);
  std::vector<double> y(63, 0.0);
  y[0] = 1.0;
  EXPECT_EQ(Periodogram(y, false).size(), 32u);
}

TEST(PeriodogramTest, MeanRemovalKillsDc) {
  const auto x = Sine(128, 16.0, 1.0, /*offset=*/100.0);
  const auto p = Periodogram(x, false);
  EXPECT_NEAR(p[0], 0.0, 1e-9);
}

TEST(PeriodogramTest, PeakAtSineBin) {
  const std::size_t n = 128;
  const auto x = Sine(n, 16.0);  // bin 8
  const auto p = Periodogram(x, false);
  std::size_t best = 1;
  for (std::size_t k = 1; k < p.size(); ++k) {
    if (p[k] > p[best]) best = k;
  }
  EXPECT_EQ(best, 8u);
}

TEST(PeriodogramTest, HannWindowStillFindsPeak) {
  const std::size_t n = 100;  // period 12.5: non-integer bin, leakage-prone
  const auto x = Sine(n, 12.5);
  const auto p = Periodogram(x, true);
  std::size_t best = 1;
  for (std::size_t k = 1; k < p.size(); ++k) {
    if (p[k] > p[best]) best = k;
  }
  EXPECT_EQ(best, 8u);  // 100 / 12.5
}

TEST(FindSpectrumPeaksTest, SingleToneSingleCandidate) {
  const std::size_t n = 128;
  const auto x = Sine(n, 16.0);
  const auto p = Periodogram(x, true);
  const auto peaks = FindSpectrumPeaks(p, n, 3.0, 8);
  ASSERT_GE(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].bin, 8u);
  EXPECT_NEAR(peaks[0].period, 16.0, 1e-9);
}

TEST(FindSpectrumPeaksTest, TwoTonesRankedByPower) {
  const std::size_t n = 256;
  auto x = Sine(n, 32.0, 2.0);
  const auto weak = Sine(n, 8.0, 0.8);
  for (std::size_t i = 0; i < n; ++i) x[i] += weak[i];
  const auto p = Periodogram(x, true);
  const auto peaks = FindSpectrumPeaks(p, n, 2.0, 8);
  ASSERT_GE(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].bin, 8u);   // period 32
  EXPECT_EQ(peaks[1].bin, 32u);  // period 8
  EXPECT_GT(peaks[0].power, peaks[1].power);
}

TEST(FindSpectrumPeaksTest, WhiteNoiseYieldsFewCandidates) {
  Rng rng(41);
  std::vector<double> x(512);
  for (auto& v : x) v = rng.Normal();
  const auto p = Periodogram(x, true);
  const auto peaks = FindSpectrumPeaks(p, x.size(), 5.0, 8);
  // White noise has no structure: at threshold 5x mean power we expect few
  // (usually zero) spurious candidates.
  EXPECT_LE(peaks.size(), 2u);
}

TEST(FindSpectrumPeaksTest, MaxPeaksRespected) {
  Rng rng(42);
  std::vector<double> x(256);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    for (double period : {5.0, 9.0, 13.0, 21.0, 33.0}) {
      x[i] += std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                       period);
    }
  }
  const auto p = Periodogram(x, true);
  EXPECT_LE(FindSpectrumPeaks(p, x.size(), 1.0, 3).size(), 3u);
}

}  // namespace
}  // namespace sds
