#include "signal/moving_average.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

TEST(SlidingWindowAverageTest, EmitsAfterFirstWindow) {
  SlidingWindowAverage ma(4, 2);
  EXPECT_FALSE(ma.Push(1.0).has_value());
  EXPECT_FALSE(ma.Push(2.0).has_value());
  EXPECT_FALSE(ma.Push(3.0).has_value());
  const auto m0 = ma.Push(4.0);
  ASSERT_TRUE(m0.has_value());
  EXPECT_DOUBLE_EQ(*m0, 2.5);
}

TEST(SlidingWindowAverageTest, StepControlsEmissionRate) {
  SlidingWindowAverage ma(4, 2);
  for (double v : {1.0, 2.0, 3.0, 4.0}) ma.Push(v);
  EXPECT_FALSE(ma.Push(5.0).has_value());
  const auto m1 = ma.Push(6.0);
  ASSERT_TRUE(m1.has_value());
  EXPECT_DOUBLE_EQ(*m1, (3.0 + 4.0 + 5.0 + 6.0) / 4.0);
}

TEST(SlidingWindowAverageTest, StepEqualWindowIsTumbling) {
  SlidingWindowAverage ma(2, 2);
  ma.Push(1.0);
  auto m = ma.Push(3.0);
  ASSERT_TRUE(m);
  EXPECT_DOUBLE_EQ(*m, 2.0);
  EXPECT_FALSE(ma.Push(5.0).has_value());
  m = ma.Push(7.0);
  ASSERT_TRUE(m);
  EXPECT_DOUBLE_EQ(*m, 6.0);
}

TEST(SlidingWindowAverageTest, MatchesPaperEquationOne) {
  // M_n = mean of {A_{1+n*dW} ... A_{W+n*dW}} with W=6, dW=3.
  std::vector<double> raw;
  for (int i = 1; i <= 18; ++i) raw.push_back(static_cast<double>(i));
  const auto ma = MovingAverageSeries(raw, 6, 3);
  ASSERT_EQ(ma.size(), 5u);
  EXPECT_DOUBLE_EQ(ma[0], 3.5);   // mean of 1..6
  EXPECT_DOUBLE_EQ(ma[1], 6.5);   // mean of 4..9
  EXPECT_DOUBLE_EQ(ma[2], 9.5);   // mean of 7..12
  EXPECT_DOUBLE_EQ(ma[4], 15.5);  // mean of 13..18
}

TEST(SlidingWindowAverageTest, ResetStartsOver) {
  SlidingWindowAverage ma(2, 1);
  ma.Push(1.0);
  ma.Push(2.0);
  ma.Reset();
  EXPECT_EQ(ma.windows_emitted(), 0u);
  EXPECT_FALSE(ma.Push(10.0).has_value());
  const auto m = ma.Push(20.0);
  ASSERT_TRUE(m);
  EXPECT_DOUBLE_EQ(*m, 15.0);
}

TEST(SlidingWindowAverageTest, WindowsEmittedCounter) {
  SlidingWindowAverage ma(3, 1);
  std::size_t emitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (ma.Push(static_cast<double>(i))) ++emitted;
  }
  EXPECT_EQ(ma.windows_emitted(), emitted);
  EXPECT_EQ(emitted, 8u);
}

TEST(EwmaTest, FirstValuePassesThrough) {
  Ewma e(0.2);
  EXPECT_DOUBLE_EQ(e.Push(10.0), 10.0);
}

TEST(EwmaTest, MatchesPaperEquationTwo) {
  // S_n = (1-alpha) S_{n-1} + alpha M_n.
  Ewma e(0.25);
  e.Push(8.0);
  EXPECT_DOUBLE_EQ(e.Push(4.0), 0.75 * 8.0 + 0.25 * 4.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
  EXPECT_DOUBLE_EQ(e.Push(7.0), 0.75 * 7.0 + 0.25 * 7.0);
}

TEST(EwmaTest, AlphaOneIsIdentity) {
  // Paper Section 5.3: alpha = 1 makes EWMA equal the MA series.
  Ewma e(1.0);
  for (double v : {3.0, 9.0, 1.0, 4.0}) EXPECT_DOUBLE_EQ(e.Push(v), v);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.Push(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(EwmaTest, SmallerAlphaSmoothsMore) {
  // After a step change, small alpha lags further behind.
  Ewma slow(0.1);
  Ewma fast(0.5);
  slow.Push(0.0);
  fast.Push(0.0);
  for (int i = 0; i < 5; ++i) {
    slow.Push(10.0);
    fast.Push(10.0);
  }
  EXPECT_LT(slow.value(), fast.value());
}

TEST(EwmaTest, ResetClearsState) {
  Ewma e(0.3);
  e.Push(100.0);
  e.Reset();
  EXPECT_FALSE(e.has_value());
  EXPECT_DOUBLE_EQ(e.Push(1.0), 1.0);
}

TEST(EwmaSeriesTest, BatchMatchesStreaming) {
  Rng rng(55);
  std::vector<double> m(100);
  for (auto& v : m) v = rng.Normal(10.0, 2.0);
  const auto batch = EwmaSeries(m, 0.2);
  Ewma e(0.2);
  ASSERT_EQ(batch.size(), m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], e.Push(m[i]));
  }
}

// Property: MA output bounded by input range; variance reduced.
class MaPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MaPropertyTest, OutputBoundedAndSmoother) {
  const auto [window, step] = GetParam();
  if (step > window) GTEST_SKIP();
  Rng rng(static_cast<std::uint64_t>(window * 100 + step));
  std::vector<double> raw(2000);
  for (auto& v : raw) v = rng.UniformDouble(-5.0, 5.0);
  const auto ma = MovingAverageSeries(raw, static_cast<std::size_t>(window),
                                      static_cast<std::size_t>(step));
  ASSERT_FALSE(ma.empty());
  for (double v : ma) {
    EXPECT_GE(v, -5.0);
    EXPECT_LE(v, 5.0);
  }
  if (window > 1) {
    double raw_var = 0.0;
    double ma_var = 0.0;
    for (double v : raw) raw_var += v * v;
    for (double v : ma) ma_var += v * v;
    raw_var /= static_cast<double>(raw.size());
    ma_var /= static_cast<double>(ma.size());
    EXPECT_LT(ma_var, raw_var);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MaPropertyTest,
    ::testing::Combine(::testing::Values(1, 10, 50, 200),
                       ::testing::Values(1, 10, 50)));

}  // namespace
}  // namespace sds
