#include "signal/fft.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds {
namespace {

// Brute-force O(N^2) DFT for cross-validation.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      out[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1000));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(64), 64u);
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<Complex> x(8, Complex(0.0, 0.0));
  x[0] = Complex(1.0, 0.0);
  const auto spec = Fft(x);
  for (const auto& v : spec) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantConcentratesAtDc) {
  std::vector<Complex> x(16, Complex(2.0, 0.0));
  const auto spec = Fft(x);
  EXPECT_NEAR(spec[0].real(), 32.0, 1e-9);
  for (std::size_t k = 1; k < spec.size(); ++k) {
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
  }
}

TEST(FftTest, SineConcentratesAtItsBin) {
  const std::size_t n = 64;
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * std::numbers::pi * 5.0 * static_cast<double>(t) /
                    static_cast<double>(n));
  }
  const auto spec = FftReal(x);
  // Bin 5 (and its mirror n-5) carry all energy: |X_5| = n/2.
  EXPECT_NEAR(std::abs(spec[5]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[n - 5]), static_cast<double>(n) / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 5 && k != n - 5) {
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
    }
  }
}

TEST(FftTest, MatchesNaiveDftPowerOfTwo) {
  Rng rng(21);
  std::vector<Complex> x(32);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
  const auto fast = Fft(x);
  const auto slow = NaiveDft(x);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-9);
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-9);
  }
}

// Bluestein path: arbitrary (non power-of-two) sizes against the naive DFT.
class BluesteinTest : public ::testing::TestWithParam<int> {};

TEST_P(BluesteinTest, MatchesNaiveDft) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(100 + n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
  const auto fast = Fft(x);
  const auto slow = NaiveDft(x);
  ASSERT_EQ(fast.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-8) << "n=" << n;
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-8) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BluesteinTest,
                         ::testing::Values(1, 2, 3, 5, 7, 12, 17, 34, 63, 100,
                                           127));

// Property: InverseFft(Fft(x)) == x for many sizes.
class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, InverseRecoversInput) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(200 + n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.Normal(), rng.Normal());
  const auto back = InverseFft(Fft(x));
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-8);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 9, 15, 16, 33, 50, 128,
                                           257));

TEST(FftTest, LinearityProperty) {
  Rng rng(23);
  const std::size_t n = 24;
  std::vector<Complex> a(n);
  std::vector<Complex> b(n);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = Complex(rng.Normal(), 0.0);
    b[i] = Complex(rng.Normal(), 0.0);
    sum[i] = a[i] + 2.0 * b[i];
  }
  const auto fa = Fft(a);
  const auto fb = Fft(b);
  const auto fs = Fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fs[k] - (fa[k] + 2.0 * fb[k])), 0.0, 1e-8);
  }
}

TEST(FftTest, ParsevalEnergyConservation) {
  Rng rng(24);
  const std::size_t n = 64;
  std::vector<double> x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = rng.Normal();
    time_energy += v * v;
  }
  const auto spec = FftReal(x);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8);
}

}  // namespace
}  // namespace sds
