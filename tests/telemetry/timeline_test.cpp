#include "telemetry/timeline.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/types.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/scenario.h"
#include "telemetry/telemetry.h"

namespace sds::telemetry {
namespace {

AuditRecord Check(Tick tick, const char* detector, bool violation,
                  int consecutive, bool alarm) {
  AuditRecord r;
  r.tick = tick;
  r.detector = detector;
  r.check = "boundary";
  r.channel = "AccessNum";
  r.violation = violation;
  r.consecutive = consecutive;
  r.alarm = alarm;
  return r;
}

AuditRecord Mitigation(Tick tick) {
  AuditRecord r;
  r.tick = tick;
  r.detector = "engine";
  r.check = "mitigation";
  r.channel = "";
  return r;
}

// Canonical synthetic episode: attack at t=1000, detector checks at 900
// (pre-attack), 1100 (clean), 1200 (first violation of the streak), 1300
// (second violation -> alarm), mitigation actuated at 1350.
void AppendCanonicalEpisode(Telemetry& telemetry) {
  auto& audit = telemetry.audit();
  audit.Append(Check(900, "SDS", false, 0, false));
  audit.Append(Check(1100, "SDS", false, 0, false));
  audit.Append(Check(1200, "SDS", true, 1, false));
  audit.Append(Check(1300, "SDS", true, 2, true));
  audit.Append(Mitigation(1350));
  audit.Append(Check(1400, "SDS", true, 3, true));  // alarm held: no new edge
}

TEST(Timeline, DecomposesDetectionDelayByStage) {
  Telemetry telemetry;
  AppendCanonicalEpisode(telemetry);

  const auto incidents =
      ReconstructIncidents(telemetry, {.attack_start = 1000});
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& inc = incidents[0];
  EXPECT_EQ(inc.detector, "SDS");
  EXPECT_EQ(inc.channel, "AccessNum");
  EXPECT_EQ(inc.attack_start, 1000);
  EXPECT_EQ(inc.first_check, 1100);
  EXPECT_EQ(inc.streak_start, 1200);
  EXPECT_EQ(inc.alarm, 1300);
  EXPECT_EQ(inc.mitigation, 1350);

  EXPECT_EQ(inc.delay.sampling_wait, 100);
  EXPECT_EQ(inc.delay.detector_compute, 100);
  EXPECT_EQ(inc.delay.debounce, 100);
  EXPECT_EQ(inc.delay.mitigation, 50);
  // The three detection stages partition the headline delay exactly.
  EXPECT_EQ(inc.delay.detection_total(), inc.alarm - inc.attack_start);
}

TEST(Timeline, AttackStartRecoveredFromTracerMarker) {
  Telemetry telemetry;
  telemetry.tracer().Emit(
      MakeEvent(1000, Layer::kEval, "attack_phase_begin").Str("scheme", "B1"));
  AppendCanonicalEpisode(telemetry);

  const auto incidents = ReconstructIncidents(telemetry);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].attack_start, 1000);
  EXPECT_EQ(incidents[0].delay.detection_total(), 300);
}

TEST(Timeline, NoAttackInfoMeansNoIncidents) {
  Telemetry telemetry;
  AppendCanonicalEpisode(telemetry);
  EXPECT_TRUE(ReconstructIncidents(telemetry).empty());
}

TEST(Timeline, PreAttackAlarmEdgesAreIgnored) {
  Telemetry telemetry;
  auto& audit = telemetry.audit();
  // A false positive long before the attack: rising edge at t=500.
  audit.Append(Check(400, "SDS", true, 1, false));
  audit.Append(Check(500, "SDS", true, 2, true));
  audit.Append(Check(600, "SDS", true, 3, true));
  EXPECT_TRUE(
      ReconstructIncidents(telemetry, {.attack_start = 1000}).empty());
}

TEST(Timeline, SeparateIncidentsPerRisingEdge) {
  Telemetry telemetry;
  auto& audit = telemetry.audit();
  audit.Append(Check(1100, "SDS", true, 1, false));
  audit.Append(Check(1200, "SDS", true, 2, true));   // incident 1
  audit.Append(Check(1300, "SDS", false, 0, false));  // alarm clears
  audit.Append(Check(1400, "SDS", true, 1, false));
  audit.Append(Check(1500, "SDS", true, 2, true));   // incident 2

  const auto incidents =
      ReconstructIncidents(telemetry, {.attack_start = 1000});
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].alarm, 1200);
  EXPECT_EQ(incidents[0].streak_start, 1100);
  EXPECT_EQ(incidents[1].alarm, 1500);
  EXPECT_EQ(incidents[1].streak_start, 1400);
  // No mitigation wired up: that stage contributes zero delay.
  EXPECT_EQ(incidents[0].mitigation, kInvalidTick);
  EXPECT_EQ(incidents[0].delay.mitigation, 0);
}

TEST(Timeline, FirstContentionJoinedFromTracerEvents) {
  Telemetry telemetry;
  telemetry.tracer().Emit(
      MakeEvent(950, Layer::kSimBus, "bus_saturated"));  // pre-attack: skip
  telemetry.tracer().Emit(MakeEvent(1050, Layer::kSimBus, "bus_saturated"));
  telemetry.tracer().Emit(
      MakeEvent(1060, Layer::kSimCache, "cross_owner_eviction"));
  AppendCanonicalEpisode(telemetry);

  const auto incidents =
      ReconstructIncidents(telemetry, {.attack_start = 1000});
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].first_contention, 1050);
}

TEST(Timeline, ReportNamesEveryStage) {
  Telemetry telemetry;
  telemetry.tracer().Emit(MakeEvent(1050, Layer::kSimBus, "bus_saturated"));
  AppendCanonicalEpisode(telemetry);
  const auto incidents =
      ReconstructIncidents(telemetry, {.attack_start = 1000});

  std::ostringstream os;
  WriteIncidentReport(os, incidents, telemetry);
  const std::string report = os.str();
  EXPECT_NE(report.find("incident #1"), std::string::npos);
  EXPECT_NE(report.find("first contention"), std::string::npos);
  EXPECT_NE(report.find("sampling wait"), std::string::npos);
  EXPECT_NE(report.find("detector compute"), std::string::npos);
  EXPECT_NE(report.find("debounce"), std::string::npos);
  EXPECT_NE(report.find("actuation"), std::string::npos);
  EXPECT_NE(report.find("detection delay"), std::string::npos);
}

TEST(Timeline, EmptyReportStatesSo) {
  Telemetry telemetry;
  std::ostringstream os;
  WriteIncidentReport(os, {}, telemetry);
  EXPECT_NE(os.str().find("no post-attack alarm incidents"),
            std::string::npos);
}

// End-to-end: the quickstart scenario (kmeans victim, bus-locking attacker,
// SDS combined detector) must yield a reconstructable incident whose stage
// decomposition partitions the measured detection delay exactly.
TEST(Timeline, QuickstartScenarioDecompositionSumsToDetectionDelay) {
  const TickClock clock;
  Telemetry telemetry;

  eval::ScenarioConfig base;
  base.app = "kmeans";
  const auto clean_samples =
      eval::CollectCleanSamples(base, clock.ToTicks(60.0), /*seed=*/7);
  detect::DetectorParams params;
  const detect::SdsProfile profile =
      detect::BuildSdsProfile(clean_samples, params);

  eval::ScenarioConfig cfg;
  cfg.app = "kmeans";
  cfg.attack = eval::AttackKind::kBusLock;
  cfg.attack_start = clock.ToTicks(60.0);
  cfg.seed = 42;
  cfg.machine.telemetry = &telemetry;
  eval::Scenario scenario = eval::BuildScenario(cfg);

  detect::SdsDetector detector(*scenario.hypervisor, scenario.victim, profile,
                               params, detect::SdsMode::kCombined);

  const Tick total = clock.ToTicks(120.0);
  Tick alarm_tick = kInvalidTick;
  for (Tick t = 0; t < total; ++t) {
    scenario.hypervisor->RunTick();
    detector.OnTick();
    if (alarm_tick == kInvalidTick && detector.attack_active()) {
      alarm_tick = scenario.hypervisor->now();
    }
  }
  ASSERT_NE(alarm_tick, kInvalidTick) << "SDS never alarmed on the attack";

  const auto incidents = ReconstructIncidents(
      telemetry, {.attack_start = cfg.attack_start});
  ASSERT_FALSE(incidents.empty());
  const Incident& inc = incidents[0];
  EXPECT_EQ(inc.attack_start, cfg.attack_start);
  EXPECT_GT(inc.alarm, cfg.attack_start);
  EXPECT_FALSE(inc.detector.empty());
  EXPECT_FALSE(inc.channel.empty());
  // Causal ordering of the chain.
  EXPECT_GE(inc.first_check, inc.attack_start);
  EXPECT_GE(inc.streak_start, inc.first_check);
  EXPECT_GE(inc.alarm, inc.streak_start);
  // The decomposition partitions the headline delay with no gap or overlap.
  EXPECT_EQ(inc.delay.detection_total(), inc.alarm - inc.attack_start);

  std::ostringstream os;
  WriteIncidentReport(os, incidents, telemetry);
  EXPECT_NE(os.str().find("detection delay"), std::string::npos);
}

}  // namespace
}  // namespace sds::telemetry
