#include "telemetry/profiler.h"

#include <algorithm>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace sds::telemetry {
namespace {

TEST(SpanProfiler, RegisterInternsByContent) {
  SpanProfiler p;
  const SpanId a = p.RegisterSpan("sim.tick");
  const std::string other("sim.tick");  // different pointer, same content
  const SpanId b = p.RegisterSpan(other.c_str());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, p.RegisterSpan("vm.tick"));
  EXPECT_EQ(p.registered_spans(), 2u);
  EXPECT_STREQ(p.span_name(a), "sim.tick");
}

TEST(SpanProfiler, DisabledEnterIsNoOp) {
  SpanProfiler p;
  const SpanId id = p.RegisterSpan("x");
  p.Enter(id);  // disabled: must not open anything
  EXPECT_EQ(p.open_spans(), 0u);
  EXPECT_TRUE(p.Snapshot().empty());
}

TEST(SpanProfiler, ProfileSpanOnNullProfilerIsSafe) {
  ProfileSpan span(nullptr, 3);
  // Destructor must not touch anything either.
}

TEST(SpanProfiler, TickDomainDurationsAreDeterministic) {
  // In tick-domain mode Now() advances by one per reading, so a leaf span's
  // duration is exactly 1 (exit reading minus entry reading) regardless of
  // machine load — run twice and require identical trees.
  auto run = [] {
    SpanProfiler p;
    const SpanId outer = p.RegisterSpan("outer");
    const SpanId inner = p.RegisterSpan("inner");
    p.Enable(ProfileClock::kTickDomain);
    for (int i = 0; i < 3; ++i) {
      ProfileSpan o(&p, outer);
      ProfileSpan a(&p, inner);
    }
    std::ostringstream os;
    p.WriteJsonl(os);
    return os.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("\"clock\":\"tick\""), std::string::npos);
}

TEST(SpanProfiler, TreeNestsSameNameUnderDifferentParents) {
  SpanProfiler p;
  const SpanId a = p.RegisterSpan("a");
  const SpanId b = p.RegisterSpan("b");
  const SpanId shared = p.RegisterSpan("shared");
  p.Enable(ProfileClock::kTickDomain);
  {
    ProfileSpan s1(&p, a);
    ProfileSpan s2(&p, shared);
  }
  {
    ProfileSpan s1(&p, b);
    ProfileSpan s2(&p, shared);
  }
  const auto nodes = p.Snapshot();
  ASSERT_EQ(nodes.size(), 4u);
  int shared_nodes = 0;
  for (const auto& n : nodes) {
    if (std::string(n.name) == "shared") {
      ++shared_nodes;
      ASSERT_GE(n.parent, 0);
      ASSERT_LT(static_cast<std::size_t>(n.parent), nodes.size());
      EXPECT_EQ(n.depth, 1u);
      // Parent precedes child in the pre-order snapshot.
      EXPECT_LT(static_cast<std::size_t>(n.parent),
                static_cast<std::size_t>(&n - nodes.data()));
    }
  }
  EXPECT_EQ(shared_nodes, 2);
  // AggregateByName sums over both nodes.
  EXPECT_EQ(p.AggregateByName("shared").count, 2u);
  EXPECT_EQ(p.AggregateByName("never").count, 0u);
}

TEST(SpanProfiler, SelfTimeExcludesChildren) {
  SpanProfiler p;
  const SpanId outer = p.RegisterSpan("outer");
  const SpanId inner = p.RegisterSpan("inner");
  p.Enable(ProfileClock::kTickDomain);
  {
    ProfileSpan o(&p, outer);
    ProfileSpan i1(&p, inner);
  }
  const auto outer_agg = p.AggregateByName("outer");
  const auto inner_agg = p.AggregateByName("inner");
  EXPECT_EQ(outer_agg.count, 1u);
  EXPECT_EQ(inner_agg.count, 1u);
  EXPECT_EQ(outer_agg.self, outer_agg.total - inner_agg.total);
  EXPECT_GT(outer_agg.total, inner_agg.total);
}

TEST(SpanProfiler, CountsMinMax) {
  SpanProfiler p;
  const SpanId outer = p.RegisterSpan("outer");
  const SpanId inner = p.RegisterSpan("inner");
  p.Enable(ProfileClock::kTickDomain);
  {
    ProfileSpan o(&p, outer);  // duration 1: no inner readings
  }
  {
    ProfileSpan o(&p, outer);  // longer: inner span adds readings
    ProfileSpan i(&p, inner);
  }
  const auto agg = p.AggregateByName("outer");
  EXPECT_EQ(agg.count, 2u);
  EXPECT_LT(agg.min, agg.max);
  EXPECT_EQ(agg.total, agg.min + agg.max);
}

TEST(SpanProfiler, SliceRingDropsOldestAndCounts) {
  SpanProfiler p(/*slice_capacity=*/4);
  const SpanId id = p.RegisterSpan("s");
  p.Enable(ProfileClock::kTickDomain);
  for (int i = 0; i < 10; ++i) {
    ProfileSpan s(&p, id);
  }
  EXPECT_EQ(p.slices_retained(), 4u);
  EXPECT_EQ(p.slices_dropped(), 6u);
  // Oldest dropped: retained slices are the last four, in order.
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < p.slices_retained(); ++i) {
    EXPECT_GT(p.slice(i).start, prev);
    prev = p.slice(i).start;
    EXPECT_EQ(p.slice(i).span, id);
    EXPECT_EQ(p.slice(i).depth, 0u);
  }
}

TEST(SpanProfiler, RecordSlicesOffKeepsAggregates) {
  SpanProfiler p;
  const SpanId id = p.RegisterSpan("s");
  p.set_record_slices(false);
  p.Enable(ProfileClock::kTickDomain);
  {
    ProfileSpan s(&p, id);
  }
  EXPECT_EQ(p.slices_retained(), 0u);
  EXPECT_EQ(p.AggregateByName("s").count, 1u);
}

TEST(SpanProfiler, DisableMidSpanThenExitIsSafe) {
  SpanProfiler p;
  const SpanId id = p.RegisterSpan("s");
  p.Enable(ProfileClock::kTickDomain);
  p.Enter(id);
  p.Disable();
  p.Exit();  // stack already cleared by Disable: must tolerate
  EXPECT_EQ(p.open_spans(), 0u);
}

TEST(SpanProfiler, WriteJsonlEmitsNothingWhenNeverEnabled) {
  SpanProfiler p;
  p.RegisterSpan("s");
  std::ostringstream os;
  p.WriteJsonl(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(SpanProfiler, WriteJsonlShape) {
  SpanProfiler p;
  const SpanId outer = p.RegisterSpan("outer");
  const SpanId inner = p.RegisterSpan("inner");
  p.Enable(ProfileClock::kTickDomain);
  {
    ProfileSpan o(&p, outer);
    ProfileSpan i(&p, inner);
  }
  std::ostringstream os;
  p.WriteJsonl(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"type\":\"profile\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"span\",\"name\":\"outer\""),
            std::string::npos);
  EXPECT_NE(out.find("\"type\":\"span\",\"name\":\"inner\""),
            std::string::npos);
  // Two lines per record: one profile header + two span nodes.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(SpanProfiler, MacroCompilesAndProfiles) {
  SpanProfiler p;
  const SpanId id = p.RegisterSpan("macro");
  p.Enable(ProfileClock::kTickDomain);
  {
    SDS_PROFILE_SPAN(&p, id);
  }
#if defined(SDS_PROFILING_DISABLED)
  EXPECT_EQ(p.AggregateByName("macro").count, 0u);
#else
  EXPECT_EQ(p.AggregateByName("macro").count, 1u);
#endif
}

}  // namespace
}  // namespace sds::telemetry
