#include "telemetry/perfetto.h"

#include <cctype>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/telemetry.h"

namespace sds::telemetry {
namespace {

// Minimal recursive-descent JSON validator: enough of RFC 8259 to reject any
// malformed output the exporter could plausibly produce (unbalanced braces,
// bare NaN, trailing commas, unescaped control characters in strings).
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    if (std::strncmp(p_, lit, n) != 0) return false;
    p_ += n;
    return true;
  }
  bool String() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c < 0x20) return false;  // raw control character
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            ++p_;
            break;
          case 'u': {
            ++p_;
            for (int i = 0; i < 4; ++i, ++p_) {
              if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
                return false;
            }
            break;
          }
          default:
            return false;
        }
      } else {
        ++p_;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
      return false;
    if (*p_ == '0') {
      ++p_;
    } else {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return false;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return false;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    return p_ != start;
  }
  bool Object() {
    ++p_;  // '{'
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++p_;  // '['
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }
  bool Value() {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const char* p_;
  const char* end_;
};

bool IsValidJson(const std::string& text) {
  return JsonValidator(text).Validate();
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Populates a telemetry handle the way a short run would: a few tracer
// events (one per layer family), two audit records, and a profiled nested
// span pair on the deterministic clock.
void PopulateTelemetry(Telemetry& telemetry) {
  telemetry.tracer().Emit(
      MakeEvent(10, Layer::kSimBus, "lock_window_open", /*owner=*/3)
          .Num("slots", 40));
  telemetry.tracer().Emit(MakeEvent(20, Layer::kDetect, "alarm_raised")
                              .Str("detector", "SDS")
                              .Num("tick", 20));

  AuditRecord rec;
  rec.tick = 20;
  rec.detector = "SDS";
  rec.check = "boundary";
  rec.channel = "AccessNum";
  rec.value = 1234.5;
  rec.lower = 100.0;
  rec.upper = 900.0;
  rec.margin = 1.7;
  rec.violation = true;
  rec.consecutive = 3;
  rec.alarm = true;
  telemetry.audit().Append(rec);

  telemetry.profiler().Enable(ProfileClock::kTickDomain);
  const SpanId outer = telemetry.profiler().RegisterSpan("vm.tick");
  const SpanId inner = telemetry.profiler().RegisterSpan("sim.tick");
  for (int i = 0; i < 3; ++i) {
    ProfileSpan o(&telemetry.profiler(), outer);
    ProfileSpan in(&telemetry.profiler(), inner);
  }
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("\x01"), "\\u0001");
  EXPECT_EQ(JsonEscape(nullptr), "");
}

TEST(JsonValidatorSelfTest, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(IsValidJson("{\"a\":[1,2.5,-3e4,null,true,\"x\\n\"]}"));
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_FALSE(IsValidJson("{\"a\":}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("{\"a\":NaN}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1}garbage"));
  EXPECT_FALSE(IsValidJson("{\"a\":\"unterminated}"));
}

TEST(PerfettoExport, ProducesValidTraceEventJson) {
  Telemetry telemetry;
  PopulateTelemetry(telemetry);

  std::ostringstream os;
  WritePerfettoTrace(telemetry, os);
  const std::string trace = os.str();

  ASSERT_TRUE(IsValidJson(trace)) << trace;
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  // Metadata names the tracks, instants carry the events + audits, complete
  // events carry the profiler slices.
  EXPECT_GT(CountOccurrences(trace, "\"ph\":\"M\""), 0);
  EXPECT_GT(CountOccurrences(trace, "\"ph\":\"i\""), 0);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"X\""), 6);  // 3 iterations x 2
  EXPECT_NE(trace.find("lock_window_open"), std::string::npos);
  EXPECT_NE(trace.find("\"detector\":\"SDS\""), std::string::npos);
}

TEST(PerfettoExport, NonFiniteNumbersBecomeNull) {
  Telemetry telemetry;
  AuditRecord rec;
  rec.tick = 5;
  rec.detector = "SDS";
  rec.check = "period";
  rec.channel = "AccessNum";
  rec.value = std::numeric_limits<double>::quiet_NaN();
  rec.margin = std::numeric_limits<double>::infinity();
  telemetry.audit().Append(rec);

  std::ostringstream os;
  WritePerfettoTrace(telemetry, os);
  const std::string trace = os.str();
  ASSERT_TRUE(IsValidJson(trace)) << trace;
  EXPECT_NE(trace.find("\"value\":null"), std::string::npos);
  EXPECT_NE(trace.find("\"margin\":null"), std::string::npos);
  EXPECT_EQ(trace.find("nan"), std::string::npos);
  EXPECT_EQ(trace.find("inf"), std::string::npos);
}

TEST(PerfettoExport, OptionsSuppressSections) {
  Telemetry telemetry;
  PopulateTelemetry(telemetry);

  PerfettoOptions no_slices;
  no_slices.include_profiler_slices = false;
  std::ostringstream os1;
  WritePerfettoTrace(telemetry, os1, no_slices);
  ASSERT_TRUE(IsValidJson(os1.str()));
  EXPECT_EQ(CountOccurrences(os1.str(), "\"ph\":\"X\""), 0);

  PerfettoOptions meta_only;
  meta_only.include_tracer_events = false;
  meta_only.include_audit_records = false;
  meta_only.include_profiler_slices = false;
  std::ostringstream os2;
  WritePerfettoTrace(telemetry, os2, meta_only);
  ASSERT_TRUE(IsValidJson(os2.str()));
  EXPECT_EQ(CountOccurrences(os2.str(), "\"ph\":\"i\""), 0);
  EXPECT_GT(CountOccurrences(os2.str(), "\"ph\":\"M\""), 0);
}

TEST(PerfettoExport, EmptyTelemetryStillValid) {
  Telemetry telemetry;
  std::ostringstream os;
  WritePerfettoTrace(telemetry, os);
  ASSERT_TRUE(IsValidJson(os.str())) << os.str();
  // Track-naming metadata is always present even with nothing recorded.
  EXPECT_GT(CountOccurrences(os.str(), "\"ph\":\"M\""), 0);
}

TEST(PerfettoExport, SlicesRebaseToEarliestStart) {
  Telemetry telemetry;
  telemetry.profiler().Enable(ProfileClock::kTickDomain);
  const SpanId id = telemetry.profiler().RegisterSpan("s");
  {
    ProfileSpan a(&telemetry.profiler(), id);
  }
  {
    ProfileSpan b(&telemetry.profiler(), id);
  }
  std::ostringstream os;
  WritePerfettoTrace(telemetry, os);
  const std::string trace = os.str();
  ASSERT_TRUE(IsValidJson(trace));
  // The earliest slice lands at ts == 0 after rebasing.
  EXPECT_NE(trace.find("\"ph\":\"X\",\"ts\":0,"), std::string::npos) << trace;
}

}  // namespace
}  // namespace sds::telemetry
