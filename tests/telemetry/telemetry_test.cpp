// Unit tests for the telemetry subsystem: metrics registry semantics, event
// tracer ring-buffer overflow behavior, audit log serialization, and the
// combined JSONL stream format read by tools/trace_inspect.
#include "telemetry/telemetry.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sds::telemetry {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("sim.hits");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("vm.runnable");
  g->Set(3.0);
  g->Set(7.5);
  EXPECT_DOUBLE_EQ(g->value(), 7.5);
}

TEST(MetricsTest, ReRegistrationReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(5);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h", {1.0}),
            registry.GetHistogram("h", {2.0, 3.0}));
}

TEST(MetricsTest, InstrumentPointersSurviveFurtherRegistration) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("first");
  for (int i = 0; i < 1000; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  first->Add(7);
  EXPECT_EQ(registry.GetCounter("first")->value(), 7u);
}

TEST(MetricsTest, HistogramBucketsObservations) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10.0, 20.0, 30.0});
  h->Observe(5.0);    // bucket 0
  h->Observe(10.0);   // bucket 0 (<= bound)
  h->Observe(15.0);   // bucket 1
  h->Observe(100.0);  // overflow bucket
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 130.0);
  ASSERT_EQ(h->buckets().size(), 4u);
  EXPECT_EQ(h->buckets()[0], 2u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->buckets()[2], 0u);
  EXPECT_EQ(h->buckets()[3], 1u);
}

TEST(MetricsTest, HistogramRoutesNonFiniteWithoutPoisoningSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10.0, 20.0});
  h->Observe(std::numeric_limits<double>::quiet_NaN());
  h->Observe(std::numeric_limits<double>::infinity());
  h->Observe(-std::numeric_limits<double>::infinity());
  h->Observe(15.0);  // the only finite observation
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 15.0);  // non-finite excluded from the sum
  ASSERT_EQ(h->buckets().size(), 3u);
  EXPECT_EQ(h->buckets()[0], 1u);  // -inf
  EXPECT_EQ(h->buckets()[1], 1u);  // 15.0
  EXPECT_EQ(h->buckets()[2], 2u);  // NaN and +inf in the overflow bucket
}

TEST(MetricsTest, ValuesAboveLastBoundLandInOverflowBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10.0, 20.0});
  h->Observe(20.0);     // == last bound: NOT overflow
  h->Observe(20.0001);  // just beyond: overflow
  h->Observe(1e18);     // far beyond: overflow
  ASSERT_EQ(h->buckets().size(), 3u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->buckets()[2], 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 40.0001 + 1e18);  // finite values still summed
}

TEST(MetricsTest, QuantileInterpolatesWithinBuckets) {
  const std::vector<double> bounds{10.0, 20.0, 30.0};
  const std::vector<std::uint64_t> buckets{10, 10, 10, 0};
  // Median rank 15 sits halfway through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 1.0), 30.0);
}

TEST(MetricsTest, QuantileClampsOverflowToLastBound) {
  const std::vector<double> bounds{10.0, 20.0, 30.0};
  const std::vector<std::uint64_t> buckets{0, 0, 0, 5};
  // Every observation is beyond resolution: all quantiles clamp to 30.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.99), 30.0);
}

TEST(MetricsTest, QuantileOfEmptyHistogramIsNaN) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10.0});
  EXPECT_TRUE(std::isnan(h->Quantile(0.5)));
  h->Observe(5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 10.0);
}

TEST(MetricsTest, WriteJsonlEmitsOneLinePerInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Add(3);
  registry.GetGauge("b")->Set(1.5);
  registry.GetHistogram("c", {1.0})->Observe(0.5);
  std::ostringstream os;
  registry.WriteJsonl(os);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_NE(line.find("\"type\":\"metric\""), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(os.str().find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(os.str().find("\"buckets\":[1,0]"), std::string::npos);
}

TEST(TracerTest, LayerNamesAreDotted) {
  EXPECT_STREQ(LayerName(Layer::kSimBus), "sim.bus");
  EXPECT_STREQ(LayerName(Layer::kDetect), "detect");
}

TEST(TracerTest, AllLayersEnabledByDefault) {
  EventTracer tracer(8);
  for (std::size_t i = 0; i < kLayerCount; ++i) {
    EXPECT_TRUE(tracer.enabled(static_cast<Layer>(i)));
  }
}

TEST(TracerTest, DisabledLayerEventsAreNotRecorded) {
  EventTracer tracer(8);
  tracer.DisableLayer(Layer::kSimBus);
  EXPECT_FALSE(tracer.enabled(Layer::kSimBus));
  tracer.Emit(MakeEvent(1, Layer::kSimBus, "lock_window_open"));
  EXPECT_EQ(tracer.retained(), 0u);
  EXPECT_EQ(tracer.emitted(), 0u);
  tracer.EnableLayer(Layer::kSimBus);
  tracer.Emit(MakeEvent(2, Layer::kSimBus, "lock_window_open"));
  EXPECT_EQ(tracer.retained(), 1u);
}

TEST(TracerTest, RingOverflowDropsOldestAndCounts) {
  EventTracer tracer(4);
  for (Tick t = 0; t < 10; ++t) {
    tracer.Emit(MakeEvent(t, Layer::kVm, "e"));
  }
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  ASSERT_EQ(tracer.retained(), 4u);
  // The retained window is the NEWEST four events, oldest first.
  EXPECT_EQ(tracer.event(0).tick, 6);
  EXPECT_EQ(tracer.event(3).tick, 9);
}

TEST(TracerTest, DropAccountingSurvivesFlush) {
  EventTracer tracer(4);
  for (Tick t = 0; t < 10; ++t) {
    tracer.Emit(MakeEvent(t, Layer::kVm, "e"));
  }
  std::ostringstream os;
  EXPECT_EQ(tracer.FlushJsonl(os), 4u);
  // Flushing drains the window but keeps the lifetime emitted/dropped
  // counters: the incident report's "[N older events dropped]" annotation
  // depends on this.
  EXPECT_EQ(tracer.retained(), 0u);
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(TracerTest, EventFieldsSerializeToJson) {
  TraceEvent e = MakeEvent(17, Layer::kSimCache, "cross_owner_eviction", 3);
  e.Num("set", 12).Str("note", "x");
  std::ostringstream os;
  WriteEventJson(os, e);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(json.find("\"tick\":17"), std::string::npos);
  EXPECT_NE(json.find("\"layer\":\"sim.cache\""), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"cross_owner_eviction\""), std::string::npos);
  EXPECT_NE(json.find("\"owner\":3"), std::string::npos);
  EXPECT_NE(json.find("\"set\":12"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"x\""), std::string::npos);
}

TEST(TracerTest, FlushJsonlDrainsRing) {
  EventTracer tracer(8);
  tracer.Emit(MakeEvent(1, Layer::kPcm, "sample"));
  tracer.Emit(MakeEvent(2, Layer::kPcm, "sample"));
  std::ostringstream os;
  EXPECT_EQ(tracer.FlushJsonl(os), 2u);
  EXPECT_EQ(tracer.retained(), 0u);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 2);
}

TEST(AuditTest, RecordsAccumulateAndSerialize) {
  AuditLog log;
  AuditRecord r;
  r.tick = 100;
  r.detector = "SDS/B";
  r.check = "boundary";
  r.channel = "AccessNum";
  r.value = 5.0;
  r.lower = 1.0;
  r.upper = 4.0;
  r.margin = 0.5;
  r.violation = true;
  r.consecutive = 2;
  r.alarm = false;
  log.Append(r);
  EXPECT_EQ(log.size(), 1u);
  std::ostringstream os;
  log.WriteJsonl(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"type\":\"audit\""), std::string::npos);
  EXPECT_NE(json.find("\"detector\":\"SDS/B\""), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"boundary\""), std::string::npos);
  EXPECT_NE(json.find("\"violation\":true"), std::string::npos);
  EXPECT_NE(json.find("\"consecutive\":2"), std::string::npos);
}

TEST(TelemetryTest, WriteJsonlEmitsHeaderEventsAuditsMetrics) {
  Telemetry telemetry;
  telemetry.metrics().GetCounter("c")->Add(1);
  telemetry.tracer().Emit(MakeEvent(5, Layer::kEval, "stage_begin"));
  AuditRecord r;
  r.detector = "SDS";
  r.check = "boundary";
  telemetry.audit().Append(r);

  std::ostringstream os;
  telemetry.WriteJsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"audit\""), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"metric\""), std::string::npos);
}

TEST(TelemetryTest, WriteJsonlFileRoundTripsThroughFilesystem) {
  Telemetry telemetry;
  telemetry.tracer().Emit(MakeEvent(1, Layer::kVm, "vm_created", 2));
  const std::string path = ::testing::TempDir() + "/sds_telemetry_test.jsonl";
  ASSERT_TRUE(telemetry.WriteJsonlFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string first;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, first)));
  EXPECT_NE(first.find("\"type\":\"header\""), std::string::npos);
}

}  // namespace
}  // namespace sds::telemetry
