#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.Fork();
  // Re-derive the same child from an identical parent: same stream.
  Rng parent2(7);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child(), child2());
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17ull), 17ull);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(10);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[rng.UniformInt(8ull)];
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 1000);  // expected 1250 each
    EXPECT_LT(c, 1500);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(12);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, PoissonMeanMatchesSmallLambda) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(4.2));
  EXPECT_NEAR(sum / n, 4.2, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLargeLambda) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(ZipfSamplerTest, SingleElementAlwaysZero) {
  ZipfSampler z(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

TEST(ZipfSamplerTest, RankFrequenciesDecrease) {
  ZipfSampler z(100, 1.0);
  Rng rng(2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200000; ++i) ++counts[z.Sample(rng)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[49]);
  // Rank-0 over rank-9 frequency ratio should be roughly 10 for s=1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[9], 10.0, 3.0);
}

TEST(ZipfSamplerTest, SamplesStayInDomain) {
  ZipfSampler z(13, 0.8);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Sample(rng), 13u);
}

// Property sweep: Poisson variance ~= mean for a grid of lambdas.
class PoissonPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonPropertyTest, VarianceMatchesMean) {
  const double lambda = GetParam();
  Rng rng(static_cast<std::uint64_t>(lambda * 1000) + 1);
  const int n = 40000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto v = static_cast<double>(rng.Poisson(lambda));
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05 * lambda + 0.05);
  EXPECT_NEAR(var, lambda, 0.10 * lambda + 0.2);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonPropertyTest,
                         ::testing::Values(0.5, 2.0, 8.0, 25.0, 60.0, 200.0));

}  // namespace
}  // namespace sds
