#include "common/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(CsvWriterTest, PlainFields) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.Row("a", 1, 2.5);
  EXPECT_EQ(os.str(), "a,1,2.5\n");
}

TEST(CsvWriterTest, QuotesFieldsWithCommas) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.Row("x,y", "plain");
  EXPECT_EQ(os.str(), "\"x,y\",plain\n");
}

TEST(CsvWriterTest, EscapesEmbeddedQuotes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.Row(std::string("he said \"hi\""));
  EXPECT_EQ(os.str(), "\"he said \"\"hi\"\"\"\n");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.Row("x", 1);
  t.Row("longer", 22);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, NoHeaderJustRows) {
  TextTable t;
  t.Row("a", "b");
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str(), "a  b\n");
}

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(FormatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(FormatFixed(1.0, 3), "1.000");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
}

TEST(SparklineTest, EmptyInput) {
  EXPECT_EQ(Sparkline({}, 10), "");
}

TEST(SparklineTest, WidthRespected) {
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  EXPECT_EQ(Sparkline(v, 20).size(), 20u);
}

TEST(SparklineTest, ShortSeriesKeepsLength) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_EQ(Sparkline(v, 80).size(), 3u);
}

TEST(SparklineTest, MonotoneSeriesEndsHigh) {
  std::vector<double> v(50);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const std::string s = Sparkline(v, 10);
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '@');
}

TEST(SparklineTest, ConstantSeriesDoesNotCrash) {
  std::vector<double> v(10, 3.0);
  const std::string s = Sparkline(v, 10);
  EXPECT_EQ(s.size(), 10u);
}

}  // namespace
}  // namespace sds
