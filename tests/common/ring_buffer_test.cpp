#include "common/ring_buffer.h"

#include <vector>

#include <gtest/gtest.h>

namespace sds {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBufferTest, FillsInOrder) {
  RingBuffer<int> rb(3);
  rb.Push(1);
  rb.Push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb[0], 1);
  EXPECT_EQ(rb[1], 2);
  EXPECT_EQ(rb.oldest(), 1);
  EXPECT_EQ(rb.newest(), 2);
}

TEST(RingBufferTest, EvictsOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.Push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
}

TEST(RingBufferTest, ToVectorMatchesIndexing) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 9; ++i) rb.Push(i * 10);
  const std::vector<int> v = rb.ToVector();
  ASSERT_EQ(v.size(), rb.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], rb[i]);
  EXPECT_EQ(v.front(), 50);
  EXPECT_EQ(v.back(), 80);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(2);
  rb.Push(1);
  rb.Push(2);
  rb.Clear();
  EXPECT_TRUE(rb.empty());
  rb.Push(9);
  EXPECT_EQ(rb.oldest(), 9);
  EXPECT_EQ(rb.newest(), 9);
}

TEST(RingBufferTest, CapacityOneKeepsNewest) {
  RingBuffer<int> rb(1);
  rb.Push(1);
  rb.Push(2);
  rb.Push(3);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb[0], 3);
}

// Property: after N pushes, contents equal the last min(N, capacity) values.
class RingBufferPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingBufferPropertyTest, KeepsSuffix) {
  const auto [capacity, pushes] = GetParam();
  RingBuffer<int> rb(static_cast<std::size_t>(capacity));
  for (int i = 0; i < pushes; ++i) rb.Push(i);
  const auto expected_size =
      static_cast<std::size_t>(std::min(capacity, pushes));
  ASSERT_EQ(rb.size(), expected_size);
  for (std::size_t i = 0; i < expected_size; ++i) {
    EXPECT_EQ(rb[i], pushes - static_cast<int>(expected_size) +
                         static_cast<int>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingBufferPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 64),
                       ::testing::Values(0, 1, 6, 7, 8, 100)));

}  // namespace
}  // namespace sds
