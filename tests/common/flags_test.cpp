#include "common/flags.h"

#include <gtest/gtest.h>

namespace sds {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagsTest, ParsesEqualsForm) {
  std::vector<std::string> args = {"prog", "--runs=5", "--app=kmeans"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(),
                      {"runs", "app"}));
  EXPECT_EQ(f.GetInt("runs", 0), 5);
  EXPECT_EQ(f.GetString("app", ""), "kmeans");
}

TEST(FlagsTest, ParsesSpaceForm) {
  std::vector<std::string> args = {"prog", "--runs", "7"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"runs"}));
  EXPECT_EQ(f.GetInt("runs", 0), 7);
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  std::vector<std::string> args = {"prog", "--csv"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"csv"}));
  EXPECT_TRUE(f.GetBool("csv", false));
}

TEST(FlagsTest, UnknownFlagFails) {
  std::vector<std::string> args = {"prog", "--bogus=1"};
  auto argv = MakeArgv(args);
  Flags f;
  EXPECT_FALSE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"runs"}));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"x"}));
  EXPECT_EQ(f.GetInt("x", 42), 42);
  EXPECT_EQ(f.GetString("x", "d"), "d");
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 1.5), 1.5);
  EXPECT_FALSE(f.GetBool("x", false));
  EXPECT_FALSE(f.Has("x"));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  std::vector<std::string> args = {"prog", "pos1", "--runs=1", "pos2"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"runs"}));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
}

TEST(FlagsTest, DoubleParsing) {
  std::vector<std::string> args = {"prog", "--alpha=0.25"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"alpha"}));
  EXPECT_DOUBLE_EQ(f.GetDouble("alpha", 0.0), 0.25);
}

TEST(FlagsTest, HelpStopsParsingAndSetsHelpRequested) {
  std::vector<std::string> args = {"prog", "--help"};
  auto argv = MakeArgv(args);
  Flags f;
  EXPECT_FALSE(f.Parse(static_cast<int>(argv.size()), argv.data(),
                       {{"runs", "number of runs"}}));
  EXPECT_TRUE(f.help_requested());
}

TEST(FlagsTest, UnknownFlagIsNotHelp) {
  std::vector<std::string> args = {"prog", "--bogus"};
  auto argv = MakeArgv(args);
  Flags f;
  EXPECT_FALSE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"runs"}));
  EXPECT_FALSE(f.help_requested());
}

TEST(FlagsTest, DescribedSpecsParseLikePlainNames) {
  std::vector<std::string> args = {"prog", "--runs=5", "--app=kmeans"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(),
                      {{"runs", "number of runs"},
                       {"app", "catalog application"}}));
  EXPECT_EQ(f.GetInt("runs", 0), 5);
  EXPECT_EQ(f.GetString("app", ""), "kmeans");
}

TEST(FlagsTest, BooleanSpecDoesNotConsumeFollowingToken) {
  std::vector<std::string> args = {"prog", "--json", "path/a", "path/b"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(),
                      {{"json", "machine-readable output", true}}));
  EXPECT_TRUE(f.GetBool("json", false));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "path/a");
  EXPECT_EQ(f.positional()[1], "path/b");
}

TEST(FlagsTest, NonBooleanSpecStillTakesSeparateValue) {
  std::vector<std::string> args = {"prog", "--root", "somewhere"};
  auto argv = MakeArgv(args);
  Flags f;
  ASSERT_TRUE(f.Parse(static_cast<int>(argv.size()), argv.data(),
                      {{"root", "include root"}}));
  EXPECT_EQ(f.GetString("root", ""), "somewhere");
  EXPECT_TRUE(f.positional().empty());
}

TEST(FlagsTest, HelpDoesNotConsumeFollowingToken) {
  std::vector<std::string> args = {"prog", "--help", "positional"};
  auto argv = MakeArgv(args);
  Flags f;
  EXPECT_FALSE(f.Parse(static_cast<int>(argv.size()), argv.data(), {"runs"}));
  EXPECT_TRUE(f.help_requested());
}

}  // namespace
}  // namespace sds
