// Fixture for --fix: missing #pragma once and missing <string>/<vector>
// includes; the fixer must add all three and a second pass must find the
// header clean.

#include <cstdint>

namespace sds::vm {

inline std::vector<std::string> NameParts(const std::string& name) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '.') {
      parts.push_back(name.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return parts;
}

}  // namespace sds::vm
