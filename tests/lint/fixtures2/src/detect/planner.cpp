// Fixture: this file contains NO determinism sink token of its own — the
// per-file token scanner finds nothing here. The violation is reachable only
// through the call graph: PlanThresholds -> SeededMixture (stats/mixture.h)
// -> NoiseFloor (stats/noise_floor.h) -> std::random_device.
#include "detect/planner.h"

#include "stats/mixture.h"

namespace sds::detect {

using sds::stats::SeededMixture;

double PlanThresholds(int windows) {
  double acc = 0.0;
  for (int i = 0; i < windows; ++i) {
    acc += SeededMixture(i);
  }
  return acc;
}

}  // namespace sds::detect
