// Fixture: deterministic-layer entry point whose implementation reaches a
// nondeterministic sink only through two intermediate cross-file calls.
#pragma once

namespace sds::detect {

double PlanThresholds(int windows);

}  // namespace sds::detect
