// Fixture: declares an unordered container that a DIFFERENT file iterates.
// The per-file scanner only sees the container type here and the range-for
// there — the cross-TU unordered-iteration check joins the two.
#pragma once

#include <unordered_map>

namespace sds::sim {

inline std::unordered_map<int, int> live_table;

}  // namespace sds::sim
