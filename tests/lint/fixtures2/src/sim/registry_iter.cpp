// Fixture: iterates a container whose unordered-ness is only visible in the
// header that declares it (sim/registry.h). The per-file rule cannot see the
// type; the closure-aware pass can.
#include "sim/registry.h"

namespace sds::sim {

int SumLive() {
  int total = 0;
  for (const auto& entry : live_table) {
    total += entry.second;
  }
  return total;
}

}  // namespace sds::sim
