// Fixture: a field cannot be both lock-guarded and shard-owned; the
// contradictory declaration itself is diagnosed.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace sds::obs {

class ConfusedSlot {
 private:
  std::mutex mu_;
  int value_ SDS_GUARDED_BY(mu_) SDS_SHARD_OWNED = 0;
};

}  // namespace sds::obs
