// Fixture: lock-order cycle. First acquires a_mu_ then b_mu_, Second
// acquires b_mu_ then a_mu_ — two threads running them concurrently can
// deadlock. The acquisition that closes the cycle is diagnosed.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace sds::obs {

class OrderedLocks {
 public:
  void First() {
    std::lock_guard<std::mutex> a(a_mu_);
    std::lock_guard<std::mutex> b(b_mu_);
    ++forward_;
  }

  void Second() {
    std::lock_guard<std::mutex> b(b_mu_);
    std::lock_guard<std::mutex> a(a_mu_);
    ++backward_;
  }

 private:
  std::mutex a_mu_;
  std::mutex b_mu_;
  int forward_ = 0;
  int backward_ = 0;
};

}  // namespace sds::obs
