// Fixture: SDS_SHARD_OWNED enforcement. The field claims single-thread shard
// affinity, yet Tally acquires a lock around it — the two disciplines are
// contradictory, and the locked access is the violation.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace sds::obs {

class ShardState {
 public:
  void Tally(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    counter_ += v;
  }

 private:
  std::mutex mu_;
  int counter_ SDS_SHARD_OWNED = 0;
};

}  // namespace sds::obs
