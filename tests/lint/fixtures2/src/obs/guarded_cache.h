// Fixture: SDS_GUARDED_BY enforcement. Record holds the mutex; Peek touches
// the guarded field with no lock and no SDS_ASSERT_HELD — that access is the
// violation. Held-by-caller is legal when asserted: PeekLocked.
#pragma once

#include <mutex>

#include "common/annotations.h"

namespace sds::obs {

class GuardedCache {
 public:
  void Record(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    last_ = v;
  }

  int Peek() const {
    return last_;
  }

  int PeekLocked() const {
    SDS_ASSERT_HELD(mu_);
    return last_;
  }

 private:
  mutable std::mutex mu_;
  int last_ SDS_GUARDED_BY(mu_) = 0;
};

}  // namespace sds::obs
