// Fixture mirror of src/common/annotations.h so the fixture headers resolve
// their include; sdslint reads the macros lexically either way.
#pragma once

#define SDS_GUARDED_BY(mu)
#define SDS_SHARD_OWNED
#define SDS_ASSERT_HELD(mu) ((void)sizeof(&(mu)))
