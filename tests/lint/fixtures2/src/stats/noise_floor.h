// Fixture: the sink. std::random_device in a deterministic layer — the
// direct det-rand rule fires here, and the taint pass propagates the fact
// backward to every deterministic caller that can reach it.
#pragma once

#include <random>

namespace sds::stats {

inline double NoiseFloor() {
  std::random_device entropy;
  return static_cast<double>(entropy()) * 1e-12;
}

}  // namespace sds::stats
