// Fixture: middle hop of the taint chain. No sink token here either — the
// nondeterminism lives one more call away, in stats/noise_floor.h.
#pragma once

#include "stats/noise_floor.h"

namespace sds::stats {

inline double SeededMixture(int salt) {
  return static_cast<double>(salt) + NoiseFloor();
}

}  // namespace sds::stats
