// Fixture: a deterministic-layer caller into the telemetry plane. The callee
// reads a wall clock, but telemetry functions are never tainted — this file
// must stay clean (the telemetry-stop negative case).
#include <cstdint>

#include "telemetry/walltime.h"

namespace sds::vm {

using sds::telemetry::WallNanos;

std::int64_t StampTick(std::int64_t tick) { return tick + (WallNanos() & 1); }

}  // namespace sds::vm
