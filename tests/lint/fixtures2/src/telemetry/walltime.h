// Fixture: telemetry is the write-only observability plane — wall clocks are
// its charter, so this sink must seed NO taint (negative case for the
// telemetry stop in the taint pass).
#pragma once

#include <chrono>
#include <cstdint>

namespace sds::telemetry {

inline std::int64_t WallNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace sds::telemetry
