// Clean: the same serialization shape with the version constant written
// into the byte stream, as obs/snapshot.cpp does for real blobs.
#include "common/snapshot.h"

namespace sds::obs {
inline constexpr unsigned kSnapshotVersion = 1;

std::string SealVersioned() {
  SnapshotWriter w;
  w.U32(kSnapshotVersion);
  return w.TakeData();
}
}  // namespace sds::obs
