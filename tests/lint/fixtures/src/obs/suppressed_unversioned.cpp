// The allow() escape hatch silences det-snapshot-versioned — e.g. for a
// transcoder that re-emits payload bytes whose versioned header is written
// by another translation unit.
#include "common/snapshot.h"

namespace sds::obs {
std::string Transcode(const std::string& payload) {
  SnapshotWriter w;  // sdslint: allow(det-snapshot-versioned)
  w.Str(payload);
  return w.TakeData();
}
}  // namespace sds::obs
