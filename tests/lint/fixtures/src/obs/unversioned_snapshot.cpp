// Seeded violation: an obs-layer file serializes a snapshot byte stream
// but never references the version constant, so the blob has no version
// pin for OpenSnapshot to reject on (det-snapshot-versioned).
#include "common/snapshot.h"

namespace sds::obs {
std::string SealUnversioned() {
  SnapshotWriter w;
  w.U32(7u);
  return w.TakeData();
}
}  // namespace sds::obs
