// Seeded violations: an eval harness moving detector state across a
// migration as raw SaveState/RestoreState bytes, bypassing the versioned
// handoff envelope (det-handoff-versioned).
namespace sds::eval {
struct FakeDetector {
  void SaveState(int& w) const;
  bool RestoreState(int& r);
};
void MoveDetector(FakeDetector& from, FakeDetector* to) {
  int blob = 0;
  from.SaveState(blob);
  to->RestoreState(blob);
}
}  // namespace sds::eval
