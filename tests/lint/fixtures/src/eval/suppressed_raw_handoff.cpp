// Seeded suppression: a justified in-process restore (never leaves the
// host, e.g. an A/B replay of one detector) may bypass the envelope.
namespace sds::eval {
struct FakeDetector {
  bool RestoreState(int& r);
};
void Replay(FakeDetector& detector) {
  int blob = 0;
  detector.RestoreState(blob);  // sdslint: allow(det-handoff-versioned)
}
}  // namespace sds::eval
