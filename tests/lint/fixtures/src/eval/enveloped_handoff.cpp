// Clean: the same migration moving detector state through the versioned
// obs handoff envelope, as eval/hostchaos.cpp does for real handoffs.
#include "obs/handoff.h"

namespace sds::eval {
struct FakeDetector {};
std::string PackForMigration(const FakeDetector& detector) {
  (void)detector;
  return "obs::PackSdsHandoff carries the fingerprint + version pin";
}
}  // namespace sds::eval
