#pragma once

#include "telemetry/telemetry.h"

int HeaderPullsInTelemetry();
