#include <cstdint>
#include <map>
#include <string>

namespace {
std::map<std::string, std::uint64_t> g_registry;
}  // namespace

std::uint64_t DeterministicSum() {
  std::uint64_t total = 0;
  for (const auto& kv : g_registry) {
    total += kv.second;
  }
  return total;
}
