#include <chrono>
#include <cstdio>

long long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long long Wall() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

void PrintHandle(const void* p) {
  std::printf("handle=%p\n", p);
}

void ModuloPIsFine(int a, int p) {
  std::printf("%d\n", a % p);
}
