// Seeded violation: a detector reaching into the restricted fault layer.
// fault's dependents are enumerated (cluster, eval) — the detectors under
// test must never see the injection machinery.
#include "fault/plan.h"
