#pragma once

#include "eval/report.h"

int InvertedDependency();
