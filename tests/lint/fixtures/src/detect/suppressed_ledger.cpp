// Seeded suppression: a justified ledger mutation outside sim (e.g. a
// test double being primed) silenced with the escape hatch.
namespace sds::detect {
struct FakeLedger {
  void RecordEviction(unsigned culprit, unsigned victim);
};
void Prime(FakeLedger& ledger) {
  ledger.RecordEviction(2, 1);  // sdslint: allow(det-attrib-ledger)
}
}  // namespace sds::detect
