// Seeded violations: a detector fabricating hardware evidence by mutating
// the attribution ledger from the detect layer (det-attrib-ledger).
namespace sds::detect {
struct FakeLedger {
  void RecordTickStart();
  void RecordEviction(unsigned culprit, unsigned victim);
  void RecordBusOccupancy(unsigned owner, unsigned slots);
  void RecordBusStall(unsigned victim);
};
void FrameTenant(FakeLedger& ledger, FakeLedger* remote) {
  ledger.RecordEviction(2, 1);
  ledger.RecordBusStall(1);
  remote->RecordBusOccupancy(2, 40);
  remote->RecordTickStart();
}
}  // namespace sds::detect
