#pragma once

#include "eval/report.h"  // sdslint: allow(layer-dag)

int GrandfatheredInversion();
