#include <map>
#include <string>
#include <unordered_map>

namespace {
std::unordered_map<std::string, int> g_counts;
std::map<std::string, int> g_sorted;
}  // namespace

int SumUnordered() {
  int total = 0;
  for (const auto& kv : g_counts) {
    total += kv.second;
  }
  return total;
}

int SumSorted() {
  int total = 0;
  for (const auto& kv : g_sorted) {
    total += kv.second;
  }
  return total;
}

int LookupIsFine(const std::string& key) {
  auto it = g_counts.find(key);
  return it == g_counts.end() ? 0 : it->second;
}
