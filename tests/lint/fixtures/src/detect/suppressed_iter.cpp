#include <unordered_map>

namespace {
std::unordered_map<int, int> g_histogram;
}  // namespace

long OrderInsensitiveSum() {
  long total = 0;
  // Summation commutes, so iteration order cannot change the result.
  // sdslint: allow(det-unordered-iter)
  for (const auto& kv : g_histogram) {
    total += kv.second;
  }
  return total;
}
