// Seeded violation: cluster sits beside obs in the DAG, and obs is a
// restricted layer — only eval (and the test/bench/tool trees) may depend
// on the observability plane (layer-dag).
#include "obs/rollup.h"
