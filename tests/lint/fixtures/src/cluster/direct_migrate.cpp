// Seeded violations: a cluster-layer scheduler bypassing the Actuator and
// mutating placement directly (det-actuation-idempotent).
namespace sds::cluster {
struct FakeCluster {
  int Migrate(int vm, int host);
  void StopVm(int vm);
  void ResumeVm(int vm);
};
void Rebalance(FakeCluster& cluster, FakeCluster* remote) {
  cluster.Migrate(1, 0);
  cluster.StopVm(2);
  remote->ResumeVm(3);
}
}  // namespace sds::cluster
