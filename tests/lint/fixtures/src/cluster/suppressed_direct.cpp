// Seeded suppression: the escape hatch for a justified direct call.
namespace sds::cluster {
struct FakeCluster {
  void ResumeVm(int vm);
};
void Repair(FakeCluster& cluster) {
  cluster.ResumeVm(7);  // sdslint: allow(det-actuation-idempotent)
}
}  // namespace sds::cluster
