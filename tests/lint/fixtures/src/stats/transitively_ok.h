#pragma once

#include "stats/vec_provider.h"

std::vector<int> SatisfiedThroughProvider();
