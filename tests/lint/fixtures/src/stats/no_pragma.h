// A header that forgot its include guard.

int MissingPragmaOnce();
