#pragma once

#include <vector>

std::vector<int> Provider();
