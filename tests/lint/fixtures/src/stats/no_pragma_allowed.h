// sdslint: allow(hdr-pragma-once)
int LegacyGuardStyleHeader();
