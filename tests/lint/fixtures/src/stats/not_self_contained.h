#pragma once

std::vector<int> NeedsVectorHeader();
