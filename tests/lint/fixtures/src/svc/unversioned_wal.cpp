// Seeded violation: a svc-layer file frames WAL records but never
// references the payload version pin, so a recovery scan could misparse
// frames written by a different release (det-wal-versioned).
#include <string>

namespace sds::svc {
class WalWriter {
 public:
  static std::string EncodeFrame(const std::string& body) { return body; }
};
}  // namespace sds::svc
