// Clean: the same framing shape with the payload version pin written into
// the byte stream, as svc/wal.cpp does for real frames. The alias
// kWalPayloadVersion counts as a pin reference — svc/wal.h defines it as
// obs::kSnapshotVersion.
#include <string>

namespace sds::svc {
inline constexpr unsigned kWalPayloadVersion = 1;

class WalWriter {
 public:
  static std::string EncodeFrame(const std::string& body) {
    return std::string(1, static_cast<char>(kWalPayloadVersion)) + body;
  }
};
}  // namespace sds::svc
