// The allow() escape hatch silences det-wal-versioned — e.g. for a replay
// shim that copies already-framed bytes whose versioned payload was written
// by another translation unit.
#include <string>

namespace sds::svc {
class WalReader {  // sdslint: allow(det-wal-versioned)
 public:
  static std::string PassThrough(const std::string& frame) { return frame; }
};
}  // namespace sds::svc
