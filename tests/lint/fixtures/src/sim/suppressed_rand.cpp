#include <cstdlib>

// sdslint: allow(det-rand)
int CommentLineForm() { return rand(); }

int TrailingForm() { return rand(); }  // sdslint: allow(det-rand)

// A comment that merely *mentions* rand() must not trip the lint.
int Clean() { return 4; }
