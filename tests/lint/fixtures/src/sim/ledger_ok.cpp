// Clean: the hardware models recording into the attribution ledger from
// INSIDE the sim layer is exactly what det-attrib-ledger permits.
namespace sds::sim {
struct FakeLedger {
  void RecordTickStart();
  void RecordEviction(unsigned culprit, unsigned victim);
  void RecordBusOccupancy(unsigned owner, unsigned slots);
  void RecordBusStall(unsigned victim);
};
void Evict(FakeLedger& ledger, FakeLedger* attached) {
  ledger.RecordTickStart();
  ledger.RecordEviction(2, 1);
  attached->RecordBusOccupancy(1, 12);
  attached->RecordBusStall(1);
}
}  // namespace sds::sim
