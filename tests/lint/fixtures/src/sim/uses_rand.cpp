#include <cstdlib>
#include <random>

int AmbientNoise() {
  return rand();
}

void SeedGlobal() {
  srand(42);
}

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}
