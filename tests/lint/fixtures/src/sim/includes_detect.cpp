#include "detect/params.h"

int UsesHigherLayer() { return 1; }
