// Fixture-driven tests for the sdslint analyzer (tools/sdslint).
//
// The fixture tree (tests/lint/fixtures, baked in as SDSLINT_FIXTURE_DIR)
// mimics the repo layout with deliberately seeded violations; every expected
// diagnostic is pinned to an exact (file, line, rule-id) triple so a rule
// regression — missed violation OR new false positive — fails loudly. The
// suppressed_* fixtures prove the allow() escape hatch silences precisely
// its rule, and RepoTreeIsClean pins the acceptance guarantee that the real
// tree lints clean.
#include "sdslint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace sdslint {
namespace {

Result RunOnFixtures() {
  Options options;
  options.paths = {SDSLINT_FIXTURE_DIR};
  options.include_root = SDSLINT_FIXTURE_DIR;
  return Run(options);
}

// True when the diagnostic list holds exactly one entry for the given
// path-suffix/line, and it carries `rule`.
bool HasDiagnostic(const Result& r, const std::string& file_suffix, int line,
                   const std::string& rule) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.line == line && d.rule == rule &&
        d.file.size() >= file_suffix.size() &&
        d.file.compare(d.file.size() - file_suffix.size(),
                       file_suffix.size(), file_suffix) == 0) {
      return true;
    }
  }
  return false;
}

int CountForFile(const Result& r, const std::string& file_suffix) {
  int n = 0;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.file.size() >= file_suffix.size() &&
        d.file.compare(d.file.size() - file_suffix.size(),
                       file_suffix.size(), file_suffix) == 0) {
      ++n;
    }
  }
  return n;
}

TEST(SdslintFixtures, ExactDiagnosticSet) {
  const Result r = RunOnFixtures();
  const struct {
    const char* file;
    int line;
    const char* rule;
  } kExpected[] = {
      {"src/cluster/direct_migrate.cpp", 10, kRuleDetActuationIdempotent},
      {"src/cluster/direct_migrate.cpp", 11, kRuleDetActuationIdempotent},
      {"src/cluster/direct_migrate.cpp", 12, kRuleDetActuationIdempotent},
      {"src/cluster/includes_obs.cpp", 4, kRuleLayerDag},
      {"src/detect/includes_eval.h", 3, kRuleLayerDag},
      {"src/detect/includes_fault.cpp", 4, kRuleLayerDag},
      {"src/detect/mutates_ledger.cpp", 11, kRuleDetAttribLedger},
      {"src/detect/mutates_ledger.cpp", 12, kRuleDetAttribLedger},
      {"src/detect/mutates_ledger.cpp", 13, kRuleDetAttribLedger},
      {"src/detect/mutates_ledger.cpp", 14, kRuleDetAttribLedger},
      {"src/detect/unordered_iter.cpp", 12, kRuleDetUnorderedIter},
      {"src/eval/raw_handoff.cpp", 11, kRuleDetHandoffVersioned},
      {"src/eval/raw_handoff.cpp", 12, kRuleDetHandoffVersioned},
      {"src/obs/unversioned_snapshot.cpp", 8, kRuleDetSnapshotVersioned},
      {"src/pcm/wallclock.cpp", 5, kRuleDetClock},
      {"src/pcm/wallclock.cpp", 9, kRuleDetClock},
      {"src/pcm/wallclock.cpp", 13, kRuleDetPointerPrint},
      {"src/sim/includes_detect.cpp", 1, kRuleLayerDag},
      {"src/sim/uses_rand.cpp", 5, kRuleDetRand},
      {"src/sim/uses_rand.cpp", 9, kRuleDetRand},
      {"src/sim/uses_rand.cpp", 13, kRuleDetRand},
      {"src/stats/no_pragma.h", 3, kRuleHdrPragmaOnce},
      {"src/stats/not_self_contained.h", 3, kRuleHdrSelfContained},
      {"src/svc/unversioned_wal.cpp", 7, kRuleDetWalVersioned},
      {"src/vm/header_telemetry.h", 3, kRuleHdrTelemetryFwd},
  };
  for (const auto& e : kExpected) {
    EXPECT_TRUE(HasDiagnostic(r, e.file, e.line, e.rule))
        << "missing " << e.file << ":" << e.line << " [" << e.rule << "]";
  }
  // Exactly the seeded set: anything extra is a false positive.
  EXPECT_EQ(r.diagnostics.size(), std::size(kExpected));
}

TEST(SdslintFixtures, DiagnosticFormatIsFileLineRule) {
  const Result r = RunOnFixtures();
  ASSERT_FALSE(r.diagnostics.empty());
  const std::string text = FormatText(r.diagnostics.front());
  // file:line: [rule-id] message
  const std::size_t bracket = text.find(": [");
  ASSERT_NE(bracket, std::string::npos) << text;
  EXPECT_NE(text.find("] ", bracket), std::string::npos) << text;
  const std::size_t colon = text.rfind(':', bracket - 1);
  ASSERT_NE(colon, std::string::npos) << text;
  EXPECT_GT(std::stoi(text.substr(colon + 1, bracket - colon - 1)), 0);
}

TEST(SdslintFixtures, SuppressionCommentSilencesEachRule) {
  const Result r = RunOnFixtures();
  // Every suppressed_* / *_allowed fixture must produce zero diagnostics:
  // both the comment-line and trailing allow() forms.
  EXPECT_EQ(CountForFile(r, "src/sim/suppressed_rand.cpp"), 0);
  EXPECT_EQ(CountForFile(r, "src/detect/suppressed_iter.cpp"), 0);
  EXPECT_EQ(CountForFile(r, "src/detect/includes_eval_allowed.h"), 0);
  EXPECT_EQ(CountForFile(r, "src/stats/no_pragma_allowed.h"), 0);
  EXPECT_EQ(CountForFile(r, "src/cluster/suppressed_direct.cpp"), 0);
  EXPECT_EQ(CountForFile(r, "src/obs/suppressed_unversioned.cpp"), 0);
  EXPECT_EQ(CountForFile(r, "src/svc/suppressed_unversioned_wal.cpp"), 0);
  EXPECT_EQ(CountForFile(r, "src/detect/suppressed_ledger.cpp"), 0);
  EXPECT_EQ(CountForFile(r, "src/eval/suppressed_raw_handoff.cpp"), 0);
  // ...and each allow() comment must be reported as used, so stale escape
  // hatches are auditable via --list-suppressions.
  ASSERT_EQ(r.suppressions.size(), 10u);
  for (const Suppression& s : r.suppressions) {
    EXPECT_TRUE(s.used) << s.file << ":" << s.comment_line;
  }
}

TEST(SdslintFixtures, CleanFilesStayClean) {
  const Result r = RunOnFixtures();
  // std::map iteration and find() on an unordered container are fine.
  EXPECT_EQ(CountForFile(r, "src/common/clean.cpp"), 0);
  // Self-containment accepts headers satisfied transitively through the
  // project include graph.
  EXPECT_EQ(CountForFile(r, "src/stats/vec_provider.h"), 0);
  EXPECT_EQ(CountForFile(r, "src/stats/transitively_ok.h"), 0);
  // %d with a modulo expression must not be read as pointer printing, and
  // only the two clock reads + one %p fire in wallclock.cpp.
  EXPECT_EQ(CountForFile(r, "src/pcm/wallclock.cpp"), 3);
  // Snapshot serialization that does reference the version constant is
  // clean — the rule keys on the token, not on where it appears.
  EXPECT_EQ(CountForFile(r, "src/obs/versioned_snapshot.cpp"), 0);
  // Same for WAL framing that references the payload version pin.
  EXPECT_EQ(CountForFile(r, "src/svc/versioned_wal.cpp"), 0);
  // Detector state moved through the versioned handoff envelope is the
  // sanctioned migration path — det-handoff-versioned keys on the raw
  // SaveState/RestoreState verbs only.
  EXPECT_EQ(CountForFile(r, "src/eval/enveloped_handoff.cpp"), 0);
  // The sim layer recording into the attribution ledger is the sanctioned
  // mutation path — det-attrib-ledger only fires OUTSIDE sim.
  EXPECT_EQ(CountForFile(r, "src/sim/ledger_ok.cpp"), 0);
}

TEST(SdslintFixtures, JsonOutputIsWellFormedAndComplete) {
  const Result r = RunOnFixtures();
  const std::string json = ToJson(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"files_scanned\":"), std::string::npos);
  // Every rule that fired appears in the JSON stream.
  for (const char* rule :
       {kRuleLayerDag, kRuleDetRand, kRuleDetClock, kRuleDetPointerPrint,
        kRuleDetUnorderedIter, kRuleDetActuationIdempotent,
        kRuleDetAttribLedger,
        kRuleDetSnapshotVersioned, kRuleDetWalVersioned,
        kRuleDetHandoffVersioned, kRuleHdrPragmaOnce,
        kRuleHdrSelfContained, kRuleHdrTelemetryFwd}) {
    EXPECT_NE(json.find(std::string("\"rule\":\"") + rule + "\""),
              std::string::npos)
        << rule;
  }
}

TEST(SdslintLayers, RankTableMatchesDesignDoc) {
  EXPECT_EQ(LayerRank("common"), 0);
  EXPECT_EQ(LayerRank("stats"), LayerRank("signal"));
  EXPECT_LT(LayerRank("sim"), LayerRank("vm"));
  EXPECT_LT(LayerRank("vm"), LayerRank("pcm"));
  EXPECT_LT(LayerRank("pcm"), LayerRank("detect"));
  EXPECT_EQ(LayerRank("detect"), LayerRank("attacks"));
  EXPECT_EQ(LayerRank("detect"), LayerRank("workloads"));
  EXPECT_LT(LayerRank("detect"), LayerRank("cluster"));
  EXPECT_EQ(LayerRank("obs"), LayerRank("cluster"));
  EXPECT_LT(LayerRank("cluster"), LayerRank("svc"));
  EXPECT_LT(LayerRank("svc"), LayerRank("eval"));
  EXPECT_LT(LayerRank("eval"), LayerRank("tests"));
  EXPECT_EQ(LayerRank("no-such-layer"), -1);

  EXPECT_TRUE(IsDeterministicLayer("sim"));
  EXPECT_TRUE(IsDeterministicLayer("detect"));
  EXPECT_TRUE(IsDeterministicLayer("cluster"));
  EXPECT_TRUE(IsDeterministicLayer("obs"));
  EXPECT_TRUE(IsDeterministicLayer("svc"));
  EXPECT_FALSE(IsDeterministicLayer("telemetry"));
  EXPECT_FALSE(IsDeterministicLayer("eval"));
  EXPECT_FALSE(IsDeterministicLayer("tests"));

  EXPECT_EQ(LayerOfPath("src/sim/cache.cpp"), "sim");
  EXPECT_EQ(LayerOfPath("tests/lint/fixtures/src/sim/x.cpp"), "sim");
  EXPECT_EQ(LayerOfPath("bench/common/bench_common.h"), "bench");
  EXPECT_EQ(LayerOfPath("README.md"), "");
}

// Pins the acceptance guarantee: the real tree lints clean. Runs the full
// rule set over the repo exactly like `make lint` / CI do (the fixture tree
// is skipped via the same default ignore the CLI uses).
TEST(SdslintRepo, RepoTreeIsClean) {
  const std::filesystem::path root = SDSLINT_REPO_ROOT;
  ASSERT_TRUE(std::filesystem::is_directory(root / "src"));
  Options options;
  for (const char* tree : {"src", "tests", "bench", "tools", "examples"}) {
    options.paths.push_back((root / tree).string());
  }
  options.include_root = root.string();
  options.ignores = {"build/", "tests/lint/fixtures"};
  const Result r = ::sdslint::Run(options);
  for (const Diagnostic& d : r.diagnostics) {
    ADD_FAILURE() << FormatText(d);
  }
  EXPECT_GT(r.files_scanned, 150);
}

}  // namespace
}  // namespace sdslint
