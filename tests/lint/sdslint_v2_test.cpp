// Tests for the multi-pass analyzer: cross-TU call graph linkage,
// interprocedural determinism taint, the concurrency rule family, the
// summary cache, the baseline filter, SARIF/stats output, and --fix.
//
// The seeded tree lives in tests/lint/fixtures2 (data, never compiled).
// Scan sets are chosen per test so each pass is exercised in isolation; the
// full-tree pin at the end freezes the exact (file, line, rule) set.
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sdslint/baseline.h"
#include "sdslint/lint.h"

namespace sdslint {
namespace {

namespace fs = std::filesystem;

std::string Fix2(const std::string& sub) {
  return std::string(SDSLINT_FIXTURE2_DIR) + (sub.empty() ? "" : "/" + sub);
}

Result RunOn(const std::vector<std::string>& paths,
             const std::string& include_root) {
  Options options;
  options.paths = paths;
  options.include_root = include_root;
  return Run(options);
}

using Triple = std::tuple<std::string, int, std::string>;  // file, line, rule

std::set<Triple> Triples(const Result& r, const std::string& root) {
  std::set<Triple> out;
  for (const Diagnostic& d : r.diagnostics) {
    out.insert({fs::relative(d.file, root).generic_string(), d.line, d.rule});
  }
  return out;
}

// Copies the fixture subtree into a fresh temp dir (for tests that mutate
// files: cache invalidation, --fix).
std::string CopyTree(const std::string& from, const std::string& tag) {
  const fs::path to = fs::path(::testing::TempDir()) / ("sdslint_" + tag);
  fs::remove_all(to);
  fs::create_directories(to);
  fs::copy(from, to, fs::copy_options::recursive);
  return to.generic_string();
}

// ---------------------------------------------------------------------------
// Interprocedural determinism taint
// ---------------------------------------------------------------------------

// The tentpole demonstration: detect/planner.cpp contains no sink token of
// its own — the violation is reachable only through two intermediate calls
// in headers of another layer. The taint pass reports it at the call site
// with the full chain down to the sink.
TEST(SdslintTaint, CrossFileChainThroughTwoIntermediateCalls) {
  const Result r = RunOn({Fix2("src/detect")}, Fix2(""));
  ASSERT_EQ(r.diagnostics.size(), 1u);
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(fs::path(d.file).filename(), "planner.cpp");
  EXPECT_EQ(d.line, 16);
  EXPECT_EQ(d.rule, kRuleDetTaint);
  // Full chain: caller-side callee -> intermediate -> sink token with the
  // sink's own location.
  EXPECT_NE(d.message.find("sds::stats::SeededMixture"), std::string::npos);
  EXPECT_NE(d.message.find("sds::stats::NoiseFloor"), std::string::npos);
  EXPECT_NE(d.message.find("random_device [det-rand]"), std::string::npos);
  EXPECT_NE(d.message.find("noise_floor.h:11"), std::string::npos);
}

// The same scan set with include resolution broken: the per-file token rules
// (the scanner this pass replaces as the only line of defence) find NOTHING
// in planner.cpp — proof the violation is invisible without the cross-TU
// call graph.
TEST(SdslintTaint, TokenScannerAloneMissesTheViolation) {
  const Result r =
      RunOn({Fix2("src/detect")}, Fix2("no/such/include/root"));
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(r.files_scanned, 2);  // planner.h + planner.cpp were scanned
}

// Telemetry is the write-only observability plane: its wall-clock reads are
// charter, never taint. A deterministic caller into telemetry stays clean.
TEST(SdslintTaint, TelemetryCalleeSeedsNoTaint) {
  const Result r = RunOn({Fix2("src/vm")}, Fix2(""));
  EXPECT_TRUE(r.diagnostics.empty()) << FormatText(r.diagnostics.front());
}

// Unordered-ness declared in one file, iterated in another: the per-file
// rule sees neither half, the closure-aware pass joins them.
TEST(SdslintTaint, CrossFileUnorderedIterationDetected) {
  const Result r = RunOn({Fix2("src/sim")}, Fix2(""));
  ASSERT_EQ(r.diagnostics.size(), 1u);
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(fs::path(d.file).filename(), "registry_iter.cpp");
  EXPECT_EQ(d.line, 10);
  EXPECT_EQ(d.rule, kRuleDetUnorderedIter);
  EXPECT_NE(d.message.find("'live_table'"), std::string::npos);
  EXPECT_NE(d.message.find("registry.h"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency rule family
// ---------------------------------------------------------------------------

TEST(SdslintConc, GuardedShardOwnedAndLockOrder) {
  const Result r = RunOn({Fix2("src/obs")}, Fix2(""));
  const std::set<Triple> expected = {
      {"src/obs/confused_slot.h", 14, kRuleConcShardOwned},
      {"src/obs/guarded_cache.h", 20, kRuleConcGuardedBy},
      {"src/obs/ordered_locks.h", 22, kRuleConcLockOrder},
      {"src/obs/shard_state.h", 16, kRuleConcShardOwned},
  };
  EXPECT_EQ(Triples(r, Fix2("")), expected);
  // GuardedCache::Record (lock held) and ::PeekLocked (SDS_ASSERT_HELD) are
  // legal accesses — implied by the exact set above.
  EXPECT_EQ(r.diagnostics.size(), 4u);
}

// ---------------------------------------------------------------------------
// Full-tree pin
// ---------------------------------------------------------------------------

TEST(SdslintV2Fixtures, ExactDiagnosticSet) {
  const Result r = RunOn({Fix2("src")}, Fix2(""));
  const std::set<Triple> expected = {
      {"src/detect/planner.cpp", 16, kRuleDetTaint},
      {"src/obs/confused_slot.h", 14, kRuleConcShardOwned},
      {"src/obs/guarded_cache.h", 20, kRuleConcGuardedBy},
      {"src/obs/ordered_locks.h", 22, kRuleConcLockOrder},
      {"src/obs/shard_state.h", 16, kRuleConcShardOwned},
      {"src/sim/registry_iter.cpp", 10, kRuleDetUnorderedIter},
      {"src/stats/mixture.h", 10, kRuleDetTaint},
      {"src/stats/noise_floor.h", 11, kRuleDetRand},
  };
  EXPECT_EQ(Triples(r, Fix2("")), expected);
  EXPECT_EQ(r.diagnostics.size(), 8u);
}

TEST(SdslintV2Fixtures, StatsCountTheGraph) {
  const Result r = RunOn({Fix2("src")}, Fix2(""));
  EXPECT_GT(r.stats.functions, 0);
  EXPECT_GE(r.stats.call_edges, 3);       // planner->mixture->noise + vm->telemetry
  EXPECT_GE(r.stats.taint_seeds, 2);      // random_device + unordered iter
  EXPECT_GE(r.stats.tainted_functions, 3);  // NoiseFloor, SeededMixture, PlanThresholds
  ASSERT_TRUE(r.stats.rule_hits.count(kRuleDetTaint));
  EXPECT_EQ(r.stats.rule_hits.at(kRuleDetTaint), 2);
  const std::string json = StatsJson(r);
  EXPECT_NE(json.find("\"call_edges\":"), std::string::npos);
  EXPECT_NE(json.find("\"rule_hits\":{"), std::string::npos);
  EXPECT_NE(json.find("\"det-taint\":2"), std::string::npos);
}

TEST(SdslintV2Fixtures, SarifOutputIsWellFormed) {
  const Result r = RunOn({Fix2("src")}, Fix2(""));
  const std::string sarif = ToSarif(r, Fix2(""));
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"sdslint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\":\"det-taint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\":\"conc-lock-order\""), std::string::npos);
  // Root-relative forward-slash URIs for code scanning.
  EXPECT_NE(sarif.find("\"uri\":\"src/detect/planner.cpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":16"), std::string::npos);
  // One result per diagnostic.
  std::size_t results = 0, at = 0;
  while ((at = sarif.find("\"ruleId\":", at)) != std::string::npos) {
    ++results;
    ++at;
  }
  EXPECT_EQ(results, r.diagnostics.size());
}

// ---------------------------------------------------------------------------
// Summary cache
// ---------------------------------------------------------------------------

TEST(SdslintCache, WarmRunParsesNothingAndAgreesExactly) {
  const fs::path cache = fs::path(::testing::TempDir()) / "sdslint_cache_warm";
  fs::remove_all(cache);
  Options options;
  options.paths = {Fix2("src")};
  options.include_root = Fix2("");
  options.cache_dir = cache.generic_string();

  const Result cold = ::sdslint::Run(options);
  EXPECT_EQ(cold.stats.cache_hits, 0);
  EXPECT_GT(cold.stats.parsed, 0);

  const Result warm = ::sdslint::Run(options);
  EXPECT_EQ(warm.stats.parsed, 0);
  EXPECT_EQ(warm.stats.cache_hits, cold.stats.parsed);

  // The cached summaries must reproduce every diagnostic bit-for-bit.
  ASSERT_EQ(warm.diagnostics.size(), cold.diagnostics.size());
  for (std::size_t i = 0; i < cold.diagnostics.size(); ++i) {
    EXPECT_EQ(warm.diagnostics[i].file, cold.diagnostics[i].file);
    EXPECT_EQ(warm.diagnostics[i].line, cold.diagnostics[i].line);
    EXPECT_EQ(warm.diagnostics[i].rule, cold.diagnostics[i].rule);
    EXPECT_EQ(warm.diagnostics[i].message, cold.diagnostics[i].message);
  }
  EXPECT_EQ(warm.stats.call_edges, cold.stats.call_edges);
  EXPECT_EQ(warm.stats.tainted_functions, cold.stats.tainted_functions);
}

TEST(SdslintCache, ContentChangeInvalidatesOnlyThatFile) {
  const std::string tree = CopyTree(Fix2(""), "cache_inval");
  const fs::path cache = fs::path(::testing::TempDir()) / "sdslint_cache_inv";
  fs::remove_all(cache);
  Options options;
  options.paths = {tree + "/src"};
  options.include_root = tree;
  options.cache_dir = cache.generic_string();

  const Result cold = ::sdslint::Run(options);
  const int total = cold.stats.parsed;
  ASSERT_GT(total, 1);

  // Append a comment: content hash changes, diagnostics don't.
  {
    std::ofstream out(tree + "/src/vm/ticker.cpp", std::ios::app);
    out << "// trailing comment\n";
  }
  const Result touched = ::sdslint::Run(options);
  EXPECT_EQ(touched.stats.parsed, 1);
  EXPECT_EQ(touched.stats.cache_hits, total - 1);
  EXPECT_EQ(touched.diagnostics.size(), cold.diagnostics.size());
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(SdslintBaseline, SuppressesAcceptedFindingsAndFlagsStaleEntries) {
  const fs::path file = fs::path(::testing::TempDir()) / "sdslint_baseline";
  const Result live = RunOn({Fix2("src")}, Fix2(""));
  ASSERT_EQ(live.diagnostics.size(), 8u);
  ASSERT_TRUE(WriteBaseline(file.generic_string(), live, Fix2("")));

  Options options;
  options.paths = {Fix2("src")};
  options.include_root = Fix2("");
  options.baseline_path = file.generic_string();
  const Result filtered = ::sdslint::Run(options);
  EXPECT_TRUE(filtered.diagnostics.empty());
  EXPECT_EQ(filtered.baselined.size(), 8u);
  EXPECT_TRUE(filtered.stale_baseline_entries.empty());

  // An entry whose finding no longer fires is reported as stale.
  {
    std::ofstream out(file, std::ios::app);
    out << "00000000deadbeef det-rand src/gone.cpp:1 fixed long ago\n";
  }
  const Result with_stale = ::sdslint::Run(options);
  EXPECT_EQ(with_stale.baselined.size(), 8u);
  ASSERT_EQ(with_stale.stale_baseline_entries.size(), 1u);
  EXPECT_NE(with_stale.stale_baseline_entries[0].find("gone.cpp"),
            std::string::npos);
}

TEST(SdslintBaseline, FingerprintIsStableAcrossLineDrift) {
  Diagnostic a{Fix2("src/stats/noise_floor.h"), 11, "det-rand",
               "random_device in deterministic layer stats: why"};
  Diagnostic b = a;
  b.line = 42;  // unrelated edit pushed the finding down the file
  b.message = "random_device in deterministic layer stats: why";
  EXPECT_EQ(BaselineFingerprint(a, Fix2("")), BaselineFingerprint(b, Fix2("")));
  Diagnostic c = a;
  c.rule = "det-clock";
  EXPECT_NE(BaselineFingerprint(a, Fix2("")), BaselineFingerprint(c, Fix2("")));
}

// ---------------------------------------------------------------------------
// --fix
// ---------------------------------------------------------------------------

TEST(SdslintFix, InsertsPragmaAndIncludesThenConverges) {
  const std::string tree = CopyTree(Fix2("fix"), "fixpass");
  Options options;
  options.paths = {tree + "/src"};
  options.include_root = tree;

  const Result before = ::sdslint::Run(options);
  std::set<std::string> rules;
  for (const Diagnostic& d : before.diagnostics) rules.insert(d.rule);
  EXPECT_TRUE(rules.count(kRuleHdrPragmaOnce));
  EXPECT_TRUE(rules.count(kRuleHdrSelfContained));

  std::vector<std::string> fixed_files;
  EXPECT_EQ(ApplyFixes(options, &fixed_files), 1);
  ASSERT_EQ(fixed_files.size(), 1u);
  EXPECT_EQ(fs::path(fixed_files[0]).filename(), "broken.h");

  // The fixed header lints clean and the fixer has nothing left to do.
  const Result after = ::sdslint::Run(options);
  EXPECT_TRUE(after.diagnostics.empty())
      << FormatText(after.diagnostics.front());
  EXPECT_EQ(ApplyFixes(options, nullptr), 0);

  // Structure: #pragma once above the (sorted, deduped) include block.
  std::ifstream in(fixed_files[0]);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::size_t pragma_at = text.find("#pragma once");
  ASSERT_NE(pragma_at, std::string::npos);
  const std::size_t cstdint_at = text.find("#include <cstdint>");
  const std::size_t string_at = text.find("#include <string>");
  const std::size_t vector_at = text.find("#include <vector>");
  ASSERT_NE(cstdint_at, std::string::npos);
  ASSERT_NE(string_at, std::string::npos);
  ASSERT_NE(vector_at, std::string::npos);
  EXPECT_LT(pragma_at, cstdint_at);
  EXPECT_LT(cstdint_at, string_at);
  EXPECT_LT(string_at, vector_at);
}

}  // namespace
}  // namespace sdslint
