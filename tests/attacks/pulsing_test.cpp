#include "attacks/pulsing_workload.h"

#include <memory>

#include <gtest/gtest.h>

#include "attacks/bus_lock_attacker.h"

namespace sds::attacks {
namespace {

class TickCounter final : public vm::Workload {
 public:
  void Bind(LineAddr, Rng) override {}
  void BeginTick(Tick) override {
    ++ticks_;
    left_ = 1;
  }
  bool NextOp(sim::MemOp& op) override {
    if (left_ == 0) return false;
    --left_;
    op = sim::MemOp{};
    return true;
  }
  void OnOutcome(const sim::MemOp&, sim::AccessOutcome) override {
    ++outcomes_;
  }
  std::uint64_t work_completed() const override { return outcomes_; }
  std::string_view name() const override { return "counter"; }

  int ticks_ = 0;
  int left_ = 0;
  std::uint64_t outcomes_ = 0;
};

TEST(PulsingWorkloadTest, DutyCycleComputed) {
  PulsingWorkload p(std::make_unique<TickCounter>(), 30, 70);
  EXPECT_DOUBLE_EQ(p.duty_cycle(), 0.3);
  PulsingWorkload full(std::make_unique<TickCounter>(), 10, 0);
  EXPECT_DOUBLE_EQ(full.duty_cycle(), 1.0);
}

TEST(PulsingWorkloadTest, RunsOnlyDuringOnWindow) {
  auto inner = std::make_unique<TickCounter>();
  auto* raw = inner.get();
  PulsingWorkload p(std::move(inner), 3, 2);
  p.Bind(0, Rng(1));
  sim::MemOp op;
  for (Tick t = 0; t < 10; ++t) {
    p.BeginTick(t);
    // Cycle is 5 ticks: positions 0,1,2 active; 3,4 idle.
    EXPECT_EQ(p.active(), t % 5 < 3) << t;
    while (p.NextOp(op)) p.OnOutcome(op, sim::AccessOutcome::kHit);
  }
  EXPECT_EQ(raw->ticks_, 6);
  EXPECT_EQ(raw->outcomes_, 6u);
}

TEST(PulsingWorkloadTest, ZeroOffIsAlwaysOn) {
  auto inner = std::make_unique<TickCounter>();
  auto* raw = inner.get();
  PulsingWorkload p(std::move(inner), 4, 0);
  p.Bind(0, Rng(2));
  for (Tick t = 0; t < 20; ++t) {
    p.BeginTick(t);
    EXPECT_TRUE(p.active());
  }
  EXPECT_EQ(raw->ticks_, 20);
}

TEST(PulsingWorkloadTest, PhaseShiftsTheWindow) {
  PulsingWorkload p(std::make_unique<TickCounter>(), 2, 2, /*phase=*/1);
  p.Bind(0, Rng(3));
  p.BeginTick(0);
  // Position of tick 0 with phase 1 is (0-1) mod 4 = 3: idle.
  EXPECT_FALSE(p.active());
  p.BeginTick(1);
  EXPECT_TRUE(p.active());
  p.BeginTick(2);
  EXPECT_TRUE(p.active());
  p.BeginTick(3);
  EXPECT_FALSE(p.active());
}

TEST(PulsingWorkloadTest, WrapsRealAttacker) {
  BusLockConfig cfg;
  cfg.atomics_per_tick = 5;
  PulsingWorkload p(std::make_unique<BusLockAttacker>(cfg), 1, 1);
  p.Bind(0, Rng(4));
  sim::MemOp op;
  std::uint64_t ops = 0;
  for (Tick t = 0; t < 10; ++t) {
    p.BeginTick(t);
    while (p.NextOp(op)) {
      EXPECT_TRUE(op.atomic);
      p.OnOutcome(op, sim::AccessOutcome::kHit);
      ++ops;
    }
  }
  EXPECT_EQ(ops, 25u);  // 5 active ticks x 5 atomics
  EXPECT_EQ(p.work_completed(), 25u);
}

}  // namespace
}  // namespace sds::attacks
