#include "attacks/bus_lock_attacker.h"

#include <memory>

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "vm/hypervisor.h"

namespace sds::attacks {
namespace {

TEST(BusLockAttackerTest, PlansAtomicOps) {
  BusLockConfig cfg;
  cfg.atomics_per_tick = 10;
  cfg.buffer_lines = 4;
  BusLockAttacker a(cfg);
  a.Bind(1000, Rng(1));
  a.BeginTick(0);
  sim::MemOp op;
  int count = 0;
  while (a.NextOp(op)) {
    EXPECT_TRUE(op.atomic);
    EXPECT_GE(op.addr, 1000u);
    EXPECT_LT(op.addr, 1004u);
    a.OnOutcome(op, sim::AccessOutcome::kHit);
    ++count;
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(a.locks_issued(), 10u);
}

TEST(BusLockAttackerTest, StalledLocksNotCounted) {
  BusLockConfig cfg;
  cfg.atomics_per_tick = 5;
  BusLockAttacker a(cfg);
  a.Bind(0, Rng(2));
  a.BeginTick(0);
  sim::MemOp op;
  while (a.NextOp(op)) a.OnOutcome(op, sim::AccessOutcome::kStalled);
  EXPECT_EQ(a.locks_issued(), 0u);
}

TEST(BusLockAttackerTest, BudgetResetsPerTick) {
  BusLockConfig cfg;
  cfg.atomics_per_tick = 3;
  BusLockAttacker a(cfg);
  a.Bind(0, Rng(3));
  for (Tick t = 0; t < 4; ++t) {
    a.BeginTick(t);
    sim::MemOp op;
    int n = 0;
    while (a.NextOp(op)) {
      a.OnOutcome(op, sim::AccessOutcome::kHit);
      ++n;
    }
    EXPECT_EQ(n, 3);
  }
  EXPECT_EQ(a.work_completed(), 12u);
}

TEST(BusLockAttackerTest, StarvesVictimOnSharedBus) {
  // End to end at the hypervisor level: victim throughput collapses once
  // the attacker floods the bus with lock windows.
  sim::MachineConfig mc;
  mc.cache.sets = 256;
  mc.cache.ways = 8;
  mc.bus.slots_per_tick = 2000;
  sim::Machine machine(mc);
  vm::HypervisorConfig hc;
  vm::Hypervisor hv(machine, hc, Rng(4));

  // A simple victim issuing 200 normal accesses per tick over a hot region.
  class Victim final : public vm::Workload {
   public:
    void Bind(LineAddr base, Rng) override { base_ = base; }
    void BeginTick(Tick) override { left_ = 200; }
    bool NextOp(sim::MemOp& op) override {
      if (left_ == 0) return false;
      --left_;
      op.atomic = false;
      op.addr = base_ + (cursor_++ % 128);
      return true;
    }
    void OnOutcome(const sim::MemOp&, sim::AccessOutcome) override {}
    std::uint64_t work_completed() const override { return 0; }
    std::string_view name() const override { return "victim"; }

   private:
    LineAddr base_ = 0;
    int left_ = 0;
    std::uint64_t cursor_ = 0;
  };

  const OwnerId victim = hv.CreateVm("victim", std::make_unique<Victim>());
  // Baseline throughput without the attack.
  for (int t = 0; t < 50; ++t) hv.RunTick();
  const auto baseline = machine.counters(victim).llc_accesses;
  EXPECT_EQ(baseline, 200u * 50u);

  BusLockConfig cfg;
  cfg.atomics_per_tick = 100;  // 100 * 40 slots = 4000 demanded of 2000
  hv.CreateVm("attacker", std::make_unique<BusLockAttacker>(cfg));
  for (int t = 0; t < 50; ++t) hv.RunTick();
  const auto under_attack = machine.counters(victim).llc_accesses - baseline;
  // AccessNum must drop substantially (Observation 1).
  EXPECT_LT(under_attack, 200u * 50u * 7 / 10);
}

}  // namespace
}  // namespace sds::attacks
