#include "attacks/llc_cleansing_attacker.h"

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "vm/hypervisor.h"

namespace sds::attacks {
namespace {

LlcCleansingConfig SmallConfig() {
  LlcCleansingConfig cfg;
  cfg.cache_sets = 64;
  cfg.cache_ways = 4;
  cfg.ops_per_tick = 512;
  cfg.contention_threshold = 1;
  cfg.reprobe_interval_ticks = 1000;
  return cfg;
}

TEST(LlcCleansingAttackerTest, StartsInRecon) {
  LlcCleansingAttacker a(SmallConfig());
  a.Bind(1 << 20, Rng(1));
  EXPECT_TRUE(a.in_recon());
}

TEST(LlcCleansingAttackerTest, ReconCoversEverySetTwice) {
  LlcCleansingAttacker a(SmallConfig());
  a.Bind(1 << 20, Rng(2));
  std::map<std::uint32_t, int> per_set;
  sim::MemOp op;
  Tick t = 0;
  // Recon is 2 passes over sets*ways = 512 ops: exactly one tick at 512/tick.
  while (a.in_recon() && t < 10) {
    a.BeginTick(t++);
    while (a.in_recon() && a.NextOp(op)) {
      ++per_set[static_cast<std::uint32_t>(op.addr) & 63u];
      a.OnOutcome(op, sim::AccessOutcome::kHit);
    }
  }
  EXPECT_FALSE(a.in_recon());
  EXPECT_EQ(per_set.size(), 64u);
  for (const auto& [set, count] : per_set) {
    EXPECT_EQ(count, 8) << "set " << set;  // 4 ways x 2 passes
  }
}

TEST(LlcCleansingAttackerTest, NoContentionFallsBackToAllSets) {
  LlcCleansingAttacker a(SmallConfig());
  a.Bind(1 << 20, Rng(3));
  sim::MemOp op;
  Tick t = 0;
  while (a.in_recon() && t < 10) {
    a.BeginTick(t++);
    // All hits: nobody evicted our lines, no set is contended.
    while (a.in_recon() && a.NextOp(op)) {
      a.OnOutcome(op, sim::AccessOutcome::kHit);
    }
  }
  EXPECT_EQ(a.contended_sets().size(), 64u);
  EXPECT_EQ(a.recon_rounds(), 1u);
}

TEST(LlcCleansingAttackerTest, ProbeMissesMarkContendedSets) {
  LlcCleansingAttacker a(SmallConfig());
  a.Bind(1 << 20, Rng(4));
  sim::MemOp op;
  Tick t = 0;
  const std::uint32_t total_ops = 64 * 4;  // one pass
  std::uint32_t seen = 0;
  while (a.in_recon() && t < 10) {
    a.BeginTick(t++);
    while (a.in_recon() && a.NextOp(op)) {
      const auto set = static_cast<std::uint32_t>(op.addr) & 63u;
      // First pass (prime): all misses (cold). Second pass: sets 5 and 9
      // miss (somebody displaced us), everything else hits.
      sim::AccessOutcome outcome;
      if (seen < total_ops) {
        outcome = sim::AccessOutcome::kMiss;
      } else {
        outcome = (set == 5 || set == 9) ? sim::AccessOutcome::kMiss
                                         : sim::AccessOutcome::kHit;
      }
      ++seen;
      a.OnOutcome(op, outcome);
    }
  }
  ASSERT_EQ(a.contended_sets().size(), 2u);
  EXPECT_EQ(a.contended_sets()[0], 5u);
  EXPECT_EQ(a.contended_sets()[1], 9u);
}

TEST(LlcCleansingAttackerTest, CleanseSweepsContendedSetsOnly) {
  LlcCleansingAttacker a(SmallConfig());
  a.Bind(1 << 20, Rng(5));
  sim::MemOp op;
  Tick t = 0;
  std::uint32_t seen = 0;
  const std::uint32_t total_ops = 64 * 4;
  while (a.in_recon() && t < 10) {
    a.BeginTick(t++);
    while (a.in_recon() && a.NextOp(op)) {
      const auto set = static_cast<std::uint32_t>(op.addr) & 63u;
      const bool probe_pass = seen >= total_ops;
      ++seen;
      a.OnOutcome(op, (probe_pass && set == 7) ? sim::AccessOutcome::kMiss
                                               : (probe_pass
                                                      ? sim::AccessOutcome::kHit
                                                      : sim::AccessOutcome::kMiss));
    }
  }
  ASSERT_FALSE(a.in_recon());
  // Everything the cleanser touches now must map to set 7.
  a.BeginTick(t++);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.NextOp(op));
    EXPECT_EQ(static_cast<std::uint32_t>(op.addr) & 63u, 7u);
    a.OnOutcome(op, sim::AccessOutcome::kMiss);
  }
  EXPECT_EQ(a.cleanse_ops(), 100u);
}

TEST(LlcCleansingAttackerTest, ReprobesAfterInterval) {
  LlcCleansingConfig cfg = SmallConfig();
  cfg.reprobe_interval_ticks = 3;
  LlcCleansingAttacker a(cfg);
  a.Bind(1 << 20, Rng(6));
  sim::MemOp op;
  Tick t = 0;
  while (a.in_recon() && t < 10) {
    a.BeginTick(t++);
    while (a.in_recon() && a.NextOp(op)) a.OnOutcome(op, sim::AccessOutcome::kHit);
  }
  EXPECT_EQ(a.recon_rounds(), 1u);
  // Cleanse for reprobe_interval ticks, then recon must restart.
  for (int i = 0; i < 3; ++i) {
    a.BeginTick(t++);
    while (a.NextOp(op) && !a.in_recon()) {
      a.OnOutcome(op, sim::AccessOutcome::kHit);
    }
  }
  a.BeginTick(t++);
  EXPECT_TRUE(a.in_recon());
}

TEST(LlcCleansingAttackerTest, RaisesVictimMissesEndToEnd) {
  // Full mechanism against the real cache: victim's hot set is resident and
  // hitting; once the cleanser runs, victim misses jump.
  sim::MachineConfig mc;
  mc.cache.sets = 64;
  mc.cache.ways = 4;
  mc.bus.slots_per_tick = 100000;
  sim::Machine machine(mc);
  vm::HypervisorConfig hc;
  vm::Hypervisor hv(machine, hc, Rng(7));

  class HotVictim final : public vm::Workload {
   public:
    void Bind(LineAddr base, Rng rng) override {
      base_ = base;
      rng_ = rng;
    }
    void BeginTick(Tick) override { left_ = 100; }
    bool NextOp(sim::MemOp& op) override {
      if (left_ == 0) return false;
      --left_;
      op.atomic = false;
      op.addr = base_ + rng_.UniformInt(128ull);  // 128-line hot set
      return true;
    }
    void OnOutcome(const sim::MemOp&, sim::AccessOutcome) override {}
    std::uint64_t work_completed() const override { return 0; }
    std::string_view name() const override { return "hot-victim"; }

   private:
    LineAddr base_ = 0;
    Rng rng_{0};
    int left_ = 0;
  };

  const OwnerId victim = hv.CreateVm("victim", std::make_unique<HotVictim>());
  for (int t = 0; t < 100; ++t) hv.RunTick();
  const auto warm_misses = machine.counters(victim).llc_misses;
  for (int t = 0; t < 100; ++t) hv.RunTick();
  const auto baseline_misses =
      machine.counters(victim).llc_misses - warm_misses;

  LlcCleansingConfig cfg;
  cfg.cache_sets = mc.cache.sets;
  cfg.cache_ways = mc.cache.ways;
  cfg.ops_per_tick = 512;
  hv.CreateVm("attacker", std::make_unique<LlcCleansingAttacker>(cfg));
  for (int t = 0; t < 100; ++t) hv.RunTick();
  const auto attacked_misses = machine.counters(victim).llc_misses -
                               warm_misses - baseline_misses;
  // MissNum must increase by a large factor (Observation 1).
  EXPECT_GT(attacked_misses, baseline_misses * 3 + 100);
}

TEST(LlcCleansingAttackerTest, RequiresSetAlignedBuffer) {
  LlcCleansingAttacker a(SmallConfig());
  EXPECT_DEATH(a.Bind(3, Rng(8)), "set-aligned");
}

}  // namespace
}  // namespace sds::attacks
