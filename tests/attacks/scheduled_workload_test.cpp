#include "attacks/scheduled_workload.h"

#include <memory>

#include <gtest/gtest.h>

namespace sds::attacks {
namespace {

class CountingWorkload final : public vm::Workload {
 public:
  void Bind(LineAddr base, Rng) override {
    base_ = base;
    bound_ = true;
  }
  void BeginTick(Tick now) override {
    ++ticks_;
    last_tick_ = now;
    left_ = 2;
  }
  bool NextOp(sim::MemOp& op) override {
    if (left_ == 0) return false;
    --left_;
    op.addr = base_;
    op.atomic = false;
    return true;
  }
  void OnOutcome(const sim::MemOp&, sim::AccessOutcome) override {
    ++outcomes_;
  }
  std::uint64_t work_completed() const override { return outcomes_; }
  std::string_view name() const override { return "counting"; }

  bool bound_ = false;
  int ticks_ = 0;
  Tick last_tick_ = -1;
  int left_ = 0;
  std::uint64_t outcomes_ = 0;

 private:
  LineAddr base_ = 0;
};

TEST(ScheduledWorkloadTest, ForwardsBind) {
  auto inner = std::make_unique<CountingWorkload>();
  auto* raw = inner.get();
  ScheduledWorkload s(std::move(inner), 5, -1);
  s.Bind(7, Rng(1));
  EXPECT_TRUE(raw->bound_);
}

TEST(ScheduledWorkloadTest, IdleBeforeStart) {
  auto inner = std::make_unique<CountingWorkload>();
  auto* raw = inner.get();
  ScheduledWorkload s(std::move(inner), 5, -1);
  s.Bind(0, Rng(2));
  sim::MemOp op;
  for (Tick t = 0; t < 5; ++t) {
    s.BeginTick(t);
    EXPECT_FALSE(s.active());
    EXPECT_FALSE(s.NextOp(op));
  }
  EXPECT_EQ(raw->ticks_, 0);
}

TEST(ScheduledWorkloadTest, ActiveInsideWindow) {
  auto inner = std::make_unique<CountingWorkload>();
  auto* raw = inner.get();
  ScheduledWorkload s(std::move(inner), 5, 8);
  s.Bind(0, Rng(3));
  sim::MemOp op;
  for (Tick t = 0; t < 12; ++t) {
    s.BeginTick(t);
    while (s.NextOp(op)) s.OnOutcome(op, sim::AccessOutcome::kHit);
  }
  EXPECT_EQ(raw->ticks_, 3);       // ticks 5, 6, 7
  EXPECT_EQ(raw->outcomes_, 6u);   // 2 ops per active tick
  EXPECT_EQ(s.work_completed(), 6u);
}

TEST(ScheduledWorkloadTest, NeverStopsWhenStopNegative) {
  auto inner = std::make_unique<CountingWorkload>();
  auto* raw = inner.get();
  ScheduledWorkload s(std::move(inner), 2, -1);
  s.Bind(0, Rng(4));
  for (Tick t = 0; t < 100; ++t) s.BeginTick(t);
  EXPECT_EQ(raw->ticks_, 98);
  EXPECT_TRUE(s.active());
}

TEST(ScheduledWorkloadTest, StartAtZeroImmediatelyActive) {
  ScheduledWorkload s(std::make_unique<CountingWorkload>(), 0, -1);
  s.Bind(0, Rng(5));
  s.BeginTick(0);
  EXPECT_TRUE(s.active());
}

TEST(ScheduledWorkloadTest, RejectsInvalidWindow) {
  EXPECT_DEATH(ScheduledWorkload(std::make_unique<CountingWorkload>(), 10, 5),
               "stop must come after start");
}

}  // namespace
}  // namespace sds::attacks
