#include "fault/fault_plan.h"

#include <gtest/gtest.h>

namespace sds::fault {
namespace {

TEST(FaultPlanTest, KindNamesAreStableIdentifiers) {
  // These names appear in metrics (`fault.injected.<kind>`), trace events
  // and BENCH_robustness JSON; renaming one breaks trend tracking.
  EXPECT_STREQ(FaultKindName(FaultKind::kDropSample), "drop_sample");
  EXPECT_STREQ(FaultKindName(FaultKind::kCoalesce), "coalesce");
  EXPECT_STREQ(FaultKindName(FaultKind::kOutage), "outage");
  EXPECT_STREQ(FaultKindName(FaultKind::kSamplerDeath), "sampler_death");
  EXPECT_STREQ(FaultKindName(FaultKind::kCounterReset), "counter_reset");
  EXPECT_STREQ(FaultKindName(FaultKind::kSaturation), "saturation");
  EXPECT_STREQ(FaultKindName(FaultKind::kCorruption), "corruption");
}

TEST(FaultPlanTest, DefaultPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_EQ(plan.rate(static_cast<FaultKind>(k)), 0.0);
  }
}

TEST(FaultPlanTest, SingleEnablesExactlyOneKind) {
  const FaultPlan plan = FaultPlan::Single(FaultKind::kOutage, 0.25, 77);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 77u);
  EXPECT_DOUBLE_EQ(plan.rate(FaultKind::kOutage), 0.25);
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (kind != FaultKind::kOutage) {
      EXPECT_EQ(plan.rate(kind), 0.0);
    }
  }
}

TEST(FaultPlanTest, ScheduledFaultsMakeThePlanEnabled) {
  FaultPlan plan;
  plan.scheduled.push_back({100, FaultKind::kSamplerDeath, 50});
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanTest, StatsTotalSumsAllKinds) {
  FaultStats stats;
  stats.injected[static_cast<std::size_t>(FaultKind::kDropSample)] = 3;
  stats.injected[static_cast<std::size_t>(FaultKind::kCorruption)] = 4;
  EXPECT_EQ(stats.injected_total(), 7u);
}

}  // namespace
}  // namespace sds::fault
