// HostFaultPlan (src/fault/host_plan.h): the host-plane fault catalog is
// plain data — inert by default, enabled by any rate or scheduled event.
#include "fault/host_plan.h"

#include <gtest/gtest.h>

#include <string>

namespace sds::fault {
namespace {

TEST(HostFaultPlanTest, DefaultPlanIsInert) {
  const HostFaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (std::size_t k = 0; k < kHostFaultKindCount; ++k) {
    EXPECT_EQ(plan.rate(static_cast<HostFaultKind>(k)), 0.0);
  }
  EXPECT_TRUE(plan.scheduled.empty());
}

TEST(HostFaultPlanTest, AnyRateEnables) {
  for (std::size_t k = 0; k < kHostFaultKindCount; ++k) {
    HostFaultPlan plan;
    plan.set_rate(static_cast<HostFaultKind>(k), 0.01);
    EXPECT_TRUE(plan.enabled()) << "kind " << k;
  }
}

TEST(HostFaultPlanTest, ScheduledFaultEnables) {
  HostFaultPlan plan;
  ScheduledHostFault fault;
  fault.tick = 100;
  fault.host = 0;
  fault.kind = HostFaultKind::kCrash;
  plan.scheduled.push_back(fault);
  EXPECT_TRUE(plan.enabled());
}

TEST(HostFaultPlanTest, SingleSetsExactlyOneRate) {
  const HostFaultPlan plan =
      HostFaultPlan::Single(HostFaultKind::kDegrade, 0.25, 99);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_EQ(plan.rate(HostFaultKind::kDegrade), 0.25);
  EXPECT_EQ(plan.rate(HostFaultKind::kCrash), 0.0);
  EXPECT_EQ(plan.rate(HostFaultKind::kFlakyRecovery), 0.0);
  EXPECT_EQ(plan.rate(HostFaultKind::kPermanentDeath), 0.0);
}

TEST(HostFaultPlanTest, KindNamesAreStable) {
  EXPECT_STREQ(HostFaultKindName(HostFaultKind::kCrash), "host-crash");
  EXPECT_STREQ(HostFaultKindName(HostFaultKind::kDegrade), "host-degrade");
  EXPECT_STREQ(HostFaultKindName(HostFaultKind::kFlakyRecovery),
               "flaky-recovery");
  EXPECT_STREQ(HostFaultKindName(HostFaultKind::kPermanentDeath),
               "permanent-death");
}

TEST(HostFaultStatsTest, InjectedTotalSumsAllKinds) {
  HostFaultStats stats;
  stats.injected[0] = 2;
  stats.injected[1] = 3;
  stats.injected[3] = 5;
  EXPECT_EQ(stats.injected_total(), 10u);
}

}  // namespace
}  // namespace sds::fault
