#include "fault/fault_injector.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "eval/scenario.h"
#include "workloads/catalog.h"

namespace sds::fault {
namespace {

struct Rig {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<vm::Hypervisor> hypervisor;
  OwnerId victim;

  Rig() {
    sim::MachineConfig mc;
    machine = std::make_unique<sim::Machine>(mc);
    vm::HypervisorConfig hc;
    hypervisor = std::make_unique<vm::Hypervisor>(*machine, hc, Rng(3));
    victim = hypervisor->CreateVm("victim", workloads::MakeApp("bayes"));
  }
};

// Runs `ticks` hypervisor ticks reading the injector each tick; returns the
// per-tick outcomes (nullopt = missing).
std::vector<std::optional<pcm::PcmSample>> Drive(Rig& rig,
                                                 FaultInjector& injector,
                                                 int ticks) {
  std::vector<std::optional<pcm::PcmSample>> out;
  out.reserve(static_cast<std::size_t>(ticks));
  for (int t = 0; t < ticks; ++t) {
    rig.hypervisor->RunTick();
    out.push_back(injector.Next());
  }
  return out;
}

TEST(FaultInjectorTest, DisabledPlanIsBitTransparent) {
  // Twin rigs with identical seeds walk identical trajectories; the injector
  // with an inert plan must reproduce the plain sampler's stream exactly.
  Rig plain_rig;
  Rig faulted_rig;
  pcm::PcmSampler plain(*plain_rig.hypervisor, plain_rig.victim);
  FaultInjector injector(*faulted_rig.hypervisor, faulted_rig.victim,
                         FaultPlan{});
  plain.Start();
  injector.Start();
  for (int t = 0; t < 50; ++t) {
    plain_rig.hypervisor->RunTick();
    faulted_rig.hypervisor->RunTick();
    const pcm::PcmSample want = plain.Sample();
    const auto got = injector.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tick, want.tick);
    EXPECT_EQ(got->access_num, want.access_num);
    EXPECT_EQ(got->miss_num, want.miss_num);
  }
  EXPECT_EQ(injector.stats().injected_total(), 0u);
  EXPECT_EQ(injector.stats().missing_ticks, 0u);
  EXPECT_EQ(injector.stats().tampered_samples, 0u);
}

TEST(FaultInjectorTest, ScheduledDropIsAOneTickHole) {
  Rig rig;
  FaultPlan plan;
  plan.scheduled.push_back({10, FaultKind::kDropSample, 0});
  FaultInjector injector(*rig.hypervisor, rig.victim, plan);
  injector.Start();
  const auto stream = Drive(rig, injector, 12);
  EXPECT_FALSE(stream[9].has_value());  // tick 10
  for (int t = 0; t < 12; ++t) {
    if (t != 9) {
      EXPECT_TRUE(stream[static_cast<std::size_t>(t)].has_value());
    }
  }
  // Drop consumes the interval's delta: the next sample is a normal
  // single-interval read, not a spanning one.
  EXPECT_EQ(injector.last_span(), 1);
  EXPECT_LT(stream[10]->access_num, 1500u);
  EXPECT_EQ(injector.stats().injected[static_cast<std::size_t>(
                FaultKind::kDropSample)],
            1u);
  EXPECT_EQ(injector.stats().missing_ticks, 1u);
}

TEST(FaultInjectorTest, ScheduledCoalesceFoldsIntoNextSample) {
  Rig rig;
  FaultPlan plan;
  plan.scheduled.push_back({10, FaultKind::kCoalesce, 0});
  FaultInjector injector(*rig.hypervisor, rig.victim, plan);
  injector.Start();
  const auto stream = Drive(rig, injector, 12);
  EXPECT_FALSE(stream[9].has_value());  // tick 10: read skipped
  ASSERT_TRUE(stream[10].has_value());  // tick 11: spanning delta
  EXPECT_EQ(injector.last_span(), 1);   // tick 12 was a normal read again
  // The tick-11 delta covered both intervals: clearly more than one
  // interval's worth of a ~400-600 ops/tick workload.
  EXPECT_GT(stream[10]->access_num, stream[8]->access_num * 3 / 2);
}

TEST(FaultInjectorTest, OutageWindowSelfRecoversWithSpanningSample) {
  Rig rig;
  FaultPlan plan;
  plan.scheduled.push_back({10, FaultKind::kOutage, 5});
  FaultInjector injector(*rig.hypervisor, rig.victim, plan);
  injector.Start();
  const auto stream = Drive(rig, injector, 20);
  for (int t = 10; t <= 14; ++t) {
    EXPECT_FALSE(stream[static_cast<std::size_t>(t - 1)].has_value())
        << "tick " << t;
  }
  // An outage is transient: the source still reports healthy (a watchdog
  // should not kill it) and recovery is automatic.
  EXPECT_TRUE(injector.healthy());
  ASSERT_TRUE(stream[14].has_value());  // tick 15: first post-outage read
  EXPECT_EQ(injector.stats().missing_ticks, 5u);
  ASSERT_TRUE(stream[15].has_value());
  EXPECT_LT(stream[15]->access_num, 1500u);
}

TEST(FaultInjectorTest, DeathDeniesRestartUntilWindowEnds) {
  Rig rig;
  FaultPlan plan;
  plan.scheduled.push_back({10, FaultKind::kSamplerDeath, 20});
  FaultInjector injector(*rig.hypervisor, rig.victim, plan);
  injector.Start();
  Drive(rig, injector, 10);  // through tick 10: death fired
  EXPECT_FALSE(injector.healthy());
  EXPECT_TRUE(injector.dead());
  EXPECT_FALSE(injector.TryRestart());  // tick 10 < dead_until_ 30
  Drive(rig, injector, 10);             // through tick 20, all missing
  EXPECT_FALSE(injector.TryRestart());
  EXPECT_EQ(injector.stats().restarts_denied, 2u);
  Drive(rig, injector, 10);  // through tick 30
  EXPECT_TRUE(injector.TryRestart());
  EXPECT_TRUE(injector.healthy());
  EXPECT_EQ(injector.stats().restarts, 1u);
  // The restart re-baselined the inner sampler: the first post-restart
  // sample covers one interval, not the 21-tick dead window.
  rig.hypervisor->RunTick();
  const auto s = injector.Next();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(injector.last_span(), 1);
  EXPECT_LT(s->access_num, 1500u);
}

TEST(FaultInjectorTest, CounterResetWrapsExactlyOneSample) {
  Rig rig;
  FaultPlan plan;
  plan.scheduled.push_back({10, FaultKind::kCounterReset, 0});
  FaultInjector injector(*rig.hypervisor, rig.victim, plan);
  injector.Start();
  const auto stream = Drive(rig, injector, 12);
  ASSERT_TRUE(stream[9].has_value());
  // Delta against a stale baseline wraps to the top of the 64-bit space —
  // physically impossible, and exactly what the sanity gate must catch.
  EXPECT_GT(stream[9]->access_num, std::uint64_t{1} << 60);
  ASSERT_TRUE(stream[10].has_value());
  EXPECT_LT(stream[10]->access_num, 1500u);
  EXPECT_EQ(injector.stats().tampered_samples, 1u);
}

TEST(FaultInjectorTest, SaturationClampsForTheWindow) {
  Rig rig;
  FaultPlan plan;
  plan.saturation_cap = 64;
  plan.scheduled.push_back({10, FaultKind::kSaturation, 5});
  FaultInjector injector(*rig.hypervisor, rig.victim, plan);
  injector.Start();
  const auto stream = Drive(rig, injector, 20);
  for (int t = 10; t <= 14; ++t) {
    const auto& s = stream[static_cast<std::size_t>(t - 1)];
    ASSERT_TRUE(s.has_value()) << "tick " << t;
    EXPECT_LE(s->access_num, 64u) << "tick " << t;
    EXPECT_LE(s->miss_num, 64u) << "tick " << t;
  }
  // Window over: deltas report truthfully again (~400-600 ops/tick).
  ASSERT_TRUE(stream[14].has_value());
  EXPECT_GT(stream[14]->access_num, 64u);
  EXPECT_EQ(injector.stats().tampered_samples, 5u);
}

TEST(FaultInjectorTest, CorruptionZeroesOrFlipsAHighBit) {
  Rig rig;
  FaultPlan plan;
  plan.scheduled.push_back({10, FaultKind::kCorruption, 0});
  FaultInjector injector(*rig.hypervisor, rig.victim, plan);
  injector.Start();
  const auto stream = Drive(rig, injector, 11);
  ASSERT_TRUE(stream[9].has_value());
  const bool zeroed =
      stream[9]->access_num == 0 && stream[9]->miss_num == 0;
  const bool high_bit = stream[9]->access_num >= (std::uint64_t{1} << 40);
  EXPECT_TRUE(zeroed || high_bit);
  EXPECT_EQ(injector.stats().tampered_samples, 1u);
}

TEST(FaultInjectorTest, StochasticScheduleIsDeterministic) {
  FaultPlan plan;
  plan.seed = 0xfeedull;
  plan.set_rate(FaultKind::kDropSample, 0.2);
  plan.set_rate(FaultKind::kCorruption, 0.1);
  plan.set_rate(FaultKind::kOutage, 0.01);

  auto run = [&plan]() {
    Rig rig;
    FaultInjector injector(*rig.hypervisor, rig.victim, plan);
    injector.Start();
    auto stream = Drive(rig, injector, 300);
    return std::make_pair(std::move(stream), injector.stats());
  };
  const auto [a, a_stats] = run();
  const auto [b, b_stats] = run();

  ASSERT_EQ(a.size(), b.size());
  std::uint64_t missing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].has_value(), b[i].has_value()) << "tick " << i + 1;
    if (!a[i].has_value()) {
      ++missing;
      continue;
    }
    EXPECT_EQ(a[i]->access_num, b[i]->access_num) << "tick " << i + 1;
    EXPECT_EQ(a[i]->miss_num, b[i]->miss_num) << "tick " << i + 1;
  }
  EXPECT_EQ(a_stats.injected, b_stats.injected);
  EXPECT_EQ(a_stats.missing_ticks, b_stats.missing_ticks);
  EXPECT_EQ(a_stats.missing_ticks, missing);
  // With these rates over 300 ticks, silence would mean the plan was
  // ignored.
  EXPECT_GT(a_stats.injected_total(), 20u);
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentSchedules) {
  auto missing_pattern = [](std::uint64_t seed) {
    Rig rig;
    FaultPlan plan = FaultPlan::Single(FaultKind::kDropSample, 0.2, seed);
    FaultInjector injector(*rig.hypervisor, rig.victim, plan);
    injector.Start();
    const auto stream = Drive(rig, injector, 200);
    std::vector<bool> missing;
    for (const auto& s : stream) missing.push_back(!s.has_value());
    return missing;
  };
  EXPECT_NE(missing_pattern(1), missing_pattern(2));
}

TEST(FaultInjectorTest, InvalidRateAborts) {
  Rig rig;
  FaultPlan plan;
  plan.set_rate(FaultKind::kDropSample, 1.5);
  EXPECT_DEATH(FaultInjector(*rig.hypervisor, rig.victim, plan),
               "probability");
}

}  // namespace
}  // namespace sds::fault
