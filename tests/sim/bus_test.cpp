#include "sim/bus.h"

#include <gtest/gtest.h>

#include "sim/attribution.h"

namespace sds::sim {
namespace {

BusConfig SmallBus() {
  BusConfig c;
  c.slots_per_tick = 100;
  c.access_slots = 1;
  c.miss_extra_slots = 3;
  c.atomic_lock_slots = 40;
  return c;
}

TEST(BusTest, BudgetRefillsEachTick) {
  MemoryBus bus(SmallBus());
  EXPECT_EQ(bus.slots_remaining(), 100u);
  EXPECT_TRUE(bus.TryConsume(1, 60));
  EXPECT_EQ(bus.slots_remaining(), 40u);
  bus.BeginTick();
  EXPECT_EQ(bus.slots_remaining(), 100u);
}

TEST(BusTest, ExhaustionRejectsWithoutConsuming) {
  MemoryBus bus(SmallBus());
  EXPECT_TRUE(bus.TryConsume(1, 99));
  EXPECT_FALSE(bus.TryConsume(1, 2));
  EXPECT_EQ(bus.slots_remaining(), 1u);
  EXPECT_TRUE(bus.TryConsume(1, 1));
  EXPECT_EQ(bus.slots_remaining(), 0u);
}

TEST(BusTest, AtomicLockConsumesLockWindow) {
  MemoryBus bus(SmallBus());
  EXPECT_TRUE(bus.TryAtomicLock(1));
  EXPECT_EQ(bus.slots_remaining(), 60u);
  EXPECT_EQ(bus.stats().atomic_locks, 1u);
}

TEST(BusTest, AtomicLocksStarveTheBus) {
  // The essence of the bus locking attack: a few atomics exhaust a budget
  // that would serve dozens of normal accesses.
  MemoryBus bus(SmallBus());
  int locks = 0;
  while (bus.TryAtomicLock(2)) ++locks;
  EXPECT_EQ(locks, 2);  // 2*40 = 80 <= 100 < 3*40
  int accesses = 0;
  while (bus.TryConsume(1, 1)) ++accesses;
  EXPECT_EQ(accesses, 20);
}

TEST(BusTest, StatsTrackConsumptionAndStalls) {
  MemoryBus bus(SmallBus());
  bus.TryConsume(1, 50);
  bus.TryConsume(1, 60);  // fails
  bus.TryConsume(1, 10);
  EXPECT_EQ(bus.stats().slots_consumed, 60u);
  EXPECT_EQ(bus.stats().stalled_requests, 1u);
  EXPECT_EQ(bus.stats().saturated_ticks, 1u);
}

TEST(BusTest, SaturationCountedOncePerTick) {
  MemoryBus bus(SmallBus());
  bus.TryConsume(1, 100);
  bus.TryConsume(1, 1);
  bus.TryConsume(1, 1);
  bus.TryConsume(1, 1);
  EXPECT_EQ(bus.stats().saturated_ticks, 1u);
  EXPECT_EQ(bus.stats().stalled_requests, 3u);
  bus.BeginTick();
  bus.TryConsume(1, 100);
  bus.TryConsume(1, 1);
  EXPECT_EQ(bus.stats().saturated_ticks, 2u);
}

TEST(BusTest, ZeroSlotConsumeAlwaysSucceeds) {
  MemoryBus bus(SmallBus());
  bus.TryConsume(1, 100);
  EXPECT_TRUE(bus.TryConsume(1, 0));
}

TEST(BusTest, LedgerRecordsOccupancyPerOwner) {
  MemoryBus bus(SmallBus());
  AttributionLedger ledger(4);
  bus.AttachLedger(&ledger);
  ledger.RecordTickStart();
  EXPECT_TRUE(bus.TryConsume(1, 30));
  EXPECT_TRUE(bus.TryAtomicLock(2));
  EXPECT_EQ(ledger.occupancy_slots(1), 30u);
  EXPECT_EQ(ledger.occupancy_slots(2), 40u);
  EXPECT_EQ(ledger.tick_occupancy_slots(2), 40u);
}

TEST(BusTest, LedgerChargesStallToBudgetConsumers) {
  MemoryBus bus(SmallBus());
  AttributionLedger ledger(4);
  bus.AttachLedger(&ledger);
  ledger.RecordTickStart();
  // Owner 2 eats 80 of 100 slots with atomics; owner 3 takes 15; owner 1's
  // request then finds 5 remaining and stalls.
  EXPECT_TRUE(bus.TryAtomicLock(2));
  EXPECT_TRUE(bus.TryAtomicLock(2));
  EXPECT_TRUE(bus.TryConsume(3, 15));
  EXPECT_FALSE(bus.TryConsume(1, 10));
  EXPECT_EQ(ledger.bus_delay_imposed(2, 1), 80u);
  EXPECT_EQ(ledger.bus_delay_imposed(3, 1), 15u);
  // The victim is never charged for its own stall...
  EXPECT_EQ(ledger.bus_delay_imposed(1, 1), 0u);
  // ...and owners that imposed nothing on other victims stay clean.
  EXPECT_EQ(ledger.bus_delay_imposed(2, 3), 0u);
  EXPECT_EQ(ledger.bus_delay_suffered(1), 95u);
}

TEST(BusTest, LedgerTickOccupancyResetsWithRecordTickStart) {
  MemoryBus bus(SmallBus());
  AttributionLedger ledger(4);
  bus.AttachLedger(&ledger);
  ledger.RecordTickStart();
  EXPECT_TRUE(bus.TryConsume(2, 90));
  bus.BeginTick();
  ledger.RecordTickStart();
  // Stall charges key on THIS tick's occupancy, not history.
  EXPECT_TRUE(bus.TryConsume(2, 95));
  EXPECT_FALSE(bus.TryConsume(1, 10));
  EXPECT_EQ(ledger.bus_delay_imposed(2, 1), 95u);
  EXPECT_EQ(ledger.occupancy_slots(2), 185u);
}

}  // namespace
}  // namespace sds::sim
