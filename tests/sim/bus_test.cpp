#include "sim/bus.h"

#include <gtest/gtest.h>

namespace sds::sim {
namespace {

BusConfig SmallBus() {
  BusConfig c;
  c.slots_per_tick = 100;
  c.access_slots = 1;
  c.miss_extra_slots = 3;
  c.atomic_lock_slots = 40;
  return c;
}

TEST(BusTest, BudgetRefillsEachTick) {
  MemoryBus bus(SmallBus());
  EXPECT_EQ(bus.slots_remaining(), 100u);
  EXPECT_TRUE(bus.TryConsume(60));
  EXPECT_EQ(bus.slots_remaining(), 40u);
  bus.BeginTick();
  EXPECT_EQ(bus.slots_remaining(), 100u);
}

TEST(BusTest, ExhaustionRejectsWithoutConsuming) {
  MemoryBus bus(SmallBus());
  EXPECT_TRUE(bus.TryConsume(99));
  EXPECT_FALSE(bus.TryConsume(2));
  EXPECT_EQ(bus.slots_remaining(), 1u);
  EXPECT_TRUE(bus.TryConsume(1));
  EXPECT_EQ(bus.slots_remaining(), 0u);
}

TEST(BusTest, AtomicLockConsumesLockWindow) {
  MemoryBus bus(SmallBus());
  EXPECT_TRUE(bus.TryAtomicLock());
  EXPECT_EQ(bus.slots_remaining(), 60u);
  EXPECT_EQ(bus.stats().atomic_locks, 1u);
}

TEST(BusTest, AtomicLocksStarveTheBus) {
  // The essence of the bus locking attack: a few atomics exhaust a budget
  // that would serve dozens of normal accesses.
  MemoryBus bus(SmallBus());
  int locks = 0;
  while (bus.TryAtomicLock()) ++locks;
  EXPECT_EQ(locks, 2);  // 2*40 = 80 <= 100 < 3*40
  int accesses = 0;
  while (bus.TryConsume(1)) ++accesses;
  EXPECT_EQ(accesses, 20);
}

TEST(BusTest, StatsTrackConsumptionAndStalls) {
  MemoryBus bus(SmallBus());
  bus.TryConsume(50);
  bus.TryConsume(60);  // fails
  bus.TryConsume(10);
  EXPECT_EQ(bus.stats().slots_consumed, 60u);
  EXPECT_EQ(bus.stats().stalled_requests, 1u);
  EXPECT_EQ(bus.stats().saturated_ticks, 1u);
}

TEST(BusTest, SaturationCountedOncePerTick) {
  MemoryBus bus(SmallBus());
  bus.TryConsume(100);
  bus.TryConsume(1);
  bus.TryConsume(1);
  bus.TryConsume(1);
  EXPECT_EQ(bus.stats().saturated_ticks, 1u);
  EXPECT_EQ(bus.stats().stalled_requests, 3u);
  bus.BeginTick();
  bus.TryConsume(100);
  bus.TryConsume(1);
  EXPECT_EQ(bus.stats().saturated_ticks, 2u);
}

TEST(BusTest, ZeroSlotConsumeAlwaysSucceeds) {
  MemoryBus bus(SmallBus());
  bus.TryConsume(100);
  EXPECT_TRUE(bus.TryConsume(0));
}

}  // namespace
}  // namespace sds::sim
