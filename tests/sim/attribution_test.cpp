// The interference attribution ledger on a live machine: the eviction
// matrix emerges from cross-owner cache fills, bus stall charges track the
// owners that ate the budget, and — the transparency half of the contract —
// enabling the ledger changes nothing about the simulated outcomes.
#include "sim/attribution.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.h"

namespace sds::sim {
namespace {

MachineConfig SmallMachine(bool attribution) {
  MachineConfig c;
  c.cache.sets = 4;
  c.cache.ways = 2;
  c.bus.slots_per_tick = 200;
  c.max_owners = 8;
  c.attribution = attribution;
  return c;
}

TEST(AttributionTest, DisabledByDefault) {
  Machine m(SmallMachine(false));
  EXPECT_EQ(m.attribution(), nullptr);
}

TEST(AttributionTest, EvictionMatrixTracksCulpritAndVictim) {
  Machine m(SmallMachine(true));
  ASSERT_NE(m.attribution(), nullptr);
  m.BeginTick();
  // Owner 1 fills set 0 (2 ways), then owner 2 storms the same set: each of
  // owner 2's first two fills evicts one of owner 1's lines.
  m.Access(1, 0);   // set 0
  m.Access(1, 4);   // set 0
  m.Access(2, 8);   // set 0: evicts owner 1
  m.Access(2, 12);  // set 0: evicts owner 1
  m.Access(2, 16);  // set 0: evicts owner 2's own line (self-eviction)
  const AttributionLedger& ledger = *m.attribution();
  EXPECT_EQ(ledger.evictions_inflicted(2, 1), 2u);
  EXPECT_EQ(ledger.evictions_inflicted(1, 2), 0u);
  EXPECT_EQ(ledger.evictions_inflicted(2, 2), 1u);
  // Suffered sums exclude the diagonal: self-evictions are baseline noise.
  EXPECT_EQ(ledger.evictions_suffered(1), 2u);
  EXPECT_EQ(ledger.evictions_suffered(2), 0u);
}

TEST(AttributionTest, AtomicStormChargesStalledVictim) {
  MachineConfig config = SmallMachine(true);
  config.bus.slots_per_tick = 100;
  Machine m(config);
  m.BeginTick();
  // Owner 3's atomics (2 x 40 lock slots + miss transfers) exhaust the
  // budget; owner 1's ordinary access then stalls.
  m.AtomicAccess(3, 50);
  m.AtomicAccess(3, 51);
  while (m.Access(1, 60) != AccessOutcome::kStalled) {
  }
  const AttributionLedger& ledger = *m.attribution();
  EXPECT_GT(ledger.bus_delay_imposed(3, 1), 0u);
  EXPECT_EQ(ledger.bus_delay_imposed(1, 3), 0u);
  EXPECT_GT(ledger.occupancy_slots(3), ledger.occupancy_slots(1));
}

TEST(AttributionTest, LedgerIsAPureObserver) {
  // Identical access sequences with the ledger on and off must produce
  // identical outcomes and counters: the ledger observes, never perturbs.
  Machine on(SmallMachine(true));
  Machine off(SmallMachine(false));
  std::vector<AccessOutcome> outcomes_on;
  std::vector<AccessOutcome> outcomes_off;
  auto drive = [](Machine& m, std::vector<AccessOutcome>& outcomes) {
    for (int tick = 0; tick < 5; ++tick) {
      m.BeginTick();
      for (int i = 0; i < 300; ++i) {
        const auto addr = static_cast<LineAddr>((i * 7 + tick) % 64);
        if (i % 11 == 0) {
          outcomes.push_back(m.AtomicAccess(2, addr));
        } else {
          outcomes.push_back(m.Access(1 + (i % 3), addr));
        }
      }
    }
  };
  drive(on, outcomes_on);
  drive(off, outcomes_off);
  EXPECT_EQ(outcomes_on, outcomes_off);
  for (OwnerId o = 1; o < 4; ++o) {
    EXPECT_EQ(on.counters(o).llc_accesses, off.counters(o).llc_accesses);
    EXPECT_EQ(on.counters(o).llc_misses, off.counters(o).llc_misses);
    EXPECT_EQ(on.counters(o).bus_stalls, off.counters(o).bus_stalls);
  }
  // And the enabled run actually gathered evidence.
  EXPECT_GT(on.attribution()->occupancy_slots(1), 0u);
}

TEST(AttributionTest, TickOccupancyResetsEachMachineTick) {
  Machine m(SmallMachine(true));
  m.BeginTick();
  m.Access(1, 0);
  EXPECT_GT(m.attribution()->tick_occupancy_slots(1), 0u);
  m.BeginTick();
  EXPECT_EQ(m.attribution()->tick_occupancy_slots(1), 0u);
  EXPECT_GT(m.attribution()->occupancy_slots(1), 0u);
}

}  // namespace
}  // namespace sds::sim
