#include "sim/dram.h"

#include <gtest/gtest.h>

namespace sds::sim {
namespace {

TEST(DramTest, BaseLatencyPerRead) {
  DramConfig cfg;
  cfg.access_latency_ns = 80.0;
  cfg.queue_latency_ns = 0.0;
  Dram dram(cfg);
  dram.BeginTick();
  EXPECT_DOUBLE_EQ(dram.Read(), 80.0);
  EXPECT_DOUBLE_EQ(dram.Read(), 80.0);
  EXPECT_EQ(dram.stats().reads, 2u);
  EXPECT_DOUBLE_EQ(dram.stats().total_latency_ns, 160.0);
}

TEST(DramTest, QueueingGrowsWithinTick) {
  DramConfig cfg;
  cfg.access_latency_ns = 80.0;
  cfg.queue_latency_ns = 2.0;
  Dram dram(cfg);
  dram.BeginTick();
  EXPECT_DOUBLE_EQ(dram.Read(), 80.0);
  EXPECT_DOUBLE_EQ(dram.Read(), 82.0);
  EXPECT_DOUBLE_EQ(dram.Read(), 84.0);
}

TEST(DramTest, QueueResetsEachTick) {
  DramConfig cfg;
  cfg.queue_latency_ns = 5.0;
  Dram dram(cfg);
  dram.BeginTick();
  dram.Read();
  dram.Read();
  dram.BeginTick();
  EXPECT_DOUBLE_EQ(dram.Read(), cfg.access_latency_ns);
}

TEST(DramTest, StatsAccumulateAcrossTicks) {
  Dram dram(DramConfig{});
  for (int t = 0; t < 5; ++t) {
    dram.BeginTick();
    dram.Read();
  }
  EXPECT_EQ(dram.stats().reads, 5u);
  EXPECT_GT(dram.stats().total_latency_ns, 0.0);
}

}  // namespace
}  // namespace sds::sim
