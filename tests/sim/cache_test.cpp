#include "sim/cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds::sim {
namespace {

CacheConfig SmallCache(std::uint32_t sets = 8, std::uint32_t ways = 4) {
  CacheConfig c;
  c.sets = sets;
  c.ways = ways;
  return c;
}

TEST(CacheTest, FirstAccessMisses) {
  LastLevelCache cache(SmallCache());
  const auto r = cache.Access(1, 0x100);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.evicted_valid);
}

TEST(CacheTest, SecondAccessHits) {
  LastLevelCache cache(SmallCache());
  cache.Access(1, 0x100);
  EXPECT_TRUE(cache.Access(1, 0x100).hit);
}

TEST(CacheTest, ContainsReflectsResidency) {
  LastLevelCache cache(SmallCache());
  EXPECT_FALSE(cache.Contains(42));
  cache.Access(1, 42);
  EXPECT_TRUE(cache.Contains(42));
}

TEST(CacheTest, SetIndexUsesLowBits) {
  LastLevelCache cache(SmallCache(8, 4));
  EXPECT_EQ(cache.SetIndexOf(0), 0u);
  EXPECT_EQ(cache.SetIndexOf(7), 7u);
  EXPECT_EQ(cache.SetIndexOf(8), 0u);
  EXPECT_EQ(cache.SetIndexOf(0x123456789), 1u);
}

TEST(CacheTest, SetFillsUpToAssociativity) {
  LastLevelCache cache(SmallCache(8, 4));
  // 4 distinct lines mapping to set 0 all fit.
  for (LineAddr a : {0ull, 8ull, 16ull, 24ull}) cache.Access(1, a);
  for (LineAddr a : {0ull, 8ull, 16ull, 24ull}) {
    EXPECT_TRUE(cache.Contains(a));
  }
  EXPECT_EQ(cache.OwnerLinesInSet(0, 1), 4u);
}

TEST(CacheTest, LruEvictionOrder) {
  LastLevelCache cache(SmallCache(8, 2));
  cache.Access(1, 0);   // set 0
  cache.Access(1, 8);   // set 0
  cache.Access(1, 0);   // refresh 0: LRU is now 8
  const auto r = cache.Access(1, 16);  // evicts 8
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(8));
  EXPECT_TRUE(cache.Contains(16));
}

TEST(CacheTest, EvictionReportsVictimOwner) {
  LastLevelCache cache(SmallCache(8, 2));
  cache.Access(7, 0);
  cache.Access(7, 8);
  const auto r = cache.Access(3, 16);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_EQ(r.evicted_owner, 7u);
}

TEST(CacheTest, DistinctSetsDoNotInterfere) {
  LastLevelCache cache(SmallCache(8, 2));
  // Fill set 0 beyond capacity; set 1 lines must be untouched.
  cache.Access(1, 1);
  cache.Access(1, 9);
  for (LineAddr a : {0ull, 8ull, 16ull, 24ull}) cache.Access(1, a);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(9));
}

TEST(CacheTest, CountOwnerLines) {
  LastLevelCache cache(SmallCache(8, 4));
  for (LineAddr a = 0; a < 10; ++a) cache.Access(2, a);
  for (LineAddr a = 100; a < 103; ++a) cache.Access(5, a);
  EXPECT_EQ(cache.CountOwnerLines(2), 10u);
  EXPECT_EQ(cache.CountOwnerLines(5), 3u);
  EXPECT_EQ(cache.CountOwnerLines(9), 0u);
}

TEST(CacheTest, FlushEmptiesEverything) {
  LastLevelCache cache(SmallCache());
  for (LineAddr a = 0; a < 20; ++a) cache.Access(1, a);
  cache.Flush();
  EXPECT_EQ(cache.CountOwnerLines(1), 0u);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_FALSE(cache.Access(1, 0).hit);
}

TEST(CacheTest, CleansingPattern) {
  // The attack's core primitive: filling a set with `ways` fresh lines must
  // evict every pre-existing line in it.
  LastLevelCache cache(SmallCache(4, 4));
  cache.Access(1, 0);  // victim line, set 0
  cache.Access(1, 4);  // victim line, set 0
  for (std::uint32_t w = 0; w < 4; ++w) {
    cache.Access(2, 1000 * 4 + static_cast<LineAddr>(w) * 4);  // set 0 lines
  }
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(4));
  EXPECT_EQ(cache.OwnerLinesInSet(0, 2), 4u);
}

// Invariant sweep: occupancy per set never exceeds associativity; the total
// number of valid lines never exceeds capacity; hits never evict.
class CacheInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheInvariantTest, RandomWorkloadInvariants) {
  const auto [sets, ways] = GetParam();
  LastLevelCache cache(SmallCache(static_cast<std::uint32_t>(sets),
                                  static_cast<std::uint32_t>(ways)));
  Rng rng(static_cast<std::uint64_t>(sets * 31 + ways));
  for (int i = 0; i < 20000; ++i) {
    const OwnerId owner = 1 + static_cast<OwnerId>(rng.UniformInt(3ull));
    const LineAddr addr = rng.UniformInt(static_cast<std::uint64_t>(
        sets * ways * 3));
    const bool was_resident = cache.Contains(addr);
    const auto r = cache.Access(owner, addr);
    EXPECT_EQ(r.hit, was_resident);
    if (r.hit) {
      EXPECT_FALSE(r.evicted_valid);
    }
    EXPECT_TRUE(cache.Contains(addr));
  }
  std::size_t total = 0;
  for (OwnerId o = 1; o <= 3; ++o) total += cache.CountOwnerLines(o);
  EXPECT_LE(total, cache.total_lines());
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(sets); ++s) {
    std::uint32_t in_set = 0;
    for (OwnerId o = 1; o <= 3; ++o) in_set += cache.OwnerLinesInSet(s, o);
    EXPECT_LE(in_set, static_cast<std::uint32_t>(ways));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheInvariantTest,
                         ::testing::Combine(::testing::Values(4, 16, 64),
                                            ::testing::Values(1, 2, 8, 16)));

TEST(CacheTest, WorkingSetSmallerThanCacheAlwaysHitsEventually) {
  LastLevelCache cache(SmallCache(64, 8));
  Rng rng(77);
  const std::uint64_t wss = 64 * 8 / 2;  // half the cache
  // Warm up.
  for (int i = 0; i < 5000; ++i) cache.Access(1, rng.UniformInt(wss));
  // A working set with uniform reuse and no contention stays resident
  // almost entirely.
  int misses = 0;
  for (int i = 0; i < 5000; ++i) {
    if (!cache.Access(1, rng.UniformInt(wss)).hit) ++misses;
  }
  EXPECT_LT(misses, 50);
}

}  // namespace
}  // namespace sds::sim
