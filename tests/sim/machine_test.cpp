#include "sim/machine.h"

#include <gtest/gtest.h>

namespace sds::sim {
namespace {

MachineConfig SmallMachine() {
  MachineConfig c;
  c.cache.sets = 16;
  c.cache.ways = 4;
  c.bus.slots_per_tick = 200;
  c.bus.access_slots = 1;
  c.bus.miss_extra_slots = 3;
  c.bus.atomic_lock_slots = 40;
  c.max_owners = 8;
  return c;
}

TEST(MachineTest, CountersStartAtZero) {
  Machine m(SmallMachine());
  EXPECT_EQ(m.counters(1).llc_accesses, 0u);
  EXPECT_EQ(m.counters(1).llc_misses, 0u);
}

TEST(MachineTest, AccessUpdatesCounters) {
  Machine m(SmallMachine());
  m.BeginTick();
  EXPECT_EQ(m.Access(1, 0x10), AccessOutcome::kMiss);
  EXPECT_EQ(m.Access(1, 0x10), AccessOutcome::kHit);
  EXPECT_EQ(m.counters(1).llc_accesses, 2u);
  EXPECT_EQ(m.counters(1).llc_misses, 1u);
}

TEST(MachineTest, CountersArePerOwner) {
  Machine m(SmallMachine());
  m.BeginTick();
  m.Access(1, 1);
  m.Access(2, 2);
  m.Access(2, 3);
  EXPECT_EQ(m.counters(1).llc_accesses, 1u);
  EXPECT_EQ(m.counters(2).llc_accesses, 2u);
}

TEST(MachineTest, MissConsumesDramAndExtraSlots) {
  Machine m(SmallMachine());
  m.BeginTick();
  m.Access(1, 5);
  // 1 access slot + 3 miss extra.
  EXPECT_EQ(m.bus().slots_remaining(), 196u);
  EXPECT_EQ(m.dram().stats().reads, 1u);
  EXPECT_GT(m.counters(1).dram_latency_ns, 0.0);
}

TEST(MachineTest, HitConsumesOnlyAccessSlot) {
  Machine m(SmallMachine());
  m.BeginTick();
  m.Access(1, 5);
  const auto before = m.bus().slots_remaining();
  m.Access(1, 5);
  EXPECT_EQ(m.bus().slots_remaining(), before - 1);
}

TEST(MachineTest, StalledAccessDoesNotTouchCache) {
  Machine m(SmallMachine());
  m.BeginTick();
  // Drain the bus.
  while (m.bus().TryConsume(0, 1)) {
  }
  EXPECT_EQ(m.Access(1, 77), AccessOutcome::kStalled);
  EXPECT_EQ(m.counters(1).llc_accesses, 0u);
  EXPECT_EQ(m.counters(1).bus_stalls, 1u);
  EXPECT_FALSE(m.cache().Contains(77));
}

TEST(MachineTest, AtomicAccessCountsAtomics) {
  Machine m(SmallMachine());
  m.BeginTick();
  EXPECT_EQ(m.AtomicAccess(1, 9), AccessOutcome::kMiss);
  EXPECT_EQ(m.counters(1).atomic_ops, 1u);
  // Atomic lock window (40) + miss extra (3).
  EXPECT_EQ(m.bus().slots_remaining(), 200u - 43u);
}

TEST(MachineTest, AtomicStallsWhenBusFull) {
  Machine m(SmallMachine());
  m.BeginTick();
  for (int i = 0; i < 4; ++i) m.AtomicAccess(1, static_cast<LineAddr>(i));
  // 4 * 43 = 172 consumed; a 5th atomic (needs 40) stalls.
  EXPECT_EQ(m.AtomicAccess(2, 100), AccessOutcome::kStalled);
  EXPECT_EQ(m.counters(2).bus_stalls, 1u);
  EXPECT_EQ(m.counters(2).atomic_ops, 0u);
}

TEST(MachineTest, TickAdvancesClock) {
  Machine m(SmallMachine());
  EXPECT_EQ(m.now(), 0);
  m.BeginTick();
  m.BeginTick();
  EXPECT_EQ(m.now(), 2);
}

TEST(MachineTest, BusRefillsAcrossTicks) {
  Machine m(SmallMachine());
  m.BeginTick();
  while (m.bus().TryConsume(0, 1)) {
  }
  EXPECT_EQ(m.Access(1, 3), AccessOutcome::kStalled);
  m.BeginTick();
  EXPECT_NE(m.Access(1, 3), AccessOutcome::kStalled);
}

TEST(MachineTest, CrossOwnerEvictionRaisesVictimMisses) {
  // One owner's set-filling accesses evict another owner's resident line,
  // which then misses on its next access — the cleansing mechanism end to
  // end at machine level.
  MachineConfig cfg = SmallMachine();
  cfg.bus.slots_per_tick = 100000;
  Machine m(cfg);
  m.BeginTick();
  m.Access(1, 0);  // victim line in set 0
  EXPECT_EQ(m.Access(1, 0), AccessOutcome::kHit);
  for (std::uint32_t w = 0; w < cfg.cache.ways; ++w) {
    m.Access(2, 1000 * 16 + static_cast<LineAddr>(w) * 16);  // set 0
  }
  EXPECT_EQ(m.Access(1, 0), AccessOutcome::kMiss);
  EXPECT_EQ(m.counters(1).llc_misses, 2u);
}

}  // namespace
}  // namespace sds::sim
