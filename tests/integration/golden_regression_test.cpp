// Golden regression: pins the exact detection behavior of fixed-seed runs.
//
// The robustness work routes every detector through the SampleSource seam
// (pcm/sample_source.h) with fault injection and degradation policies
// layered on top. This test proves the seam is bit-transparent: with no
// injector (or a disabled fault plan), alarm ticks, accuracy counters and
// the full audit stream are IDENTICAL to the pre-seam pipeline. The
// constants below were captured from the pre-refactor tree; any drift in
// them is a behavior change in the default (fault-free) pipeline and must
// be justified, not re-golded casually.
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "telemetry/telemetry.h"

namespace sds::eval {
namespace {

// FNV-1a over the fields of every audit record, in append order. Doubles are
// hashed by bit pattern, so the hash is sensitive to any numeric drift.
class AuditHasher {
 public:
  void Bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Cstr(const char* s) { Bytes(s, std::strlen(s)); }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

struct GoldenSummary {
  bool detected = false;
  Tick delay = -1;
  int false_positive_intervals = -1;
  int true_negative_intervals = -1;
  std::uint64_t audit_records = 0;
  std::uint64_t audit_hash = 0;
};

GoldenSummary RunGolden(const std::string& app, AttackKind attack,
                        Scheme scheme, std::uint64_t seed) {
  telemetry::Telemetry telemetry;
  // Only the audit stream matters here; silence the event layers so the run
  // stays fast and the ring never influences anything.
  telemetry.tracer().DisableAllLayers();

  DetectionRunConfig cfg;
  cfg.app = app;
  cfg.attack = attack;
  cfg.scheme = scheme;
  cfg.profile_ticks = 4000;
  cfg.clean_ticks = 5000;
  cfg.attack_ticks = 5000;
  cfg.scenario.machine.telemetry = &telemetry;
  const DetectionRunResult r = RunDetectionRun(cfg, seed);

  GoldenSummary g;
  g.detected = r.detected;
  g.delay = r.detection_delay_ticks.value_or(-1);
  g.false_positive_intervals = r.false_positive_intervals;
  g.true_negative_intervals = r.true_negative_intervals;
  g.audit_records = telemetry.audit().size();
  AuditHasher h;
  for (const auto& rec : telemetry.audit().records()) {
    h.U64(static_cast<std::uint64_t>(rec.tick));
    h.Cstr(rec.detector);
    h.Cstr(rec.check);
    h.Cstr(rec.channel);
    h.F64(rec.value);
    h.F64(rec.lower);
    h.F64(rec.upper);
    h.F64(rec.margin);
    h.U64(rec.violation ? 1 : 0);
    h.U64(static_cast<std::uint64_t>(rec.consecutive));
    h.U64(rec.alarm ? 1 : 0);
  }
  g.audit_hash = h.hash();
  return g;
}

void ExpectGolden(const GoldenSummary& got, const GoldenSummary& want) {
  EXPECT_EQ(got.detected, want.detected);
  EXPECT_EQ(got.delay, want.delay);
  EXPECT_EQ(got.false_positive_intervals, want.false_positive_intervals);
  EXPECT_EQ(got.true_negative_intervals, want.true_negative_intervals);
  EXPECT_EQ(got.audit_records, want.audit_records);
  EXPECT_EQ(got.audit_hash, want.audit_hash);
}

TEST(GoldenRegressionTest, SdsKmeansBusLockSeed42) {
  GoldenSummary want;
  want.detected = true;
  want.delay = 1600;
  want.false_positive_intervals = 0;
  want.true_negative_intervals = 5;
  want.audit_records = 394;
  want.audit_hash = 5766787669683299636ull;
  ExpectGolden(RunGolden("kmeans", AttackKind::kBusLock, Scheme::kSds, 42),
               want);
}

TEST(GoldenRegressionTest, KstestBayesBusLockSeed7) {
  GoldenSummary want;
  want.detected = true;
  want.delay = 2348;
  want.false_positive_intervals = 0;
  want.true_negative_intervals = 5;
  want.audit_records = 54;
  want.audit_hash = 5377181542286461155ull;
  ExpectGolden(RunGolden("bayes", AttackKind::kBusLock, Scheme::kKsTest, 7),
               want);
}

TEST(GoldenRegressionTest, SdsTerasortCleansingSeed11) {
  GoldenSummary want;
  want.detected = true;
  want.delay = 4150;
  want.false_positive_intervals = 0;
  want.true_negative_intervals = 5;
  want.audit_records = 394;
  want.audit_hash = 9692680438302368560ull;
  ExpectGolden(
      RunGolden("terasort", AttackKind::kLlcCleansing, Scheme::kSds, 11),
      want);
}

}  // namespace
}  // namespace sds::eval
