// Host-chaos transparency pin.
//
// PR 10 threads a HostLifecycle through Cluster::RunTick and parks an
// EvacuationEngine next to the Actuator. This test proves the whole plane
// is bit-transparent when the HostFaultPlan is null: the detect -> alarm ->
// mitigate pipeline with a lifecycle attached and an idle evacuation engine
// ticking produces IDENTICAL alarm ticks, placements, audit hashes and
// event counts to the pre-PR engine — the pinned constants are the same
// ones actuation_golden_test.cpp captured before this PR. Drift here means
// the chaos plane leaks into fault-free runs.
#include <cstdint>
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "attacks/bus_lock_attacker.h"
#include "attacks/scheduled_workload.h"
#include "cluster/actuator.h"
#include "cluster/evacuation.h"
#include "cluster/host_lifecycle.h"
#include "cluster/mitigation.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/hostchaos.h"
#include "telemetry/telemetry.h"
#include "workloads/catalog.h"

namespace sds::eval {
namespace {

// FNV-1a over the fields of every audit record, in append order (same
// scheme as actuation_golden_test.cpp / golden_regression_test.cpp).
class AuditHasher {
 public:
  void Bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Cstr(const char* s) { Bytes(s, std::strlen(s)); }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

TEST(HostChaosTransparencyTest, NullPlanLifecycleIsBitTransparent) {
  const std::uint64_t seed = 42;
  telemetry::Telemetry telemetry;

  detect::DetectorParams params;
  ScenarioConfig base;
  base.app = "kmeans";
  const auto clean = CollectCleanSamples(base, 4000, seed + 1);
  const auto profile = detect::BuildSdsProfile(clean, params);

  cluster::HostConfig host;
  host.machine.telemetry = &telemetry;
  cluster::Cluster cl(2, host, seed);

  // The new plane, all null: lifecycle with no fault plan attached to the
  // cluster, an idle actuator, and an evacuation engine with nothing to do.
  cluster::HostLifecycle lifecycle(2);
  cl.AttachLifecycle(&lifecycle);
  cluster::Actuator evac_actuator(cl);
  cluster::EvacuationEngine evacuation(cl, lifecycle, evac_actuator);

  const Tick attack_start = 3000;
  const cluster::VmRef victim =
      cl.Deploy(0, "victim", [] { return workloads::MakeApp("kmeans"); });
  cl.Deploy(0, "attacker", [attack_start] {
    return std::make_unique<attacks::ScheduledWorkload>(
        std::make_unique<attacks::BusLockAttacker>(attacks::BusLockConfig{}),
        attack_start, -1);
  });
  for (int i = 0; i < 3; ++i) {
    cl.Deploy(0, "benign", [] { return workloads::MakeBenignUtility(); });
  }

  detect::SdsDetector detector(cl.hypervisor(0), victim.id, profile, params,
                               detect::SdsMode::kCombined);
  cluster::MitigationEngine engine(
      cl, victim, cluster::MitigationPolicy::kMigrateVictim, /*spare=*/1);

  Tick alarm_tick = -1;
  for (Tick t = 0; t < attack_start; ++t) {
    cl.RunTick();
    detector.OnTick();
    engine.OnTick();
    evac_actuator.OnTick();
    evacuation.OnTick();
  }
  for (Tick t = 0; t < 6000; ++t) {
    cl.RunTick();
    detector.OnTick();
    engine.OnTick();
    evac_actuator.OnTick();
    evacuation.OnTick();
    if (detector.attack_active()) {
      alarm_tick = cl.now();
      break;
    }
  }
  ASSERT_GE(alarm_tick, 0);
  engine.OnAlarm(0);
  for (Tick t = 0; t < 2000; ++t) {
    cl.RunTick();
    engine.OnTick();
    evac_actuator.OnTick();
    evacuation.OnTick();
  }

  // Pinned against actuation_golden_test.cpp's MigrateVictimSeed42 —
  // captured BEFORE the host-chaos plane existed.
  EXPECT_EQ(alarm_tick, 4550);
  EXPECT_EQ(engine.mitigation_tick(), 4550);
  EXPECT_EQ(engine.victim().host, 1);
  EXPECT_EQ(telemetry.audit().size(), 177u);
  AuditHasher h;
  for (const auto& rec : telemetry.audit().records()) {
    h.U64(static_cast<std::uint64_t>(rec.tick));
    h.Cstr(rec.detector);
    h.Cstr(rec.check);
    h.Cstr(rec.channel);
    h.F64(rec.value);
    h.F64(rec.lower);
    h.F64(rec.upper);
    h.F64(rec.margin);
    h.U64(rec.violation ? 1 : 0);
    h.U64(static_cast<std::uint64_t>(rec.consecutive));
    h.U64(rec.alarm ? 1 : 0);
  }
  EXPECT_EQ(h.hash(), 18261495189989815477ull);
  EXPECT_EQ(telemetry.tracer().emitted(), 1115516u);
  EXPECT_EQ(cl.counters(engine.victim()).llc_accesses, 982730u);

  // And the chaos plane itself never moved.
  EXPECT_EQ(lifecycle.stats().injected_total(), 0u);
  EXPECT_TRUE(lifecycle.transitions().empty());
  EXPECT_EQ(evacuation.stats().started, 0u);
  EXPECT_TRUE(evacuation.quiescent());
}

TEST(HostChaosTransparencyTest, HandoffModeDoesNotPerturbTheWorld) {
  // Warm vs cold handoff must change ONLY detector-internal state: the
  // forced-migration schedule, handoff event placements, and host timeline
  // are bit-identical across the two sides of any cell.
  HostChaosRunConfig config;
  config.attack_start = 500;
  config.horizon = 3000;
  config.migrate_every = 400;
  config.params.window = 100;
  config.params.step = 25;
  config.params.h_c = 8;
  const HostChaosRunResult warm = RunHostChaosRun(config, /*seed=*/31);
  config.warm_handoff = false;
  const HostChaosRunResult cold = RunHostChaosRun(config, /*seed=*/31);

  ASSERT_EQ(warm.migrations, cold.migrations);
  ASSERT_EQ(warm.handoff_events.size(), cold.handoff_events.size());
  for (std::size_t i = 0; i < warm.handoff_events.size(); ++i) {
    EXPECT_EQ(warm.handoff_events[i].tick, cold.handoff_events[i].tick);
    EXPECT_EQ(warm.handoff_events[i].from.host,
              cold.handoff_events[i].from.host);
    EXPECT_EQ(warm.handoff_events[i].to.host, cold.handoff_events[i].to.host);
  }
  EXPECT_EQ(warm.transitions.size(), cold.transitions.size());
  EXPECT_EQ(warm.attacked_serving_ticks, cold.attacked_serving_ticks);
}

}  // namespace
}  // namespace sds::eval
