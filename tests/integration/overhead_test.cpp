// Integration: the fixed-work performance-overhead protocol (Figure 12).
#include <gtest/gtest.h>

#include <cstdint>

#include "eval/experiment.h"

namespace sds::eval {
namespace {

OverheadRunConfig ShortConfig(const std::string& app, Scheme scheme) {
  OverheadRunConfig cfg;
  cfg.app = app;
  cfg.scheme = scheme;
  cfg.work_target_units = 1200;
  return cfg;
}

TEST(OverheadTest, BaselineCompletes) {
  const auto r = RunOverheadRun(ShortConfig("bayes", Scheme::kNone), 1);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.completion_ticks, 0);
  EXPECT_EQ(r.monitor_dropped_ops, 0u);
}

TEST(OverheadTest, SdsMonitoringDropsOps) {
  const auto r = RunOverheadRun(ShortConfig("bayes", Scheme::kSds), 1);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.monitor_dropped_ops, 0u);
}

TEST(OverheadTest, KstestSlowerThanBaseline) {
  // The throttled reference collection stalls co-located VMs 1 s of every
  // 30 s plus the identification sweeps: a clearly measurable slowdown.
  const auto base = RunOverheadRun(ShortConfig("bayes", Scheme::kNone), 2);
  const auto ks = RunOverheadRun(ShortConfig("bayes", Scheme::kKsTest), 2);
  ASSERT_TRUE(base.completed && ks.completed);
  EXPECT_GT(ks.completion_ticks, base.completion_ticks);
  const double ratio = static_cast<double>(ks.completion_ticks) /
                       static_cast<double>(base.completion_ticks);
  EXPECT_GT(ratio, 1.01);
  EXPECT_LT(ratio, 1.30);
}

TEST(OverheadTest, SdsCheaperThanKstest) {
  // Figure 12's headline: SDS 1-2% vs KStest 3-8%. Medians over a few seeds
  // must preserve the ordering.
  double sds_sum = 0.0;
  double ks_sum = 0.0;
  const int seeds = 3;
  for (int s = 0; s < seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(10 + s);
    const auto base = RunOverheadRun(ShortConfig("bayes", Scheme::kNone), seed);
    const auto sds = RunOverheadRun(ShortConfig("bayes", Scheme::kSds), seed);
    const auto ks =
        RunOverheadRun(ShortConfig("bayes", Scheme::kKsTest), seed);
    sds_sum += static_cast<double>(sds.completion_ticks) /
               static_cast<double>(base.completion_ticks);
    ks_sum += static_cast<double>(ks.completion_ticks) /
              static_cast<double>(base.completion_ticks);
  }
  EXPECT_LT(sds_sum / seeds, ks_sum / seeds);
}

TEST(OverheadTest, DeterministicPerSeed) {
  const auto a = RunOverheadRun(ShortConfig("svm", Scheme::kKsTest), 3);
  const auto b = RunOverheadRun(ShortConfig("svm", Scheme::kKsTest), 3);
  EXPECT_EQ(a.completion_ticks, b.completion_ticks);
}

TEST(OverheadTest, TickCapRespected) {
  OverheadRunConfig cfg = ShortConfig("bayes", Scheme::kNone);
  cfg.max_ticks = 10;  // impossible to finish
  const auto r = RunOverheadRun(cfg, 4);
  EXPECT_FALSE(r.completed);
}

TEST(OverheadTest, SdsPFallsBackOnNonPeriodicApp) {
  // SDS/P is undefined for non-periodic apps; the overhead protocol must
  // still run (treated as boundary-only monitoring).
  const auto r = RunOverheadRun(ShortConfig("kmeans", Scheme::kSdsP), 5);
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace sds::eval
