// Cold-migration blind-window regression pin.
//
// A migration with COLD detector start throws away the analyzer windows and
// the h_c violation streak; with a fast detector (window=100, step=25,
// h_c=8) the theoretical re-detection delay after a reset is at least
// h_c * step = 200 ticks. This test pins the measured blind windows of a
// forced-migration run, warm vs cold, on the same seeded world — the cold
// number IS the vulnerability the warm handoff removes, and drift in either
// direction (cold getting shorter, warm getting longer) is a behavior
// change that must be justified, not re-golded casually.
#include <gtest/gtest.h>

#include "eval/hostchaos.h"

namespace sds::eval {
namespace {

HostChaosRunConfig BlindWindowConfig() {
  HostChaosRunConfig config;
  config.attack_start = 500;
  config.horizon = 3000;
  config.migrate_every = 400;  // shorter than the cold re-detection delay
  config.params.window = 100;
  config.params.step = 25;
  config.params.h_c = 8;
  return config;
}

TEST(HandoffBlindWindowTest, ColdMigrationBlindWindowIsPinned) {
  HostChaosRunConfig config = BlindWindowConfig();
  const HostChaosRunResult warm = RunHostChaosRun(config, /*seed=*/42);
  config.warm_handoff = false;
  const HostChaosRunResult cold = RunHostChaosRun(config, /*seed=*/42);

  // Both sides replay the identical world: same forced-migration schedule.
  ASSERT_EQ(warm.migrations, cold.migrations);
  ASSERT_EQ(warm.migrations, 6);  // ticks 900,1300,...,2900

  // The cold side spends ~246 of every 400-tick period blind: the fresh
  // detector re-baselines, refills its analysis window and re-accumulates
  // the h_c streak before it can re-report — 70% of attacked serving ticks
  // go unreported.
  EXPECT_GT(cold.mean_blind_ticks(), 200.0);
  EXPECT_EQ(cold.blind_ticks, 1475u);
  EXPECT_EQ(cold.missed_ticks, 1470u);
  EXPECT_NEAR(cold.missed_alarm_rate(), 0.70, 0.02);

  // The warm side re-reports the attack almost immediately after landing.
  EXPECT_LT(warm.mean_blind_ticks(), 50.0);
  EXPECT_EQ(warm.blind_ticks, 6u);
  EXPECT_EQ(warm.missed_ticks, 0u);
  EXPECT_LT(warm.missed_alarm_rate(), 0.01);

  EXPECT_LT(warm.mean_blind_ticks(), cold.mean_blind_ticks());
  EXPECT_LT(warm.missed_alarm_rate(), cold.missed_alarm_rate());
}

}  // namespace
}  // namespace sds::eval
