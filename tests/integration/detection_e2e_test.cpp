// Integration: the full three-stage detection protocol end to end, plus the
// KStest false-positive reproduction (paper Figure 1 / Section 3.2) and
// failure-injection cases.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "telemetry/telemetry.h"

namespace sds::eval {
namespace {

DetectionRunConfig ShortConfig(const std::string& app, AttackKind attack,
                               Scheme scheme) {
  DetectionRunConfig cfg;
  cfg.app = app;
  cfg.attack = attack;
  cfg.scheme = scheme;
  cfg.profile_ticks = 9000;
  cfg.clean_ticks = 8000;
  cfg.attack_ticks = 10000;
  return cfg;
}

TEST(DetectionE2eTest, SdsDetectsBusLockOnKmeans) {
  const auto r =
      RunDetectionRun(ShortConfig("kmeans", AttackKind::kBusLock,
                                  Scheme::kSds),
                      1);
  EXPECT_TRUE(r.detected);
  ASSERT_TRUE(r.detection_delay_ticks.has_value());
  EXPECT_GT(*r.detection_delay_ticks, 0);
  EXPECT_LT(*r.detection_delay_ticks, 6000);  // < 60 s
  EXPECT_GE(r.specificity(), 0.7);
}

TEST(DetectionE2eTest, SdsDetectsCleansingOnKmeans) {
  const auto r = RunDetectionRun(
      ShortConfig("kmeans", AttackKind::kLlcCleansing, Scheme::kSds), 2);
  EXPECT_TRUE(r.detected);
}

TEST(DetectionE2eTest, KstestDetectsBusLockOnBayes) {
  const auto r = RunDetectionRun(
      ShortConfig("bayes", AttackKind::kBusLock, Scheme::kKsTest), 3);
  EXPECT_TRUE(r.detected);
}

TEST(DetectionE2eTest, SdsBAndSdsPDetectOnPeriodicApp) {
  for (Scheme scheme : {Scheme::kSdsB, Scheme::kSdsP}) {
    DetectionRunConfig cfg =
        ShortConfig("facenet", AttackKind::kBusLock, scheme);
    cfg.attack_ticks = 12000;
    const auto r = RunDetectionRun(cfg, 4);
    EXPECT_TRUE(r.detected) << SchemeName(scheme);
  }
}

TEST(DetectionE2eTest, SpecificityIntervalsAccounted) {
  DetectionRunConfig cfg =
      ShortConfig("bayes", AttackKind::kBusLock, Scheme::kSds);
  cfg.eval_interval = 1000;
  const auto r = RunDetectionRun(cfg, 5);
  EXPECT_EQ(r.true_negative_intervals + r.false_positive_intervals,
            static_cast<int>(cfg.clean_ticks / cfg.eval_interval));
  EXPECT_GE(r.specificity(), 0.0);
  EXPECT_LE(r.specificity(), 1.0);
}

TEST(DetectionE2eTest, TerasortBreaksKstestSpecificity) {
  // The paper's central negative result (Figure 1): KStest false-alarms on
  // TeraSort's phase-switching statistics; SDS does not.
  DetectionRunConfig ks =
      ShortConfig("terasort", AttackKind::kBusLock, Scheme::kKsTest);
  DetectionRunConfig sds =
      ShortConfig("terasort", AttackKind::kBusLock, Scheme::kSds);
  const auto rks = RunDetectionRun(ks, 6);
  const auto rsds = RunDetectionRun(sds, 6);
  EXPECT_LT(rks.specificity(), rsds.specificity());
  EXPECT_GE(rsds.specificity(), 0.7);
}

TEST(DetectionE2eTest, KsFalseAlarmStudyTerasortAboveHalf) {
  // Section 3.2: >60% of TeraSort's L_R intervals declare a (false) attack.
  detect::KsTestParams params;
  const auto result = RunKsFalseAlarmStudy("terasort", params, 8, 7);
  EXPECT_EQ(result.interval_decisions.size(), 8u);
  EXPECT_GE(result.alarm_fraction, 0.5);
}

TEST(DetectionE2eTest, KsFalseAlarmStudyStationaryAppLower) {
  detect::KsTestParams params;
  const auto terasort = RunKsFalseAlarmStudy("terasort", params, 6, 8);
  const auto bayes = RunKsFalseAlarmStudy("bayes", params, 6, 8);
  EXPECT_LE(bayes.alarm_fraction, terasort.alarm_fraction);
}

TEST(DetectionE2eTest, DeterministicForSameSeed) {
  const DetectionRunConfig cfg =
      ShortConfig("svm", AttackKind::kBusLock, Scheme::kSds);
  const auto a = RunDetectionRun(cfg, 42);
  const auto b = RunDetectionRun(cfg, 42);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.detection_delay_ticks, b.detection_delay_ticks);
  EXPECT_EQ(a.false_positive_intervals, b.false_positive_intervals);
}

// Failure injection: attack starting mid-EWMA-window must still be caught.
TEST(DetectionE2eTest, AttackStartMisalignedWithWindows) {
  DetectionRunConfig cfg =
      ShortConfig("aggregation", AttackKind::kBusLock, Scheme::kSds);
  cfg.clean_ticks = 8137;  // deliberately not a multiple of W or dW
  const auto r = RunDetectionRun(cfg, 9);
  EXPECT_TRUE(r.detected);
}

// Failure injection: a very short attack stage (attack barely underway).
TEST(DetectionE2eTest, ShortAttackStageMayMissButNeverCrashes) {
  DetectionRunConfig cfg =
      ShortConfig("bayes", AttackKind::kBusLock, Scheme::kSds);
  cfg.attack_ticks = 600;  // 6 s: below SDS's minimum detection delay
  const auto r = RunDetectionRun(cfg, 10);
  EXPECT_FALSE(r.detected);  // H_C * dW * T_PCM = 15 s minimum
}

TEST(DetectionE2eTest, PeriodicProfileFlagPropagates) {
  DetectionRunConfig cfg =
      ShortConfig("facenet", AttackKind::kBusLock, Scheme::kSds);
  cfg.profile_ticks = 12000;
  const auto r = RunDetectionRun(cfg, 11);
  EXPECT_TRUE(r.profile_periodic);
  const auto r2 = RunDetectionRun(
      ShortConfig("bayes", AttackKind::kBusLock, Scheme::kSds), 11);
  EXPECT_FALSE(r2.profile_periodic);
}

TEST(DetectionE2eTest, TelemetryAuditsAlarmDecisionAcrossLayers) {
  telemetry::Telemetry telemetry;
  // The per-access sim layers emit orders of magnitude more events than the
  // ring retains over a full run and would evict the rare early vm events;
  // this test is about cross-layer coverage and the audit trail, so silence
  // the two noisy layers and keep everything else.
  telemetry.tracer().DisableLayer(telemetry::Layer::kSimCache);
  telemetry.tracer().DisableLayer(telemetry::Layer::kSimBus);

  DetectionRunConfig cfg =
      ShortConfig("kmeans", AttackKind::kBusLock, Scheme::kSds);
  cfg.scenario.machine.telemetry = &telemetry;
  const auto r = RunDetectionRun(cfg, 1);
  EXPECT_TRUE(r.detected);

  // The attack run must leave >= 1 audited decision that raised the alarm,
  // with a populated (positive = violating) margin and its inputs recorded.
  const auto& records = telemetry.audit().records();
  ASSERT_FALSE(records.empty());
  bool audited_alarm = false;
  for (const auto& rec : records) {
    if (!rec.alarm || !rec.violation) continue;
    audited_alarm = true;
    EXPECT_GT(rec.margin, 0.0);
    EXPECT_STRNE(rec.detector, "");
    EXPECT_STRNE(rec.check, "");
    EXPECT_GE(rec.consecutive, 1);
    break;
  }
  EXPECT_TRUE(audited_alarm);

  // Events from >= 4 distinct layers were retained (vm, pcm, detect, eval).
  std::set<std::string> layers;
  const auto& tracer = telemetry.tracer();
  for (std::size_t i = 0; i < tracer.retained(); ++i) {
    layers.insert(telemetry::LayerName(tracer.event(i).layer));
  }
  EXPECT_GE(layers.size(), 4u) << "layers seen: " << layers.size();
  EXPECT_EQ(tracer.dropped(), 0u);

  // Metrics accumulated across the run.
  EXPECT_GT(telemetry.metrics().size(), 0u);
}

}  // namespace
}  // namespace sds::eval
