// Attribution transparency pin: the interference ledger is a pure observer.
//
// Two guarantees, both load-bearing for the golden regression suite:
//   1. OFF is the pre-ledger simulator. Every hook the ledger added to the
//      cache/bus/machine hot paths is a null-pointer test when
//      MachineConfig::attribution is false, so the existing golden constants
//      (tests/integration/golden_regression_test.cpp) keep pinning the
//      pre-PR pipeline unchanged.
//   2. ON changes nothing observable. Enabling the ledger on the SAME seeded
//      detection run must reproduce the identical detection summary and the
//      bit-identical audit stream — attribution only remembers more, it
//      never perturbs a single sample or alarm.
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "telemetry/telemetry.h"

namespace sds::eval {
namespace {

// FNV-1a over every audit record (doubles by bit pattern), as in the golden
// regression test: any numeric drift anywhere in the pipeline changes it.
std::uint64_t HashAudit(const telemetry::Telemetry& telemetry) {
  std::uint64_t hash = 1469598103934665603ull;
  auto bytes = [&hash](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ull;
    }
  };
  auto u64 = [&bytes](std::uint64_t v) { bytes(&v, sizeof v); };
  auto f64 = [&u64](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  };
  for (const auto& rec : telemetry.audit().records()) {
    u64(static_cast<std::uint64_t>(rec.tick));
    bytes(rec.detector, std::strlen(rec.detector));
    bytes(rec.check, std::strlen(rec.check));
    bytes(rec.channel, std::strlen(rec.channel));
    f64(rec.value);
    f64(rec.lower);
    f64(rec.upper);
    f64(rec.margin);
    u64(rec.violation ? 1 : 0);
    u64(static_cast<std::uint64_t>(rec.consecutive));
    u64(rec.alarm ? 1 : 0);
  }
  return hash;
}

struct RunFingerprint {
  bool detected = false;
  Tick delay = -1;
  int false_positive_intervals = -1;
  std::uint64_t audit_records = 0;
  std::uint64_t audit_hash = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint RunCell(const std::string& app, AttackKind attack, Scheme scheme,
                   std::uint64_t seed, bool attribution) {
  telemetry::Telemetry telemetry;
  telemetry.tracer().DisableAllLayers();
  DetectionRunConfig cfg;
  cfg.app = app;
  cfg.attack = attack;
  cfg.scheme = scheme;
  cfg.profile_ticks = 2000;
  cfg.clean_ticks = 2000;
  cfg.attack_ticks = 3000;
  cfg.scenario.machine.telemetry = &telemetry;
  cfg.scenario.machine.attribution = attribution;
  const DetectionRunResult r = RunDetectionRun(cfg, seed);
  RunFingerprint f;
  f.detected = r.detected;
  f.delay = r.detection_delay_ticks.value_or(-1);
  f.false_positive_intervals = r.false_positive_intervals;
  f.audit_records = telemetry.audit().size();
  f.audit_hash = HashAudit(telemetry);
  return f;
}

TEST(AttributionTransparencyTest, SdsBusLockRunIsBitIdentical) {
  EXPECT_EQ(RunCell("kmeans", AttackKind::kBusLock, Scheme::kSds, 42, false),
            RunCell("kmeans", AttackKind::kBusLock, Scheme::kSds, 42, true));
}

TEST(AttributionTransparencyTest, SdsCleansingRunIsBitIdentical) {
  EXPECT_EQ(
      RunCell("terasort", AttackKind::kLlcCleansing, Scheme::kSds, 11, false),
      RunCell("terasort", AttackKind::kLlcCleansing, Scheme::kSds, 11, true));
}

TEST(AttributionTransparencyTest, KstestRunIsBitIdentical) {
  EXPECT_EQ(RunCell("bayes", AttackKind::kBusLock, Scheme::kKsTest, 7, false),
            RunCell("bayes", AttackKind::kBusLock, Scheme::kKsTest, 7, true));
}

}  // namespace
}  // namespace sds::eval
