// Integration: the Section 3 measurement-study phenomenology must EMERGE
// from the simulated mechanisms for every catalog application.
#include <gtest/gtest.h>

#include "detect/profile.h"
#include "eval/experiment.h"
#include "signal/period_detect.h"
#include "stats/correlation.h"
#include "signal/moving_average.h"
#include "stats/descriptive.h"
#include "workloads/catalog.h"

namespace sds::eval {
namespace {

struct StagePair {
  std::vector<double> before;
  std::vector<double> after;
};

StagePair SplitChannel(const std::vector<pcm::PcmSample>& samples,
                       Tick attack_start, pcm::Channel channel) {
  StagePair p;
  for (const auto& s : samples) {
    auto& dst = (static_cast<Tick>(p.before.size() + p.after.size()) <
                 attack_start)
                    ? p.before
                    : p.after;
    dst.push_back(pcm::SampleValue(s, channel));
  }
  return p;
}

class MeasurementStudyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MeasurementStudyTest, BusLockDropsAccessNum) {
  // Observation (1), first half: EVERY application suffers a significant
  // AccessNum decrease under the bus locking attack.
  const std::string app = GetParam();
  const auto samples =
      RunMeasurementStudy(app, AttackKind::kBusLock, 8000, 4000, 7);
  const auto split = SplitChannel(samples, 4000, pcm::Channel::kAccessNum);
  const double before = Mean(split.before);
  const double after = Mean(split.after);
  EXPECT_LT(after, 0.8 * before) << app;
}

TEST_P(MeasurementStudyTest, CleansingRaisesMissNum) {
  // Observation (1), second half: EVERY application suffers a significant
  // MissNum increase under the LLC cleansing attack.
  const std::string app = GetParam();
  const auto samples =
      RunMeasurementStudy(app, AttackKind::kLlcCleansing, 8000, 4000, 8);
  const auto split = SplitChannel(samples, 4000, pcm::Channel::kMissNum);
  const double before = Mean(split.before);
  const double after = Mean(split.after);
  EXPECT_GT(after, 1.2 * before) << app;
}

INSTANTIATE_TEST_SUITE_P(AllApps, MeasurementStudyTest,
                         ::testing::Values("bayes", "svm", "kmeans", "pca",
                                           "aggregation", "join", "scan",
                                           "terasort", "pagerank", "facenet"));

class PeriodicAppTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PeriodicAppTest, PeriodStretchesUnderAttack) {
  // Observation (2): periodic applications show prolonged periodicity under
  // both attacks. Verified for the bus locking attack (the stronger case).
  const std::string app = GetParam();
  detect::DetectorParams params;
  const auto samples =
      RunMeasurementStudy(app, AttackKind::kBusLock, 24000, 12000, 9);
  const auto access =
      detect::ChannelSeries(samples, pcm::Channel::kAccessNum);
  const std::vector<double> before(access.begin(), access.begin() + 12000);
  const std::vector<double> after(access.begin() + 12000, access.end());

  const auto ma_before =
      MovingAverageSeries(before, params.window, params.step);
  const auto ma_after = MovingAverageSeries(after, params.window, params.step);
  const auto p_before = DetectPeriod(ma_before);
  ASSERT_TRUE(p_before.has_value()) << app;
  const auto p_after = DetectPeriod(ma_after);
  if (p_after.has_value()) {
    EXPECT_GT(p_after->period, 1.15 * p_before->period) << app;
  }
  // The pattern being destroyed outright (no period found) also satisfies
  // the observation's detection-relevant consequence.
}

INSTANTIATE_TEST_SUITE_P(PeriodicApps, PeriodicAppTest,
                         ::testing::Values("pca", "facenet"));

TEST(MeasurementStudyCorrelationTest, CorrelationDoesNotSeparateAttack) {
  // Section 3.4's negative result: Pearson correlation between consecutive
  // segments does not consistently fall once the attack starts.
  const auto samples =
      RunMeasurementStudy("kmeans", AttackKind::kBusLock, 8000, 4000, 10);
  const auto access =
      detect::ChannelSeries(samples, pcm::Channel::kAccessNum);
  const std::vector<double> a(access.begin(), access.begin() + 2000);
  const std::vector<double> b(access.begin() + 2000, access.begin() + 4000);
  const std::vector<double> c(access.begin() + 4000, access.begin() + 6000);
  const std::vector<double> d(access.begin() + 6000, access.begin() + 8000);
  const double clean_corr = std::abs(PearsonCorrelation(a, b));
  const double attack_corr = std::abs(PearsonCorrelation(c, d));
  // Both correlations are small and do not differ by a usable margin.
  EXPECT_LT(clean_corr, 0.5);
  EXPECT_LT(std::abs(clean_corr - attack_corr), 0.5);
}

}  // namespace
}  // namespace sds::eval
