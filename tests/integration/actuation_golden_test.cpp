// Actuation transparency pin.
//
// The actuation-plane rework routes every mitigation through the Actuator
// seam with retry / escalation / verification machinery wrapped around it.
// This test proves the seam is bit-transparent when the fault plan is null:
// the full detect -> alarm -> mitigate pipeline produces IDENTICAL alarm
// ticks, victim placements, audit streams (hashed field-by-field) and event
// counts to the pre-actuation-plane engine. The constants were captured from
// the one-shot MitigationEngine before the rework; drift here is a behavior
// change in the default (fault-free) control plane and must be justified,
// not re-golded casually.
#include <cstdint>
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "attacks/bus_lock_attacker.h"
#include "attacks/scheduled_workload.h"
#include "cluster/mitigation.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "telemetry/telemetry.h"
#include "workloads/catalog.h"

namespace sds::eval {
namespace {

// FNV-1a over the fields of every audit record, in append order (same scheme
// as golden_regression_test.cpp).
class AuditHasher {
 public:
  void Bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Cstr(const char* s) { Bytes(s, std::strlen(s)); }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

struct GoldenSummary {
  Tick alarm_tick = -1;
  Tick mitigation_tick = kInvalidTick;
  cluster::MitigationPolicy applied = cluster::MitigationPolicy::kNone;
  int victim_host = -1;
  std::uint64_t victim_id = 0;
  std::uint64_t audit_records = 0;
  std::uint64_t audit_hash = 0;
  std::uint64_t emitted = 0;
  std::uint64_t accesses = 0;
};

GoldenSummary RunGolden(cluster::MitigationPolicy policy, bool attribute,
                        std::uint64_t seed) {
  telemetry::Telemetry telemetry;

  detect::DetectorParams params;
  ScenarioConfig base;
  base.app = "kmeans";
  const auto clean = CollectCleanSamples(base, 4000, seed + 1);
  const auto profile = detect::BuildSdsProfile(clean, params);

  cluster::HostConfig host;
  host.machine.telemetry = &telemetry;
  cluster::Cluster cl(2, host, seed);
  const Tick attack_start = 3000;
  const cluster::VmRef victim =
      cl.Deploy(0, "victim", [] { return workloads::MakeApp("kmeans"); });
  const cluster::VmRef attacker = cl.Deploy(0, "attacker", [attack_start] {
    return std::make_unique<attacks::ScheduledWorkload>(
        std::make_unique<attacks::BusLockAttacker>(attacks::BusLockConfig{}),
        attack_start, -1);
  });
  for (int i = 0; i < 3; ++i) {
    cl.Deploy(0, "benign", [] { return workloads::MakeBenignUtility(); });
  }

  detect::SdsDetector detector(cl.hypervisor(0), victim.id, profile, params,
                               detect::SdsMode::kCombined);
  // Legacy constructor: null fault plan, no verification, no rollback. Must
  // reproduce the one-shot engine bit-for-bit.
  cluster::MitigationEngine engine(cl, victim, policy, /*spare=*/1);

  GoldenSummary g;
  for (Tick t = 0; t < attack_start; ++t) {
    cl.RunTick();
    detector.OnTick();
    engine.OnTick();
  }
  for (Tick t = 0; t < 6000; ++t) {
    cl.RunTick();
    detector.OnTick();
    engine.OnTick();
    if (detector.attack_active()) {
      g.alarm_tick = cl.now();
      break;
    }
  }
  if (g.alarm_tick >= 0) {
    engine.OnAlarm(attribute ? attacker.id : 0);
  }
  // The capture run ticked the bare cluster after the alarm; the engine is
  // settled by then, so OnTick must stay inert (part of what's pinned).
  for (Tick t = 0; t < 2000; ++t) {
    cl.RunTick();
    engine.OnTick();
  }

  EXPECT_EQ(engine.state(), cluster::MitigationState::kSettled);
  EXPECT_EQ(engine.settled_tick(), engine.mitigation_tick());
  EXPECT_EQ(engine.stats().retries, 0u);
  EXPECT_EQ(engine.stats().escalations, 0u);

  g.mitigation_tick = engine.mitigation_tick();
  g.applied = engine.applied_policy();
  g.victim_host = engine.victim().host;
  g.victim_id = engine.victim().id;
  g.audit_records = telemetry.audit().size();
  AuditHasher h;
  for (const auto& rec : telemetry.audit().records()) {
    h.U64(static_cast<std::uint64_t>(rec.tick));
    h.Cstr(rec.detector);
    h.Cstr(rec.check);
    h.Cstr(rec.channel);
    h.F64(rec.value);
    h.F64(rec.lower);
    h.F64(rec.upper);
    h.F64(rec.margin);
    h.U64(rec.violation ? 1 : 0);
    h.U64(static_cast<std::uint64_t>(rec.consecutive));
    h.U64(rec.alarm ? 1 : 0);
  }
  g.audit_hash = h.hash();
  g.emitted = telemetry.tracer().emitted();
  g.accesses = cl.counters(engine.victim()).llc_accesses;
  return g;
}

TEST(ActuationGoldenTest, MigrateVictimSeed42) {
  const GoldenSummary g =
      RunGolden(cluster::MitigationPolicy::kMigrateVictim, false, 42);
  EXPECT_EQ(g.alarm_tick, 4550);
  EXPECT_EQ(g.mitigation_tick, 4550);
  EXPECT_EQ(g.applied, cluster::MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(g.victim_host, 1);
  EXPECT_EQ(g.victim_id, 1u);
  EXPECT_EQ(g.audit_records, 177u);
  EXPECT_EQ(g.audit_hash, 18261495189989815477ull);
  EXPECT_EQ(g.emitted, 1115516u);
  EXPECT_EQ(g.accesses, 982730u);
}

TEST(ActuationGoldenTest, QuarantineAttributedSeed42) {
  const GoldenSummary g =
      RunGolden(cluster::MitigationPolicy::kQuarantineAttacker, true, 42);
  EXPECT_EQ(g.alarm_tick, 4550);
  EXPECT_EQ(g.mitigation_tick, 4550);
  EXPECT_EQ(g.applied, cluster::MitigationPolicy::kQuarantineAttacker);
  EXPECT_EQ(g.victim_host, 0);
  EXPECT_EQ(g.victim_id, 1u);
  EXPECT_EQ(g.audit_hash, 16051581706462009017ull);
  EXPECT_EQ(g.emitted, 533992u);
  EXPECT_EQ(g.accesses, 2873980u);
}

TEST(ActuationGoldenTest, QuarantineUnattributedFallsBackSeed42) {
  const GoldenSummary g =
      RunGolden(cluster::MitigationPolicy::kQuarantineAttacker, false, 42);
  EXPECT_EQ(g.alarm_tick, 4550);
  EXPECT_EQ(g.mitigation_tick, 4550);
  // Unattributed quarantine falls back to migrating the victim; pinned to
  // match the migrate-victim run exactly.
  EXPECT_EQ(g.applied, cluster::MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(g.victim_host, 1);
  EXPECT_EQ(g.audit_hash, 16582245344652577492ull);
  EXPECT_EQ(g.emitted, 1115516u);
  EXPECT_EQ(g.accesses, 982730u);
}

}  // namespace
}  // namespace sds::eval
