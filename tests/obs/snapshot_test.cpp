// Detector snapshot/restore (DESIGN.md §13): the envelope validation ladder
// (magic -> version -> kind -> fingerprint -> checksum -> field stream) and
// the round-trip pin — a detector restored mid-run into the same
// still-running world reproduces the un-restarted run's alarm sequence
// bit-identically.
#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/snapshot.h"
#include "detect/kstest_detector.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/scenario.h"

namespace sds::obs {
namespace {

using detect::DetectorParams;
using detect::KsTestDetector;
using detect::KsTestParams;
using detect::SdsDetector;
using detect::SdsMode;
using detect::SdsProfile;

// ---------------------------------------------------------------------------
// Envelope layer
// ---------------------------------------------------------------------------

TEST(SnapshotEnvelopeTest, SealOpenRoundTrip) {
  const std::string blob = SealSnapshot("kind", 42, "payload-bytes");
  std::string payload;
  EXPECT_EQ(OpenSnapshot(blob, "kind", 42, &payload), SnapshotStatus::kOk);
  EXPECT_EQ(payload, "payload-bytes");
}

TEST(SnapshotEnvelopeTest, RejectsNonSnapshots) {
  std::string payload;
  EXPECT_EQ(OpenSnapshot("", "k", 0, &payload), SnapshotStatus::kBadMagic);
  EXPECT_EQ(OpenSnapshot("not a snapshot at all", "k", 0, &payload),
            SnapshotStatus::kBadMagic);
  // Magic alone with a truncated header is still bad magic, not a crash.
  EXPECT_EQ(OpenSnapshot(std::string("SDSSNAP\0", 8), "k", 0, &payload),
            SnapshotStatus::kBadMagic);
}

TEST(SnapshotEnvelopeTest, RejectsOtherVersions) {
  // A blob sealed by a future release: same envelope shape, bumped version.
  std::string blob(std::string("SDSSNAP\0", 8));
  SnapshotWriter header;
  header.U32(kSnapshotVersion + 1);
  header.Str("kind");
  header.U64(0);
  header.U64(Fnv1a(""));
  header.U64(0);
  blob += header.data();
  std::string payload;
  EXPECT_EQ(OpenSnapshot(blob, "kind", 0, &payload),
            SnapshotStatus::kBadVersion);
}

TEST(SnapshotEnvelopeTest, RejectsWrongKindAndFingerprint) {
  const std::string blob = SealSnapshot("sds_detector", 42, "p");
  std::string payload;
  EXPECT_EQ(OpenSnapshot(blob, "kstest_detector", 42, &payload),
            SnapshotStatus::kBadKind);
  EXPECT_EQ(OpenSnapshot(blob, "sds_detector", 43, &payload),
            SnapshotStatus::kBadFingerprint);
}

TEST(SnapshotEnvelopeTest, RejectsCorruptedPayload) {
  std::string blob = SealSnapshot("kind", 7, "sensitive-payload");
  blob.back() ^= 0x01;  // flip one payload bit
  std::string payload;
  EXPECT_EQ(OpenSnapshot(blob, "kind", 7, &payload),
            SnapshotStatus::kBadChecksum);
}

TEST(SnapshotEnvelopeTest, RejectsBadPayloadLengths) {
  std::string payload;

  // A zero-length payload cannot be a field stream: rejected even though
  // its declared length and checksum are self-consistent.
  EXPECT_EQ(OpenSnapshot(SealSnapshot("kind", 7, ""), "kind", 7, &payload),
            SnapshotStatus::kBadLength);

  // Over-declared: the blob lost payload bytes (torn write). The length
  // mismatch is reported — BEFORE any checksum math, so a forged length can
  // never choose which bytes get summed.
  std::string torn = SealSnapshot("kind", 7, "sensitive-payload");
  torn.resize(torn.size() - 3);
  EXPECT_EQ(OpenSnapshot(torn, "kind", 7, &payload),
            SnapshotStatus::kBadLength);

  // Under-declared: trailing bytes after the declared payload are not
  // silently ignored (they would escape the checksum entirely).
  std::string padded = SealSnapshot("kind", 7, "sensitive-payload");
  padded += "extra";
  EXPECT_EQ(OpenSnapshot(padded, "kind", 7, &payload),
            SnapshotStatus::kBadLength);

  // The ladder order is fixed: a blob that is BOTH torn and bit-flipped
  // reports the length rung, not the checksum rung.
  std::string both = SealSnapshot("kind", 7, "sensitive-payload");
  both.back() ^= 0x01;
  both.resize(both.size() - 2);
  EXPECT_EQ(OpenSnapshot(both, "kind", 7, &payload),
            SnapshotStatus::kBadLength);
}

TEST(SnapshotEnvelopeTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/sds_snapshot_test.bin";
  const std::string blob = SealSnapshot("kind", 1, std::string("a\0b", 3));
  ASSERT_TRUE(WriteSnapshotFile(path, blob));
  const auto read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, blob);
  EXPECT_FALSE(ReadSnapshotFile(path + ".missing").has_value());
}

// ---------------------------------------------------------------------------
// SdsDetector round trip
// ---------------------------------------------------------------------------

struct SdsRig {
  eval::Scenario scenario;
  SdsProfile profile;
  DetectorParams params;

  SdsRig(const std::string& app, eval::AttackKind attack, Tick attack_start,
         std::uint64_t seed) {
    eval::ScenarioConfig base;
    base.app = app;
    const auto clean = eval::CollectCleanSamples(base, 12000, seed + 1000);
    profile = BuildSdsProfile(clean, params);

    eval::ScenarioConfig cfg;
    cfg.app = app;
    cfg.attack = attack;
    cfg.attack_start = attack_start;
    cfg.seed = seed;
    scenario = eval::BuildScenario(cfg);
  }

  std::unique_ptr<SdsDetector> MakeDetector() {
    return std::make_unique<SdsDetector>(*scenario.hypervisor,
                                         scenario.victim, profile, params,
                                         SdsMode::kCombined);
  }
};

// Runs `ticks` ticks, appending attack_active() after each to `trace`.
template <typename Detector>
void RunTrace(eval::Scenario& scenario, Detector& detector, Tick ticks,
              std::vector<bool>* trace) {
  for (Tick t = 0; t < ticks; ++t) {
    scenario.hypervisor->RunTick();
    detector.OnTick();
    trace->push_back(detector.attack_active());
  }
}

TEST(SdsSnapshotTest, RoundTripReproducesAlarmSequence) {
  constexpr Tick kTotal = 8000;
  constexpr Tick kRestart = 3000;  // mid-run, after the attack started

  // Reference: one detector runs the whole scenario.
  SdsRig ref_rig("bayes", eval::AttackKind::kBusLock, 2000, 31);
  auto reference = ref_rig.MakeDetector();
  std::vector<bool> ref_trace;
  RunTrace(ref_rig.scenario, *reference, kTotal, &ref_trace);
  ASSERT_GE(reference->alarm_events(), 1u);  // scenario actually alarms

  // Restarted: identical scenario; snapshot at the boundary, destroy the
  // detector (a monitoring-service crash), restore into a fresh one.
  SdsRig rig("bayes", eval::AttackKind::kBusLock, 2000, 31);
  auto first = rig.MakeDetector();
  std::vector<bool> trace;
  RunTrace(rig.scenario, *first, kRestart, &trace);
  const std::string blob = SnapshotSdsDetector(*first);
  first.reset();

  auto second = rig.MakeDetector();
  ASSERT_EQ(RestoreSdsDetector(blob, second.get()), SnapshotStatus::kOk);
  RunTrace(rig.scenario, *second, kTotal - kRestart, &trace);

  EXPECT_EQ(trace, ref_trace);
  EXPECT_EQ(second->alarm_events(), reference->alarm_events());
  EXPECT_EQ(second->last_alarm_trigger_tick(),
            reference->last_alarm_trigger_tick());
  EXPECT_EQ(second->retraction_events(), reference->retraction_events());
}

TEST(SdsSnapshotTest, RefusesDifferentConfiguration) {
  SdsRig rig("bayes", eval::AttackKind::kNone, 0, 32);
  auto det = rig.MakeDetector();
  const std::string blob = SnapshotSdsDetector(*det);

  // Same scenario, different detector parameters -> different fingerprint.
  SdsRig other("bayes", eval::AttackKind::kNone, 0, 32);
  other.params.boundary_k += 1.0;
  auto mismatched = other.MakeDetector();
  EXPECT_EQ(RestoreSdsDetector(blob, mismatched.get()),
            SnapshotStatus::kBadFingerprint);

  // A KStest restore refuses an SDS blob by kind.
  KsTestDetector ks(*rig.scenario.hypervisor, rig.scenario.victim,
                    KsTestParams{});
  EXPECT_EQ(RestoreKsTestDetector(blob, &ks), SnapshotStatus::kBadKind);
}

TEST(SdsSnapshotTest, CorruptFieldStreamIsRejected) {
  SdsRig rig("bayes", eval::AttackKind::kNone, 0, 33);
  auto det = rig.MakeDetector();

  // A well-formed envelope (right kind, fingerprint, checksum) around a
  // payload that is not an SdsDetector field stream.
  SnapshotWriter bogus;
  bogus.U32(1);
  const std::string blob =
      SealSnapshot("sds_detector", det->ConfigFingerprint(), bogus.data());
  EXPECT_EQ(RestoreSdsDetector(blob, det.get()), SnapshotStatus::kCorrupt);
}

// ---------------------------------------------------------------------------
// KsTestDetector round trip
// ---------------------------------------------------------------------------

KsTestParams FastKsParams() {
  KsTestParams p;
  p.l_r = 600;
  p.w_r = 50;
  p.l_m = 100;
  p.w_m = 50;
  p.initial_offset = p.l_r - 1;
  return p;
}

struct KsRig {
  eval::Scenario scenario;

  KsRig(const std::string& app, eval::AttackKind attack, Tick attack_start,
        std::uint64_t seed) {
    eval::ScenarioConfig cfg;
    cfg.app = app;
    cfg.attack = attack;
    cfg.attack_start = attack_start;
    cfg.seed = seed;
    scenario = eval::BuildScenario(cfg);
  }

  std::unique_ptr<KsTestDetector> MakeDetector() {
    return std::make_unique<KsTestDetector>(*scenario.hypervisor,
                                            scenario.victim, FastKsParams());
  }
};

TEST(KsSnapshotTest, RoundTripReproducesDecisions) {
  constexpr Tick kTotal = 6000;
  // An odd boundary so the snapshot lands mid-collection, exercising the
  // staging buffers and the source-running re-establishment on restore.
  constexpr Tick kRestart = 2725;

  KsRig ref_rig("bayes", eval::AttackKind::kBusLock, 2000, 41);
  auto reference = ref_rig.MakeDetector();
  std::vector<bool> ref_trace;
  RunTrace(ref_rig.scenario, *reference, kTotal, &ref_trace);
  ASSERT_GE(reference->alarm_events(), 1u);

  KsRig rig("bayes", eval::AttackKind::kBusLock, 2000, 41);
  auto first = rig.MakeDetector();
  std::vector<bool> trace;
  RunTrace(rig.scenario, *first, kRestart, &trace);
  const std::string blob = SnapshotKsTestDetector(*first);
  const std::size_t decisions_before = first->decisions().size();
  first.reset();

  auto second = rig.MakeDetector();
  ASSERT_EQ(RestoreKsTestDetector(blob, second.get()), SnapshotStatus::kOk);
  RunTrace(rig.scenario, *second, kTotal - kRestart, &trace);

  EXPECT_EQ(trace, ref_trace);
  EXPECT_EQ(second->alarm_events(), reference->alarm_events());
  EXPECT_EQ(second->last_alarm_trigger_tick(),
            reference->last_alarm_trigger_tick());
  EXPECT_EQ(second->identified_attacker(), reference->identified_attacker());

  // The restored detector logs decisions from empty; its log must equal the
  // post-restart suffix of the reference log, decision for decision.
  const auto& ref_decisions = reference->decisions();
  const auto& post = second->decisions();
  ASSERT_EQ(decisions_before + post.size(), ref_decisions.size());
  for (std::size_t i = 0; i < post.size(); ++i) {
    const auto& a = post[i];
    const auto& b = ref_decisions[decisions_before + i];
    EXPECT_EQ(a.tick, b.tick);
    EXPECT_EQ(a.rejected_access, b.rejected_access);
    EXPECT_EQ(a.rejected_miss, b.rejected_miss);
    EXPECT_EQ(a.statistic_access, b.statistic_access);
    EXPECT_EQ(a.statistic_miss, b.statistic_miss);
  }
}

TEST(KsSnapshotTest, RestoreBeforeReferenceCompletes) {
  constexpr Tick kTotal = 3000;
  constexpr Tick kRestart = 30;  // mid reference collection

  KsRig ref_rig("bayes", eval::AttackKind::kNone, 0, 42);
  auto reference = ref_rig.MakeDetector();
  std::vector<bool> ref_trace;
  RunTrace(ref_rig.scenario, *reference, kTotal, &ref_trace);

  KsRig rig("bayes", eval::AttackKind::kNone, 0, 42);
  auto first = rig.MakeDetector();
  std::vector<bool> trace;
  RunTrace(rig.scenario, *first, kRestart, &trace);
  EXPECT_FALSE(first->has_reference());
  const std::string blob = SnapshotKsTestDetector(*first);
  first.reset();

  auto second = rig.MakeDetector();
  ASSERT_EQ(RestoreKsTestDetector(blob, second.get()), SnapshotStatus::kOk);
  RunTrace(rig.scenario, *second, kTotal - kRestart, &trace);

  EXPECT_EQ(trace, ref_trace);
  EXPECT_TRUE(second->has_reference());
  EXPECT_EQ(second->decisions().size(), reference->decisions().size());
}

TEST(KsSnapshotTest, RefusesDifferentParams) {
  KsRig rig("bayes", eval::AttackKind::kNone, 0, 43);
  auto det = rig.MakeDetector();
  const std::string blob = SnapshotKsTestDetector(*det);

  KsTestParams other = FastKsParams();
  other.alpha /= 2.0;
  KsTestDetector mismatched(*rig.scenario.hypervisor, rig.scenario.victim,
                            other);
  EXPECT_EQ(RestoreKsTestDetector(blob, &mismatched),
            SnapshotStatus::kBadFingerprint);
}

}  // namespace
}  // namespace sds::obs
