// FleetRollup: the sharded-merge determinism pin (bit-identical rollup
// stream at any shard count), window sealing semantics, and the
// fixed-memory ceiling / drop accounting.
#include "obs/rollup.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "telemetry/tracer.h"

namespace sds::obs {
namespace {

// A deterministic sample stream over `hosts x tenants x metrics` series:
// values depend only on (key, tick) so any two generations agree.
std::vector<ObsSample> TestStream(std::uint32_t hosts, std::uint32_t tenants,
                                  std::uint32_t metrics, Tick ticks,
                                  std::uint64_t seed) {
  std::vector<ObsSample> out;
  Rng rng(seed);
  for (Tick t = 0; t < ticks; ++t) {
    for (std::uint32_t h = 0; h < hosts; ++h) {
      for (std::uint32_t ten = 0; ten < tenants; ++ten) {
        for (std::uint32_t m = 0; m < metrics; ++m) {
          ObsSample s;
          s.tick = t;
          s.key = {h, ten, m};
          s.value = 1.0 + rng.UniformDouble() * 1000.0;
          out.push_back(s);
        }
      }
    }
  }
  return out;
}

FleetRollup MakeRollup(std::uint32_t shards, Tick window_ticks = 100,
                       std::size_t max_series = 4096) {
  RollupConfig config;
  config.window_ticks = window_ticks;
  config.shards = shards;
  config.max_series_per_shard = max_series;
  FleetRollup rollup(config);
  rollup.RegisterMetric("m0");
  rollup.RegisterMetric("m1");
  rollup.RegisterMetric("m2");
  return rollup;
}

bool RowsIdentical(const std::vector<RollupRow>& a,
                   const std::vector<RollupRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const RollupRow& x = a[i];
    const RollupRow& y = b[i];
    if (x.window != y.window || x.key != y.key || x.count != y.count ||
        x.sum != y.sum || x.min != y.min || x.max != y.max ||
        x.p50 != y.p50 || x.p95 != y.p95 || x.p99 != y.p99) {
      return false;
    }
  }
  return true;
}

TEST(FleetRollupTest, ShardedMergeBitIdenticalToSingleShard) {
  const auto stream = TestStream(4, 3, 3, 500, 21);
  FleetRollup reference = MakeRollup(1);
  for (const ObsSample& s : stream) reference.Ingest(s);
  reference.BarrierMerge(600);

  for (std::uint32_t shards : {2u, 4u, 8u}) {
    FleetRollup sharded = MakeRollup(shards);
    for (const ObsSample& s : stream) sharded.Ingest(s);
    sharded.BarrierMerge(600);
    EXPECT_TRUE(RowsIdentical(sharded.completed(), reference.completed()))
        << shards << " shards";
    EXPECT_EQ(sharded.ingested(), reference.ingested());
  }
}

TEST(FleetRollupTest, IncrementalBarriersMatchOneFinalBarrier) {
  const auto stream = TestStream(3, 2, 3, 400, 22);
  FleetRollup once = MakeRollup(4);
  for (const ObsSample& s : stream) once.Ingest(s);
  once.BarrierMerge(500);

  FleetRollup incremental = MakeRollup(4);
  Tick prev_tick = -1;
  for (const ObsSample& s : stream) {
    // Barrier between ticks whenever a window boundary was crossed (a
    // barrier must never split one tick's samples: anything still to come
    // for the sealed window would be dropped as late).
    if (s.tick != prev_tick && s.tick % 100 == 0 && s.tick > 0) {
      incremental.BarrierMerge(s.tick);
    }
    prev_tick = s.tick;
    incremental.Ingest(s);
  }
  incremental.BarrierMerge(500);
  EXPECT_TRUE(RowsIdentical(incremental.completed(), once.completed()));
}

TEST(FleetRollupTest, BarrierSealsOnlyCompletedWindows) {
  FleetRollup rollup = MakeRollup(2, 100);
  ObsSample s;
  s.key = {0, 0, 0};
  s.tick = 50;
  s.value = 1.0;
  rollup.Ingest(s);
  s.tick = 150;
  s.value = 2.0;
  rollup.Ingest(s);

  // Barrier at tick 100: only window 0 is complete.
  EXPECT_EQ(rollup.BarrierMerge(100), 1u);
  ASSERT_EQ(rollup.completed().size(), 1u);
  EXPECT_EQ(rollup.completed()[0].window, 0);
  EXPECT_EQ(rollup.completed()[0].count, 1u);
  EXPECT_EQ(rollup.completed()[0].sum, 1.0);

  // The live window seals at the next barrier.
  EXPECT_EQ(rollup.BarrierMerge(200), 1u);
  ASSERT_EQ(rollup.completed().size(), 2u);
  EXPECT_EQ(rollup.completed()[1].window, 1);
  EXPECT_EQ(rollup.completed()[1].sum, 2.0);
}

TEST(FleetRollupTest, RollOverBeforeBarrierLosesNothing) {
  // A series rolls from window 0 to window 2 with no intervening barrier:
  // both completed windows must still surface at the next barrier.
  FleetRollup rollup = MakeRollup(1, 100);
  ObsSample s;
  s.key = {1, 1, 1};
  s.tick = 10;
  s.value = 1.0;
  rollup.Ingest(s);
  s.tick = 110;
  s.value = 2.0;
  rollup.Ingest(s);
  s.tick = 210;
  s.value = 3.0;
  rollup.Ingest(s);

  EXPECT_EQ(rollup.BarrierMerge(300), 3u);
  ASSERT_EQ(rollup.completed().size(), 3u);
  EXPECT_EQ(rollup.completed()[0].sum, 1.0);
  EXPECT_EQ(rollup.completed()[1].sum, 2.0);
  EXPECT_EQ(rollup.completed()[2].sum, 3.0);
  EXPECT_EQ(rollup.dropped_late(), 0u);
  EXPECT_EQ(rollup.dropped_samples(), 0u);
}

TEST(FleetRollupTest, LateSamplesAreDroppedAndCounted) {
  FleetRollup rollup = MakeRollup(1, 100);
  ObsSample s;
  s.key = {0, 0, 0};
  s.tick = 250;
  s.value = 1.0;
  rollup.Ingest(s);
  rollup.BarrierMerge(300);  // windows < 3 sealed

  s.tick = 150;  // window 1: already merged
  rollup.Ingest(s);
  EXPECT_EQ(rollup.dropped_late(), 1u);
  // The late sample must not resurrect a sealed window.
  EXPECT_EQ(rollup.BarrierMerge(400), 0u);
}

TEST(FleetRollupTest, SeriesCeilingDropsNewKeysLoudly) {
  FleetRollup rollup = MakeRollup(1, 100, /*max_series=*/2);
  ObsSample s;
  s.tick = 0;
  s.value = 1.0;
  s.key = {0, 0, 0};
  rollup.Ingest(s);
  s.key = {0, 0, 1};
  rollup.Ingest(s);
  s.key = {0, 0, 2};  // third series: over the ceiling
  rollup.Ingest(s);
  rollup.Ingest(s);

  EXPECT_EQ(rollup.live_series(), 2u);
  EXPECT_EQ(rollup.dropped_series(), 1u);
  EXPECT_EQ(rollup.dropped_samples(), 2u);
  // Admitted series are unaffected.
  EXPECT_EQ(rollup.BarrierMerge(100), 2u);
}

TEST(FleetRollupTest, MemoryCeilingScalesWithLiveSeriesOnly) {
  FleetRollup rollup = MakeRollup(1, 100);
  ObsSample s;
  s.key = {0, 0, 0};
  s.value = 1.0;
  rollup.Ingest(s);
  const std::size_t one_series = rollup.ApproxMemoryBytes();

  // 10x the samples into the same series: no growth.
  for (int i = 0; i < 10; ++i) {
    s.tick = i;
    rollup.Ingest(s);
  }
  EXPECT_EQ(rollup.ApproxMemoryBytes(), one_series);

  // A second series doubles the live-state footprint.
  s.key = {0, 0, 1};
  rollup.Ingest(s);
  EXPECT_GE(rollup.ApproxMemoryBytes(), 2 * one_series);
}

TEST(FleetRollupTest, RegisterMetricIsIdempotent) {
  FleetRollup rollup = MakeRollup(1);
  EXPECT_EQ(rollup.RegisterMetric("m1"), 1u);
  EXPECT_EQ(rollup.RegisterMetric("fresh"), 3u);
  EXPECT_EQ(rollup.RegisterMetric("fresh"), 3u);
  EXPECT_EQ(rollup.metric_names().size(), 4u);
}

TEST(FleetRollupTest, WriteJsonlEmitsRowsAndStats) {
  FleetRollup rollup = MakeRollup(2, 100);
  ObsSample s;
  s.key = {3, 4, 0};
  s.tick = 10;
  s.value = 7.5;
  rollup.Ingest(s);
  rollup.BarrierMerge(200);

  std::ostringstream os;
  rollup.WriteJsonl(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"rollup\""), std::string::npos);
  EXPECT_NE(text.find("\"metric\":\"m0\""), std::string::npos);
  EXPECT_NE(text.find("\"host\":3"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"rollup_stats\""), std::string::npos);
  EXPECT_NE(text.find("\"ingested\":1"), std::string::npos);
}

TEST(FleetRollupTest, TracerAdapterFeedsRingAccounting) {
  telemetry::EventTracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.Emit(telemetry::TraceEvent{});
  }
  FleetRollup rollup = MakeRollup(1);
  IngestTracerStats(tracer, /*tick=*/0, /*host=*/1, /*tenant=*/2, &rollup);
  rollup.BarrierMerge(100);

  ASSERT_EQ(rollup.completed().size(), 2u);
  const MetricId emitted = rollup.RegisterMetric("tracer.emitted");
  const MetricId dropped = rollup.RegisterMetric("tracer.dropped");
  double emitted_value = -1.0;
  double dropped_value = -1.0;
  for (const RollupRow& r : rollup.completed()) {
    if (r.key.metric == emitted) emitted_value = r.sum;
    if (r.key.metric == dropped) dropped_value = r.sum;
  }
  EXPECT_EQ(emitted_value, 10.0);
  EXPECT_EQ(dropped_value, 6.0);
}

}  // namespace
}  // namespace sds::obs
