// QuantileSketch: the determinism and accuracy guarantees the rollup plane
// rests on — bit-identical state across insertion orders and shard splits,
// and the kRelativeErrorBound accuracy pin for values >= 1.
#include "obs/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace sds::obs {
namespace {

// Deterministic pseudo-random values in [lo, hi).
std::vector<double> TestValues(std::size_t n, double lo, double hi,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.UniformDouble(lo, hi));
  return out;
}

TEST(QuantileSketchTest, EmptySketch) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, InsertionOrderInvariant) {
  const std::vector<double> values = TestValues(5000, 0.0, 1e6, 7);
  QuantileSketch forward;
  for (double v : values) forward.Add(v);

  std::vector<double> reversed(values.rbegin(), values.rend());
  QuantileSketch backward;
  for (double v : reversed) backward.Add(v);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  QuantileSketch ordered;
  for (double v : sorted) ordered.Add(v);

  EXPECT_TRUE(forward.IdenticalTo(backward));
  EXPECT_TRUE(forward.IdenticalTo(ordered));
}

TEST(QuantileSketchTest, MergeMatchesSingleSketchAtAnySplit) {
  const std::vector<double> values = TestValues(4096, 1.0, 1e5, 11);
  QuantileSketch whole;
  for (double v : values) whole.Add(v);

  for (std::size_t parts : {2u, 3u, 8u, 16u}) {
    std::vector<QuantileSketch> shards(parts);
    for (std::size_t i = 0; i < values.size(); ++i) {
      shards[i % parts].Add(values[i]);
    }
    QuantileSketch merged;
    for (const QuantileSketch& s : shards) merged.Merge(s);
    EXPECT_TRUE(merged.IdenticalTo(whole)) << parts << " parts";
  }
}

TEST(QuantileSketchTest, MergeIsCommutative) {
  QuantileSketch a;
  QuantileSketch b;
  for (double v : TestValues(500, 1.0, 100.0, 3)) a.Add(v);
  for (double v : TestValues(500, 50.0, 5000.0, 4)) b.Add(v);
  QuantileSketch ab = a;
  ab.Merge(b);
  QuantileSketch ba = b;
  ba.Merge(a);
  EXPECT_TRUE(ab.IdenticalTo(ba));
}

TEST(QuantileSketchTest, RelativeErrorBoundHolds) {
  // Exact quantile by nearest rank on the sorted data, mirroring
  // QuantileSketch::Quantile's rank definition.
  const std::vector<double> values = TestValues(20000, 1.0, 2e6, 13);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  QuantileSketch sketch;
  for (double v : values) sketch.Add(v);

  for (double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    const double exact = sorted[rank];
    const double estimate = sketch.Quantile(q);
    EXPECT_LE(std::abs(estimate - exact) / exact,
              QuantileSketch::kRelativeErrorBound)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(QuantileSketchTest, SubUnitValuesLandInBucketZero) {
  QuantileSketch s;
  s.Add(0.0);
  s.Add(0.25);
  s.Add(0.999);
  s.Add(-5.0);                                      // negatives clamp
  s.Add(std::numeric_limits<double>::quiet_NaN());  // NaN clamps
  EXPECT_EQ(s.count(), 5u);
  // Everything below 1 reports bucket 0's midpoint representative.
  EXPECT_EQ(s.Quantile(0.0), s.Quantile(1.0));
  EXPECT_GT(s.Quantile(0.5), 0.0);
  EXPECT_LT(s.Quantile(0.5), 1.0);
}

TEST(QuantileSketchTest, MemoryIsFixed) {
  QuantileSketch s;
  const std::size_t before = QuantileSketch::MemoryBytes();
  for (double v : TestValues(100000, 0.0, 1e9, 17)) s.Add(v);
  EXPECT_EQ(QuantileSketch::MemoryBytes(), before);
  EXPECT_EQ(sizeof(QuantileSketch), QuantileSketch::MemoryBytes());
}

}  // namespace
}  // namespace sds::obs
