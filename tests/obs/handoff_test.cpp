// Warm detector-state handoff (src/obs/handoff.h): a detector packed on the
// source host and applied on the destination continues the un-migrated
// run's alarm sequence bit-identically; any envelope rejection is a LOUD
// cold start that leaves the destination detector untouched.
#include "obs/handoff.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "detect/kstest_detector.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/scenario.h"

namespace sds::obs {
namespace {

using detect::DetectorParams;
using detect::KsTestDetector;
using detect::KsTestParams;
using detect::SdsDetector;
using detect::SdsMode;
using detect::SdsProfile;

// Fast-deciding parameters so the scenario alarms within a short run.
DetectorParams FastParams() {
  DetectorParams params;
  params.window = 100;
  params.step = 25;
  params.h_c = 8;
  return params;
}

struct SdsRig {
  eval::Scenario scenario;
  SdsProfile profile;
  DetectorParams params = FastParams();

  SdsRig(Tick attack_start, std::uint64_t seed) {
    eval::ScenarioConfig base;
    base.app = "kmeans";
    const auto clean = eval::CollectCleanSamples(base, 3000, seed + 1000);
    profile = BuildSdsProfile(clean, params);

    eval::ScenarioConfig cfg;
    cfg.app = "kmeans";
    cfg.attack = eval::AttackKind::kBusLock;
    cfg.attack_start = attack_start;
    cfg.seed = seed;
    scenario = eval::BuildScenario(cfg);
  }

  std::unique_ptr<SdsDetector> MakeDetector() {
    return std::make_unique<SdsDetector>(*scenario.hypervisor,
                                         scenario.victim, profile, params,
                                         SdsMode::kCombined);
  }
};

template <typename Detector>
void RunTrace(eval::Scenario& scenario, Detector& detector, Tick ticks,
              std::vector<bool>* trace) {
  for (Tick t = 0; t < ticks; ++t) {
    scenario.hypervisor->RunTick();
    detector.OnTick();
    if (trace != nullptr) trace->push_back(detector.attack_active());
  }
}

TEST(HandoffTest, WarmHandoffContinuesAlarmSequenceBitIdentically) {
  constexpr Tick kTotal = 2600;
  constexpr Tick kMigrate = 1100;  // after the attack started

  SdsRig ref_rig(/*attack_start=*/800, /*seed=*/21);
  auto reference = ref_rig.MakeDetector();
  std::vector<bool> ref_trace;
  RunTrace(ref_rig.scenario, *reference, kTotal, &ref_trace);
  ASSERT_GE(reference->alarm_events(), 1u) << "scenario must actually alarm";

  // Identical world; the detector is packed at the migration boundary,
  // destroyed, and applied into a freshly-constructed one (the destination
  // incarnation), exactly as eval/hostchaos.cpp does on a migration.
  SdsRig rig(/*attack_start=*/800, /*seed=*/21);
  auto source = rig.MakeDetector();
  std::vector<bool> trace;
  RunTrace(rig.scenario, *source, kMigrate, &trace);
  const std::string blob = PackSdsHandoff(*source, kMigrate);
  source.reset();

  auto destination = rig.MakeDetector();
  const HandoffResult result = ApplySdsHandoff(blob, destination.get());
  EXPECT_TRUE(result.warm);
  EXPECT_EQ(result.status, SnapshotStatus::kOk);
  EXPECT_EQ(result.source_tick, kMigrate);
  RunTrace(rig.scenario, *destination, kTotal - kMigrate, &trace);

  EXPECT_EQ(trace, ref_trace);
  EXPECT_EQ(destination->alarm_events(), reference->alarm_events());
  EXPECT_EQ(destination->last_alarm_trigger_tick(),
            reference->last_alarm_trigger_tick());
}

TEST(HandoffTest, FingerprintMismatchIsLoudColdStart) {
  SdsRig rig(/*attack_start=*/800, /*seed=*/22);
  auto source = rig.MakeDetector();
  RunTrace(rig.scenario, *source, 600, nullptr);
  const std::string blob = PackSdsHandoff(*source, 600);

  // Destination configured differently (different boundary factor): the
  // envelope must reject at the fingerprint rung and the detector must stay
  // exactly as constructed — cold, no alarms, still functional.
  DetectorParams other = rig.params;
  other.boundary_k = rig.params.boundary_k * 2.0;
  const SdsProfile other_profile = BuildSdsProfile(
      eval::CollectCleanSamples([] {
        eval::ScenarioConfig base;
        base.app = "kmeans";
        return base;
      }(), 3000, 1022), other);
  auto destination = std::make_unique<SdsDetector>(
      *rig.scenario.hypervisor, rig.scenario.victim, other_profile, other,
      SdsMode::kCombined);
  const HandoffResult result = ApplySdsHandoff(blob, destination.get());
  EXPECT_FALSE(result.warm);
  EXPECT_EQ(result.status, SnapshotStatus::kBadFingerprint);
  EXPECT_EQ(destination->alarm_events(), 0u);
  EXPECT_FALSE(destination->attack_active());

  HandoffStats stats;
  stats.Count(result);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.warm, 0u);
  EXPECT_EQ(stats.cold_fingerprint, 1u);
  EXPECT_EQ(stats.cold_other, 0u);
}

TEST(HandoffTest, CorruptBlobIsLoudColdStart) {
  SdsRig rig(/*attack_start=*/800, /*seed=*/23);
  auto source = rig.MakeDetector();
  RunTrace(rig.scenario, *source, 400, nullptr);
  std::string blob = PackSdsHandoff(*source, 400);
  blob.back() ^= 0x01;

  auto destination = rig.MakeDetector();
  const HandoffResult result = ApplySdsHandoff(blob, destination.get());
  EXPECT_FALSE(result.warm);
  EXPECT_EQ(result.status, SnapshotStatus::kBadChecksum);
  EXPECT_EQ(destination->alarm_events(), 0u);

  HandoffStats stats;
  stats.Count(result);
  EXPECT_EQ(stats.cold_other, 1u);

  // Wrong kind: an SDS blob offered to a KsTest detector rejects at the
  // kind rung, never a misparse.
  KsTestDetector ks(*rig.scenario.hypervisor, rig.scenario.victim,
                    KsTestParams{});
  const HandoffResult cross =
      ApplyKsHandoff(PackSdsHandoff(*source, 400), &ks);
  EXPECT_FALSE(cross.warm);
  EXPECT_EQ(cross.status, SnapshotStatus::kBadKind);
}

TEST(HandoffTest, KsHandoffRoundTrips) {
  SdsRig rig(/*attack_start=*/800, /*seed=*/24);
  KsTestParams params;
  auto source = std::make_unique<KsTestDetector>(
      *rig.scenario.hypervisor, rig.scenario.victim, params);
  for (Tick t = 0; t < 500; ++t) {
    rig.scenario.hypervisor->RunTick();
    source->OnTick();
  }
  const std::string blob = PackKsHandoff(*source, 500);
  source.reset();

  KsTestDetector destination(*rig.scenario.hypervisor, rig.scenario.victim,
                             params);
  const HandoffResult result = ApplyKsHandoff(blob, &destination);
  EXPECT_TRUE(result.warm);
  EXPECT_EQ(result.status, SnapshotStatus::kOk);
  EXPECT_EQ(result.source_tick, 500);
}

}  // namespace
}  // namespace sds::obs
