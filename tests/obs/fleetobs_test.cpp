// eval::RunFleetObsSweep: end-to-end obs-plane pin at test scale — the
// sharded merge matches the single-shard reference, the SLO pack fires on
// the attacked fleet, and the precision/recall curve is sane.
#include "eval/fleetobs.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sds::eval {
namespace {

FleetObsConfig SmallConfig() {
  FleetObsConfig config;
  config.hosts = 4;
  config.tenants_per_host = 3;
  config.ticks = 900;
  config.window_ticks = 100;
  config.shards = 4;
  config.threads = 4;
  config.seed = 5;
  return config;
}

TEST(FleetObsSweepTest, ShardedMergeMatchesSingleShardReference) {
  const FleetObsResult result = RunFleetObsSweep(SmallConfig());
  ASSERT_TRUE(result.verified_single_shard);
  EXPECT_TRUE(result.sharded_matches_single_shard);
  EXPECT_EQ(result.samples,
            4u * 3u * 4u * 900u);  // hosts x tenants x metrics x ticks
  EXPECT_EQ(result.dropped_late, 0u);
  EXPECT_EQ(result.dropped_samples, 0u);
  EXPECT_GT(result.rows, 0u);
  EXPECT_GT(result.ingest_rate_per_sec, 0.0);
}

TEST(FleetObsSweepTest, ResultIsThreadCountInvariant) {
  FleetObsConfig config = SmallConfig();
  config.verify_single_shard = false;
  const FleetObsResult one = [&] {
    FleetObsConfig c = config;
    c.threads = 1;
    return RunFleetObsSweep(c);
  }();
  const FleetObsResult eight = [&] {
    FleetObsConfig c = config;
    c.threads = 8;
    return RunFleetObsSweep(c);
  }();
  EXPECT_EQ(one.rows, eight.rows);
  EXPECT_EQ(one.slo_alerts, eight.slo_alerts);
  ASSERT_EQ(one.curve.size(), eight.curve.size());
  for (std::size_t i = 0; i < one.curve.size(); ++i) {
    EXPECT_EQ(one.curve[i].true_positives, eight.curve[i].true_positives);
    EXPECT_EQ(one.curve[i].false_positives, eight.curve[i].false_positives);
  }
}

TEST(FleetObsSweepTest, AttackedFleetPagesAndCurveIsSane) {
  const FleetObsResult result = RunFleetObsSweep(SmallConfig());
  EXPECT_GT(result.attacked_pairs, 0u);
  EXPECT_GT(result.slo_alerts, 0u);
  EXPECT_GT(result.slo_pages, 0u);

  ASSERT_FALSE(result.curve.empty());
  for (const ThresholdPoint& p : result.curve) {
    EXPECT_GE(p.precision, 0.0);
    EXPECT_LE(p.precision, 1.0);
    EXPECT_GE(p.recall, 0.0);
    EXPECT_LE(p.recall, 1.0);
  }
  // Near the 600-tick SLO threshold the separation is clean.
  bool found_good_point = false;
  for (const ThresholdPoint& p : result.curve) {
    if (p.threshold == 600.0) {
      EXPECT_GE(p.precision, 0.9);
      EXPECT_GE(p.recall, 0.9);
      found_good_point = true;
    }
  }
  EXPECT_TRUE(found_good_point);
}

TEST(FleetObsSweepTest, CleanFleetRaisesNoAttackAlarms) {
  FleetObsConfig config = SmallConfig();
  config.attacked_fraction = 0.0;
  const FleetObsResult result = RunFleetObsSweep(config);
  EXPECT_EQ(result.attacked_pairs, 0u);
  for (const ThresholdPoint& p : result.curve) {
    EXPECT_EQ(p.true_positives, 0u);
    EXPECT_EQ(p.false_negatives, 0u);
    if (p.threshold >= 400.0) {
      EXPECT_EQ(p.false_positives, 0u) << p.threshold;
    }
  }
}

TEST(FleetObsSweepTest, JsonIsEmittedWithHeadlineFields) {
  const FleetObsConfig config = SmallConfig();
  const FleetObsResult result = RunFleetObsSweep(config);
  std::ostringstream os;
  WriteFleetObsJson(config, result, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* field :
       {"\"samples\":", "\"ingest_rate_per_sec\":", "\"rollup_memory_bytes\":",
        "\"slo_alerts\":", "\"curve\":", "\"sharded_matches_single_shard\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(FleetObsSweepTest, RollupStreamIsWrittenForFleetInspect) {
  FleetObsConfig config = SmallConfig();
  config.verify_single_shard = false;
  std::ostringstream os;
  RunFleetObsSweep(config, &os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"rollup\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"rollup_stats\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"slo_alert\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"slo_status\""), std::string::npos);
}

}  // namespace
}  // namespace sds::eval
