// Thread-stress for the sharded rollup ingest path: shard-parallel writers
// (one worker per shard, the bench_fleetobs ingest topology) must race-free
// reproduce the single-threaded stream bit-identically. Labeled `stress` so
// the TSan CI job selects it.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/rollup.h"

namespace sds::obs {
namespace {

// Deterministic per-(key, tick) value: workers regenerate the stream
// instead of sharing a sample queue, exactly like eval::RunFleetObsSweep.
double ValueOf(const SeriesKey& key, Tick tick) {
  std::uint64_t x = (static_cast<std::uint64_t>(key.host) << 40) ^
                    (static_cast<std::uint64_t>(key.tenant) << 20) ^
                    (static_cast<std::uint64_t>(key.metric) << 50) ^
                    static_cast<std::uint64_t>(tick);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 31;
  return 1.0 + static_cast<double>(x % 100000) / 10.0;
}

TEST(RollupStressTest, ShardParallelIngestMatchesSingleThread) {
  constexpr std::uint32_t kHosts = 8;
  constexpr std::uint32_t kTenants = 4;
  constexpr std::uint32_t kMetrics = 4;
  constexpr Tick kTicks = 600;
  constexpr std::uint32_t kShards = 8;

  RollupConfig config;
  config.window_ticks = 100;
  config.shards = kShards;
  FleetRollup parallel_rollup(config);
  parallel_rollup.RegisterMetric("m0");
  parallel_rollup.RegisterMetric("m1");
  parallel_rollup.RegisterMetric("m2");
  parallel_rollup.RegisterMetric("m3");

  // One thread per shard; each regenerates the full stream and ingests only
  // the keys its shard owns (no cross-thread handoff, no locks).
  std::vector<std::thread> workers;
  workers.reserve(kShards);
  for (std::uint32_t shard = 0; shard < kShards; ++shard) {
    workers.emplace_back([shard, &parallel_rollup] {
      ShardWriter& writer = parallel_rollup.shard(shard);
      for (Tick t = 0; t < kTicks; ++t) {
        for (std::uint32_t h = 0; h < kHosts; ++h) {
          for (std::uint32_t ten = 0; ten < kTenants; ++ten) {
            for (std::uint32_t m = 0; m < kMetrics; ++m) {
              ObsSample s;
              s.tick = t;
              s.key = {h, ten, m};
              if (ShardOf(s.key, kShards) != shard) continue;
              s.value = ValueOf(s.key, t);
              writer.Ingest(s);
            }
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  parallel_rollup.BarrierMerge(kTicks + config.window_ticks);

  RollupConfig single;
  single.window_ticks = 100;
  single.shards = 1;
  FleetRollup reference(single);
  reference.RegisterMetric("m0");
  reference.RegisterMetric("m1");
  reference.RegisterMetric("m2");
  reference.RegisterMetric("m3");
  for (Tick t = 0; t < kTicks; ++t) {
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      for (std::uint32_t ten = 0; ten < kTenants; ++ten) {
        for (std::uint32_t m = 0; m < kMetrics; ++m) {
          ObsSample s;
          s.tick = t;
          s.key = {h, ten, m};
          s.value = ValueOf(s.key, t);
          reference.Ingest(s);
        }
      }
    }
  }
  reference.BarrierMerge(kTicks + single.window_ticks);

  const auto& a = parallel_rollup.completed();
  const auto& b = reference.completed();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].window, b[i].window);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].sum, b[i].sum);
    EXPECT_EQ(a[i].min, b[i].min);
    EXPECT_EQ(a[i].max, b[i].max);
    EXPECT_EQ(a[i].p50, b[i].p50);
    EXPECT_EQ(a[i].p95, b[i].p95);
    EXPECT_EQ(a[i].p99, b[i].p99);
  }
  EXPECT_EQ(parallel_rollup.ingested(), reference.ingested());
}

}  // namespace
}  // namespace sds::obs
