// SloEngine: rule grammar parsing, burn-rate level transitions and the
// default fleet rule pack.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/rollup.h"

namespace sds::obs {
namespace {

TEST(ParseSloRuleTest, ParsesFullRule) {
  std::string error;
  const auto rule = ParseSloRule(
      "detect-latency: p95(detect.latency_ticks) <= 600 budget 0.05 "
      "window 12 warn 1 page 2",
      &error);
  ASSERT_TRUE(rule.has_value()) << error;
  EXPECT_EQ(rule->name, "detect-latency");
  EXPECT_EQ(rule->metric, "detect.latency_ticks");
  EXPECT_EQ(rule->agg, SloAgg::kP95);
  EXPECT_EQ(rule->op, SloOp::kLe);
  EXPECT_EQ(rule->threshold, 600.0);
  EXPECT_EQ(rule->budget, 0.05);
  EXPECT_EQ(rule->burn_window, 12);
  EXPECT_EQ(rule->warn_burn, 1.0);
  EXPECT_EQ(rule->page_burn, 2.0);
}

TEST(ParseSloRuleTest, ClausesAreOptional) {
  std::string error;
  const auto rule = ParseSloRule("r: mean(m) >= 0.9", &error);
  ASSERT_TRUE(rule.has_value()) << error;
  EXPECT_EQ(rule->agg, SloAgg::kMean);
  EXPECT_EQ(rule->op, SloOp::kGe);
  // Defaults.
  EXPECT_EQ(rule->budget, 0.01);
  EXPECT_EQ(rule->burn_window, 12);
}

TEST(ParseSloRuleTest, RejectsBadSyntax) {
  const char* kBad[] = {
      "",
      "no-colon p95(m) <= 1",
      "r: p95(m <= 1",               // unclosed paren
      "r: p97(m) <= 1",              // unknown aggregation
      "r: p95(m) != 1",              // unknown operator
      "r: p95(m) <= notanumber",
      "r: p95(m) <= 1 budget",       // clause missing value
      "r: p95(m) <= 1 frobnicate 2", // unknown clause
      "r: p95(m) <= 1 warn 3 page 2",// page below warn
  };
  for (const char* text : kBad) {
    std::string error;
    EXPECT_FALSE(ParseSloRule(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(SloAggregateTest, MapsEveryAggregation) {
  RollupRow row;
  row.count = 4;
  row.sum = 10.0;
  row.min = 1.0;
  row.max = 5.0;
  row.p50 = 2.0;
  row.p95 = 4.5;
  row.p99 = 4.9;
  EXPECT_EQ(SloAggregate(row, SloAgg::kMean), 2.5);
  EXPECT_EQ(SloAggregate(row, SloAgg::kP50), 2.0);
  EXPECT_EQ(SloAggregate(row, SloAgg::kP95), 4.5);
  EXPECT_EQ(SloAggregate(row, SloAgg::kP99), 4.9);
  EXPECT_EQ(SloAggregate(row, SloAgg::kMin), 1.0);
  EXPECT_EQ(SloAggregate(row, SloAgg::kMax), 5.0);
  EXPECT_EQ(SloAggregate(row, SloAgg::kCount), 4.0);
  EXPECT_EQ(SloAggregate(row, SloAgg::kSum), 10.0);
}

// Rig: one metric, one rule "r: max(m) <= 10 budget 0.25 window 4
// warn 1 page 2" — violating 1 of the trailing 4 windows burns at exactly
// 1.0, violating 2 burns at 2.0.
struct EngineRig {
  FleetRollup rollup;
  SloEngine engine;

  EngineRig()
      : rollup(RollupConfig{}),
        engine(ParseRules(), &rollup) {
    rollup.RegisterMetric("m");
  }

  static std::vector<SloRule> ParseRules() {
    std::string error;
    const auto rule = ParseSloRule(
        "r: max(m) <= 10 budget 0.25 window 4 warn 1 page 2", &error);
    return {*rule};
  }

  void Window(std::int64_t window, double value) {
    RollupRow row;
    row.window = window;
    row.key = {0, 0, 0};
    row.count = 1;
    row.sum = row.min = row.max = value;
    row.p50 = row.p95 = row.p99 = value;
    const std::vector<RollupRow> rows = {row};
    engine.OnWindow(window, rows);
  }
};

TEST(SloEngineTest, BurnRateTransitionsAndRecovery) {
  EngineRig rig;
  // Fill the trailing deque with clean windows so the burn denominator is
  // the full burn_window of 4.
  for (std::int64_t w = 0; w < 4; ++w) rig.Window(w, 5.0);
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kOk);
  EXPECT_EQ(rig.engine.alerts().size(), 0u);

  // One violation in the trailing 4 windows: burn = 0.25/0.25 = 1 -> warn.
  rig.Window(4, 20.0);
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kWarn);
  ASSERT_EQ(rig.engine.alerts().size(), 1u);
  EXPECT_EQ(rig.engine.alerts()[0].level, SloLevel::kWarn);
  EXPECT_EQ(rig.engine.alerts()[0].observed, 20.0);
  EXPECT_EQ(rig.engine.burning_rules(), 1u);

  // A second violation: burn = 2 -> page.
  rig.Window(5, 30.0);
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kPage);
  ASSERT_EQ(rig.engine.alerts().size(), 2u);
  EXPECT_EQ(rig.engine.alerts()[1].level, SloLevel::kPage);

  // Clean windows age the violations out of the trailing deque; the level
  // steps back down, emitting transitions.
  rig.Window(6, 5.0);
  rig.Window(7, 5.0);
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kPage);
  rig.Window(8, 5.0);  // violation at window 4 ages out -> warn
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kWarn);
  rig.Window(9, 5.0);  // violation at window 5 ages out -> ok
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kOk);
  EXPECT_EQ(rig.engine.alerts().size(), 4u);
  EXPECT_EQ(rig.engine.alerts().back().level, SloLevel::kOk);
  EXPECT_EQ(rig.engine.burning_rules(), 0u);
}

TEST(SloEngineTest, EmptyWindowsCountTowardBurnDenominator) {
  EngineRig rig;
  // A violation with a one-deep deque burns at (1/1)/0.25 = 4 -> page.
  rig.Window(0, 20.0);
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kPage);
  // Empty windows still advance the burn estimate: the violation dilutes,
  // then ages out entirely.
  for (std::int64_t w = 1; w <= 4; ++w) {
    rig.engine.OnWindow(w, {});
  }
  EXPECT_EQ(rig.engine.status(0).level, SloLevel::kOk);
  EXPECT_EQ(rig.engine.status(0).windows_seen, 5u);
}

TEST(SloEngineTest, WorstOffenderIsReported) {
  EngineRig rig;
  RollupRow a;
  a.window = 0;
  a.key = {1, 7, 0};
  a.count = 1;
  a.sum = a.min = a.max = 15.0;
  a.p50 = a.p95 = a.p99 = 15.0;
  RollupRow b = a;
  b.key = {2, 9, 0};
  b.sum = b.min = b.max = 40.0;
  b.p50 = b.p95 = b.p99 = 40.0;
  const std::vector<RollupRow> rows = {a, b};
  rig.engine.OnWindow(0, rows);

  ASSERT_EQ(rig.engine.alerts().size(), 1u);
  EXPECT_EQ(rig.engine.alerts()[0].host, 2u);
  EXPECT_EQ(rig.engine.alerts()[0].tenant, 9u);
  EXPECT_EQ(rig.engine.alerts()[0].observed, 40.0);
}

TEST(SloEngineTest, WriteJsonlEmitsAlertsAndStatus) {
  EngineRig rig;
  rig.Window(0, 20.0);
  std::ostringstream os;
  rig.engine.WriteJsonl(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"slo_alert\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"slo_status\""), std::string::npos);
  EXPECT_NE(text.find("\"rule\":\"r\""), std::string::npos);
  EXPECT_NE(text.find("max(m) <= 10"), std::string::npos);
}

TEST(DefaultFleetSloRulesTest, PackParsesAndNamesAreUnique) {
  const std::vector<SloRule> rules = DefaultFleetSloRules();
  ASSERT_EQ(rules.size(), 4u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_FALSE(rules[i].name.empty());
    EXPECT_FALSE(rules[i].metric.empty());
    for (std::size_t j = i + 1; j < rules.size(); ++j) {
      EXPECT_NE(rules[i].name, rules[j].name);
    }
  }
}

}  // namespace
}  // namespace sds::obs
