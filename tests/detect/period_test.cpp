#include "detect/period.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sds::detect {
namespace {

DetectorParams FastParams() {
  DetectorParams p;
  p.window = 10;
  p.step = 5;   // one MA value per 5 raw samples
  p.delta_wp = 2;
  p.h_p = 3;
  p.period_tolerance = 0.20;
  p.wp_multiplier = 2.0;
  return p;
}

// Raw series whose MA (W=10, dW=5) has the given period in MA steps.
std::vector<double> PeriodicRaw(std::size_t n, double period_ma_steps,
                                std::uint64_t seed, double noise = 0.5) {
  Rng rng(seed);
  const double period_raw = period_ma_steps * 5.0;
  std::vector<double> v(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase =
        std::fmod(static_cast<double>(t), period_raw) / period_raw;
    v[t] = 100.0 + 30.0 * (phase < 0.45 ? 1.0 : -1.0) + noise * rng.Normal();
  }
  return v;
}

std::vector<double> StationaryRaw(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Normal(100.0, 10.0);
  return v;
}

TEST(ClassifyPeriodicityTest, PeriodicSeriesClassified) {
  const auto raw = PeriodicRaw(4000, 20.0, 1);
  const auto profile = ClassifyPeriodicity(raw, FastParams());
  ASSERT_TRUE(profile.has_value());
  EXPECT_NEAR(profile->period, 20.0, 3.0);
  EXPECT_GT(profile->strength, 0.3);
}

TEST(ClassifyPeriodicityTest, StationaryNoiseRejected) {
  const auto raw = StationaryRaw(4000, 2);
  EXPECT_FALSE(ClassifyPeriodicity(raw, FastParams()).has_value());
}

TEST(ClassifyPeriodicityTest, TooShortSeriesRejected) {
  const auto raw = PeriodicRaw(100, 4.0, 3);
  EXPECT_FALSE(ClassifyPeriodicity(raw, FastParams()).has_value());
}

TEST(ClassifyPeriodicityTest, OneOffTransientNotPeriodic) {
  // Periodic in the first half, flat in the second: halves disagree.
  auto raw = PeriodicRaw(2000, 15.0, 4);
  for (std::size_t i = 2000; i < 4000; ++i) raw.push_back(100.0);
  EXPECT_FALSE(ClassifyPeriodicity(raw, FastParams()).has_value());
}

TEST(PeriodAnalyzerTest, WindowSizeIsTwicePeriod) {
  PeriodProfile profile{20.0, 0.8};
  PeriodAnalyzer a(profile, FastParams());
  EXPECT_EQ(a.window_size(), 40u);
}

TEST(PeriodAnalyzerTest, ChecksRunEveryDeltaWp) {
  PeriodProfile profile{10.0, 0.8};
  const DetectorParams p = FastParams();
  PeriodAnalyzer a(profile, p);
  const auto raw = PeriodicRaw(4000, 10.0, 5);
  int checks = 0;
  for (double v : raw) {
    if (a.Observe(v)) ++checks;
  }
  // MA values: (4000-10)/5 + 1 = 799; window fills at 20 MA values; then a
  // check every delta_wp = 2 new values.
  EXPECT_NEAR(checks, (799 - 20) / 2, 4);
  EXPECT_EQ(a.checks().size(), static_cast<std::size_t>(checks));
}

TEST(PeriodAnalyzerTest, StablePeriodNeverAlarms) {
  PeriodProfile profile{20.0, 0.8};
  PeriodAnalyzer a(profile, FastParams());
  const auto raw = PeriodicRaw(8000, 20.0, 6);
  for (double v : raw) a.Observe(v);
  EXPECT_FALSE(a.attack_active());
  // Most checks should report a near-profile period.
  int normal = 0;
  for (const auto& c : a.checks()) {
    if (!c.abnormal) ++normal;
  }
  EXPECT_GT(normal, static_cast<int>(a.checks().size()) * 8 / 10);
}

TEST(PeriodAnalyzerTest, StretchedPeriodAlarms) {
  PeriodProfile profile{20.0, 0.8};
  const DetectorParams p = FastParams();
  PeriodAnalyzer a(profile, p);
  // Clean phase, then the period stretches by 60% (an attacked batch app).
  for (double v : PeriodicRaw(4000, 20.0, 7)) a.Observe(v);
  ASSERT_FALSE(a.attack_active());
  const auto stretched = PeriodicRaw(6000, 32.0, 8);
  bool alarmed = false;
  for (double v : stretched) {
    a.Observe(v);
    alarmed |= a.attack_active();
  }
  EXPECT_TRUE(alarmed);
}

TEST(PeriodAnalyzerTest, DestroyedPatternAlarms) {
  PeriodProfile profile{20.0, 0.8};
  PeriodAnalyzer a(profile, FastParams());
  for (double v : PeriodicRaw(4000, 20.0, 9)) a.Observe(v);
  ASSERT_FALSE(a.attack_active());
  // Attack flattens the signal entirely: period checks find nothing.
  bool alarmed = false;
  for (double v : StationaryRaw(4000, 10)) {
    a.Observe(v);
    alarmed |= a.attack_active();
  }
  EXPECT_TRUE(alarmed);
}

TEST(PeriodAnalyzerTest, WithinToleranceNotAbnormal) {
  // 15% deviation is inside the paper's 20% tolerance.
  PeriodProfile profile{20.0, 0.8};
  PeriodAnalyzer a(profile, FastParams());
  for (double v : PeriodicRaw(4000, 20.0, 11)) a.Observe(v);
  for (double v : PeriodicRaw(6000, 23.0, 12)) a.Observe(v);
  EXPECT_FALSE(a.attack_active());
}

TEST(PeriodAnalyzerTest, ChecksRecordComputedPeriods) {
  PeriodProfile profile{20.0, 0.8};
  PeriodAnalyzer a(profile, FastParams());
  for (double v : PeriodicRaw(6000, 20.0, 13)) a.Observe(v);
  ASSERT_FALSE(a.checks().empty());
  int with_period = 0;
  for (const auto& c : a.checks()) {
    if (c.period.has_value()) {
      ++with_period;
      EXPECT_NEAR(*c.period, 20.0, 6.0);
    }
  }
  EXPECT_GT(with_period, static_cast<int>(a.checks().size()) / 2);
}

TEST(PeriodAnalyzerTest, RequiresPositiveProfilePeriod) {
  PeriodProfile profile{0.0, 0.0};
  EXPECT_DEATH(PeriodAnalyzer(profile, FastParams()),
               "period profile must be positive");
}

}  // namespace
}  // namespace sds::detect
