#include "detect/boundary.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "signal/moving_average.h"
#include "stats/descriptive.h"

namespace sds::detect {
namespace {

DetectorParams FastParams() {
  // Small windows so unit tests run on short series: W=10, dW=5, H_C=3.
  DetectorParams p;
  p.window = 10;
  p.step = 5;
  p.alpha = 0.2;
  p.boundary_k = 1.125;
  p.h_c = 3;
  return p;
}

std::vector<double> NoisySeries(std::size_t n, double mean, double sd,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Normal(mean, sd);
  return v;
}

TEST(BuildBoundaryProfileTest, MatchesManualPipeline) {
  const auto raw = NoisySeries(500, 100.0, 10.0, 1);
  const DetectorParams p = FastParams();
  const BoundaryProfile profile = BuildBoundaryProfile(raw, p);
  const auto ma = MovingAverageSeries(raw, p.window, p.step);
  const auto ewma = EwmaSeries(ma, p.alpha);
  EXPECT_NEAR(profile.mean, Mean(ewma), 1e-9);
  EXPECT_NEAR(profile.stddev, StdDev(ewma), 1e-9);
}

TEST(BuildBoundaryProfileTest, ConstantSeriesZeroSigma) {
  const std::vector<double> raw(100, 50.0);
  const BoundaryProfile profile = BuildBoundaryProfile(raw, FastParams());
  EXPECT_DOUBLE_EQ(profile.mean, 50.0);
  EXPECT_DOUBLE_EQ(profile.stddev, 0.0);
}

TEST(BoundaryAnalyzerTest, BoundsFromProfile) {
  BoundaryProfile profile{100.0, 8.0};
  const DetectorParams p = FastParams();
  BoundaryAnalyzer a(profile, p);
  EXPECT_DOUBLE_EQ(a.lower_bound(), 100.0 - 1.125 * 8.0);
  EXPECT_DOUBLE_EQ(a.upper_bound(), 100.0 + 1.125 * 8.0);
}

TEST(BoundaryAnalyzerTest, EmitsEwmaPerStep) {
  BoundaryProfile profile{0.0, 1.0};
  const DetectorParams p = FastParams();
  BoundaryAnalyzer a(profile, p);
  int emitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Observe(0.0)) ++emitted;
  }
  // First window at sample 10, then every 5 samples: 1 + 18 = 19.
  EXPECT_EQ(emitted, 19);
}

TEST(BoundaryAnalyzerTest, InRangeSeriesNeverAlarms) {
  const auto raw = NoisySeries(2000, 100.0, 10.0, 2);
  const DetectorParams p = FastParams();
  const BoundaryProfile profile = BuildBoundaryProfile(raw, p);
  BoundaryAnalyzer a(profile, p);
  // Same distribution: the Chebyshev-bounded condition with H_C=3 may have
  // occasional single violations, but we verify the alarm does not latch
  // permanently; count alarmed steps.
  int alarmed_steps = 0;
  int steps = 0;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    if (a.Observe(rng.Normal(100.0, 10.0))) {
      ++steps;
      if (a.attack_active()) ++alarmed_steps;
    }
  }
  EXPECT_LT(alarmed_steps, steps / 10);
}

TEST(BoundaryAnalyzerTest, ConstantExactlyAtMeanNeverViolates) {
  BoundaryProfile profile{5.0, 0.0};  // degenerate sigma
  BoundaryAnalyzer a(profile, FastParams());
  for (int i = 0; i < 200; ++i) a.Observe(5.0);
  EXPECT_EQ(a.consecutive_violations(), 0);
  EXPECT_FALSE(a.attack_active());
}

TEST(BoundaryAnalyzerTest, DropBelowRangeAlarmsAfterHc) {
  BoundaryProfile profile{100.0, 5.0};
  const DetectorParams p = FastParams();
  BoundaryAnalyzer a(profile, p);
  // Feed the mean until the pipeline is warm, then collapse to 10.
  for (int i = 0; i < 50; ++i) a.Observe(100.0);
  EXPECT_FALSE(a.attack_active());
  int steps_to_alarm = 0;
  for (int i = 0; i < 500 && !a.attack_active(); ++i) {
    if (a.Observe(10.0)) ++steps_to_alarm;
  }
  EXPECT_TRUE(a.attack_active());
  // Needs at least H_C out-of-range EWMA values (EWMA inertia adds more).
  EXPECT_GE(steps_to_alarm, p.h_c);
}

TEST(BoundaryAnalyzerTest, SpikeAboveRangeAlarms) {
  BoundaryProfile profile{100.0, 5.0};
  BoundaryAnalyzer a(profile, FastParams());
  for (int i = 0; i < 50; ++i) a.Observe(100.0);
  for (int i = 0; i < 500 && !a.attack_active(); ++i) a.Observe(400.0);
  EXPECT_TRUE(a.attack_active());
}

TEST(BoundaryAnalyzerTest, RecoveryClearsAlarm) {
  BoundaryProfile profile{100.0, 5.0};
  BoundaryAnalyzer a(profile, FastParams());
  for (int i = 0; i < 50; ++i) a.Observe(100.0);
  for (int i = 0; i < 500 && !a.attack_active(); ++i) a.Observe(10.0);
  ASSERT_TRUE(a.attack_active());
  for (int i = 0; i < 500 && a.attack_active(); ++i) a.Observe(100.0);
  EXPECT_FALSE(a.attack_active());
  EXPECT_EQ(a.consecutive_violations(), 0);
}

TEST(BoundaryAnalyzerTest, BriefExcursionDoesNotAlarm) {
  BoundaryProfile profile{100.0, 5.0};
  const DetectorParams p = FastParams();
  BoundaryAnalyzer a(profile, p);
  for (int i = 0; i < 50; ++i) a.Observe(100.0);
  // A short, moderate burst: the EWMA exceeds the bound only briefly (fewer
  // than H_C consecutive steps), so no alarm fires. (A LARGE brief burst
  // would still alarm: with alpha = 0.2 the EWMA holds big excursions for
  // many steps — the intended smoothing behaviour.)
  for (int i = 0; i < 5; ++i) a.Observe(140.0);
  for (int i = 0; i < 50; ++i) a.Observe(100.0);
  EXPECT_FALSE(a.attack_active());
}

// Property: detection delay in EWMA steps shrinks as the drop grows deeper.
class BoundaryDepthTest : public ::testing::TestWithParam<double> {};

TEST_P(BoundaryDepthTest, DeeperDropsDetectNoSlower) {
  const double drop_to = GetParam();
  BoundaryProfile profile{100.0, 5.0};
  const DetectorParams p = FastParams();

  auto steps_to_alarm = [&](double level) {
    BoundaryAnalyzer a(profile, p);
    for (int i = 0; i < 50; ++i) a.Observe(100.0);
    int steps = 0;
    for (int i = 0; i < 2000 && !a.attack_active(); ++i) {
      if (a.Observe(level)) ++steps;
    }
    EXPECT_TRUE(a.attack_active()) << "level=" << level;
    return steps;
  };

  EXPECT_LE(steps_to_alarm(drop_to), steps_to_alarm(drop_to + 30.0));
}

INSTANTIATE_TEST_SUITE_P(Depths, BoundaryDepthTest,
                         ::testing::Values(10.0, 30.0, 50.0));

}  // namespace
}  // namespace sds::detect
