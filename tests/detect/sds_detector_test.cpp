#include "detect/sds_detector.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/scenario.h"

namespace sds::detect {
namespace {

struct Rig {
  eval::Scenario scenario;
  SdsProfile profile;
  DetectorParams params;

  Rig(const std::string& app, eval::AttackKind attack, Tick attack_start,
      std::uint64_t seed) {
    eval::ScenarioConfig base;
    base.app = app;
    const auto clean = eval::CollectCleanSamples(base, 12000, seed + 1000);
    profile = BuildSdsProfile(clean, params);

    eval::ScenarioConfig cfg;
    cfg.app = app;
    cfg.attack = attack;
    cfg.attack_start = attack_start;
    cfg.seed = seed;
    scenario = eval::BuildScenario(cfg);
  }

  void Run(Detector& detector, Tick ticks) {
    for (Tick t = 0; t < ticks; ++t) {
      scenario.hypervisor->RunTick();
      detector.OnTick();
    }
  }
};

TEST(SdsDetectorTest, ModeNames) {
  EXPECT_STREQ(SdsModeName(SdsMode::kBoundaryOnly), "SDS/B");
  EXPECT_STREQ(SdsModeName(SdsMode::kPeriodOnly), "SDS/P");
  EXPECT_STREQ(SdsModeName(SdsMode::kCombined), "SDS");
}

TEST(SdsDetectorTest, AttachesOneMonitor) {
  Rig rig("kmeans", eval::AttackKind::kNone, 0, 1);
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kCombined);
  EXPECT_EQ(rig.scenario.hypervisor->active_monitors(), 1);
}

TEST(SdsDetectorTest, QuietOnCleanRun) {
  Rig rig("bayes", eval::AttackKind::kNone, 0, 2);
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kCombined);
  rig.Run(det, 8000);
  EXPECT_EQ(det.alarm_events(), 0u);
  EXPECT_FALSE(det.attack_active());
}

TEST(SdsDetectorTest, DetectsBusLockOnNonPeriodicApp) {
  Rig rig("bayes", eval::AttackKind::kBusLock, 2000, 3);
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kCombined);
  rig.Run(det, 2000);
  EXPECT_FALSE(det.attack_active());
  rig.Run(det, 6000);
  EXPECT_TRUE(det.attack_active());
  EXPECT_GE(det.alarm_events(), 1u);
  EXPECT_GE(det.last_alarm_trigger_tick(), 2000);
}

TEST(SdsDetectorTest, DetectsCleansingOnNonPeriodicApp) {
  Rig rig("aggregation", eval::AttackKind::kLlcCleansing, 2000, 4);
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kBoundaryOnly);
  rig.Run(det, 8000);
  EXPECT_TRUE(det.attack_active());
}

TEST(SdsDetectorTest, BoundaryOnlyIgnoresPeriodState) {
  Rig rig("facenet", eval::AttackKind::kBusLock, 2000, 5);
  ASSERT_TRUE(rig.profile.periodic());
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kBoundaryOnly);
  rig.Run(det, 8000);
  EXPECT_TRUE(det.attack_active());
  EXPECT_TRUE(det.boundary_active());
}

TEST(SdsDetectorTest, PeriodOnlyDetectsOnPeriodicApp) {
  Rig rig("facenet", eval::AttackKind::kBusLock, 3000, 6);
  ASSERT_TRUE(rig.profile.periodic());
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kPeriodOnly);
  rig.Run(det, 3000);
  EXPECT_FALSE(det.attack_active());
  rig.Run(det, 9000);
  EXPECT_TRUE(det.attack_active());
  EXPECT_TRUE(det.period_active());
}

TEST(SdsDetectorTest, CombinedOnPeriodicRequiresBothSchemes) {
  Rig rig("facenet", eval::AttackKind::kBusLock, 3000, 7);
  ASSERT_TRUE(rig.profile.periodic());
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kCombined);
  rig.Run(det, 12000);
  ASSERT_TRUE(det.attack_active());
  EXPECT_TRUE(det.boundary_active());
  EXPECT_TRUE(det.period_active());
}

TEST(SdsDetectorTest, PeriodOnlyWithoutPeriodicProfileAborts) {
  Rig rig("bayes", eval::AttackKind::kNone, 0, 8);
  ASSERT_FALSE(rig.profile.periodic());
  EXPECT_DEATH(SdsDetector(*rig.scenario.hypervisor, rig.scenario.victim,
                           rig.profile, rig.params, SdsMode::kPeriodOnly),
               "periodic profile");
}

TEST(SdsDetectorTest, AlarmEventsCountRisingEdges) {
  Rig rig("kmeans", eval::AttackKind::kBusLock, 2000, 9);
  SdsDetector det(*rig.scenario.hypervisor, rig.scenario.victim, rig.profile,
                  rig.params, SdsMode::kCombined);
  rig.Run(det, 10000);
  ASSERT_TRUE(det.attack_active());
  const auto events = det.alarm_events();
  // Continuing the attack must not spawn new events while latched.
  rig.Run(det, 1000);
  EXPECT_TRUE(det.attack_active());
  EXPECT_EQ(det.alarm_events(), events);
}

}  // namespace
}  // namespace sds::detect
