#include "detect/offline.h"

#include <sstream>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "pcm/trace.h"

namespace sds::detect {
namespace {

TEST(OfflineReplayTest, CleanTraceStaysQuiet) {
  eval::ScenarioConfig base;
  base.app = "bayes";
  const auto profile_trace = eval::CollectCleanSamples(base, 9000, 1);
  const auto live_trace = eval::CollectCleanSamples(base, 9000, 2);
  DetectorParams params;
  const auto result = ReplaySds(profile_trace, live_trace, params);
  EXPECT_FALSE(result.profile_periodic);
  EXPECT_LT(result.active_fraction, 0.1);
}

TEST(OfflineReplayTest, AttackTraceAlarms) {
  eval::ScenarioConfig base;
  base.app = "bayes";
  const auto profile_trace = eval::CollectCleanSamples(base, 9000, 3);
  const auto attacked = eval::RunMeasurementStudy(
      "bayes", eval::AttackKind::kBusLock, 10000, 4000, 4);
  DetectorParams params;
  const auto result = ReplaySds(profile_trace, attacked, params);
  ASSERT_FALSE(result.alarm_ticks.empty());
  // The first alarm must come after the attack started (tick ~4000 within
  // the trace's own timestamps).
  EXPECT_GT(result.alarm_ticks.front(), attacked.front().tick + 4000);
  EXPECT_GT(result.active_fraction, 0.2);
}

TEST(OfflineReplayTest, MatchesLiveDetectorDecisions) {
  // Replaying the recorded trace must reproduce the same alarm behaviour a
  // live SDS/B-style analyzer would produce on the same data: the offline
  // path is the same analyzers fed from a file.
  eval::ScenarioConfig base;
  base.app = "kmeans";
  const auto profile_trace = eval::CollectCleanSamples(base, 12000, 5);
  const auto attacked = eval::RunMeasurementStudy(
      "kmeans", eval::AttackKind::kLlcCleansing, 12000, 6000, 6);
  DetectorParams params;

  const auto offline = ReplaySds(profile_trace, attacked, params);

  // Round-trip the trace through the CSV format first: identical result.
  std::stringstream ss;
  ASSERT_TRUE(pcm::WriteTrace(ss, attacked));
  const auto reloaded = pcm::ReadTrace(ss);
  ASSERT_TRUE(reloaded.has_value());
  const auto offline2 = ReplaySds(profile_trace, *reloaded, params);
  EXPECT_EQ(offline.alarm_ticks, offline2.alarm_ticks);
  EXPECT_DOUBLE_EQ(offline.active_fraction, offline2.active_fraction);
  EXPECT_FALSE(offline.alarm_ticks.empty());
}

TEST(OfflineReplayTest, PeriodicProfileUsesBothSchemes) {
  eval::ScenarioConfig base;
  base.app = "facenet";
  const auto profile_trace = eval::CollectCleanSamples(base, 12000, 7);
  const auto attacked = eval::RunMeasurementStudy(
      "facenet", eval::AttackKind::kBusLock, 16000, 6000, 8);
  DetectorParams params;
  const auto result = ReplaySds(profile_trace, attacked, params);
  EXPECT_TRUE(result.profile_periodic);
  EXPECT_FALSE(result.alarm_ticks.empty());
}

TEST(OfflineReplayTest, EmptyTraceIsHarmless) {
  eval::ScenarioConfig base;
  base.app = "bayes";
  const auto profile_trace = eval::CollectCleanSamples(base, 9000, 9);
  DetectorParams params;
  const auto result = ReplaySds(profile_trace, {}, params);
  EXPECT_TRUE(result.alarm_ticks.empty());
  EXPECT_DOUBLE_EQ(result.active_fraction, 0.0);
}

}  // namespace
}  // namespace sds::detect
