#include "detect/forensics.h"

#include <sstream>
#include <string_view>

#include <gtest/gtest.h>

#include "eval/scenario.h"
#include "telemetry/telemetry.h"

namespace sds::detect {
namespace {

eval::Scenario AttackScenario(eval::AttackKind kind,
                              telemetry::Telemetry* tel = nullptr) {
  eval::ScenarioConfig cfg;
  cfg.app = "bayes";
  cfg.attack = kind;
  cfg.attack_start = 0;
  cfg.machine.attribution = true;
  cfg.machine.telemetry = tel;
  cfg.seed = 17;
  return eval::BuildScenario(cfg);
}

void Drive(eval::Scenario& s, ForensicsEngine& engine, int ticks) {
  for (int t = 0; t < ticks; ++t) {
    s.hypervisor->RunTick();
    engine.OnTick();
  }
}

TEST(ForensicsTest, CleansingAttackerIsPrimeSuspect) {
  eval::Scenario s = AttackScenario(eval::AttackKind::kLlcCleansing);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 200);
  const ForensicReport& r = engine.OnAlarm(s.hypervisor->now());
  EXPECT_TRUE(r.attributed);
  EXPECT_EQ(r.prime_suspect, s.attacker);
  ASSERT_FALSE(r.suspects.empty());
  EXPECT_EQ(r.suspects.front().vm, s.attacker);
  EXPECT_GE(r.suspects.front().score, engine.config().min_score);
  EXPECT_GT(r.suspects.front().evictions, 0u);
}

TEST(ForensicsTest, BusLockAttackerIsPrimeSuspect) {
  eval::Scenario s = AttackScenario(eval::AttackKind::kBusLock);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 200);
  const ForensicReport& r = engine.OnAlarm(s.hypervisor->now());
  EXPECT_TRUE(r.attributed);
  EXPECT_EQ(r.prime_suspect, s.attacker);
  EXPECT_GT(r.suspects.front().bus_delay, 0u);
}

TEST(ForensicsTest, SuspectsSortedByScoreThenVm) {
  eval::Scenario s = AttackScenario(eval::AttackKind::kLlcCleansing);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 150);
  const ForensicReport& r = engine.OnAlarm(s.hypervisor->now());
  for (std::size_t i = 1; i < r.suspects.size(); ++i) {
    const SuspectEvidence& a = r.suspects[i - 1];
    const SuspectEvidence& b = r.suspects[i];
    EXPECT_TRUE(a.score > b.score || (a.score == b.score && a.vm < b.vm));
  }
  // Neither the target nor the owner-0 sentinel may appear as a suspect.
  for (const SuspectEvidence& sus : r.suspects) {
    EXPECT_NE(sus.vm, s.victim);
    EXPECT_NE(sus.vm, 0u);
  }
}

TEST(ForensicsTest, KstestAgreementTracksCulprit) {
  eval::Scenario s = AttackScenario(eval::AttackKind::kLlcCleansing);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 150);
  const ForensicReport agree = engine.OnAlarm(s.hypervisor->now(), s.attacker);
  EXPECT_TRUE(agree.kstest_agrees);
  s.hypervisor->RunTick();
  engine.OnTick();
  const ForensicReport disagree =
      engine.OnAlarm(s.hypervisor->now(), s.victim + 6);
  EXPECT_FALSE(disagree.kstest_agrees);
  s.hypervisor->RunTick();
  engine.OnTick();
  // An inconclusive KStest sweep (culprit 0) never counts as agreement.
  const ForensicReport none = engine.OnAlarm(s.hypervisor->now(), 0);
  EXPECT_FALSE(none.kstest_agrees);
  EXPECT_EQ(engine.reports().size(), 3u);
}

TEST(ForensicsTest, EvidenceTimelineAlignsWithAlarm) {
  eval::Scenario s = AttackScenario(eval::AttackKind::kLlcCleansing);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 150);
  const Tick alarm = s.hypervisor->now();
  const ForensicReport& r = engine.OnAlarm(alarm);
  ASSERT_TRUE(r.attributed);
  ASSERT_NE(r.first_evidence_tick, kInvalidTick);
  EXPECT_GE(r.first_evidence_tick, r.window_start);
  EXPECT_LE(r.first_evidence_tick, r.window_end);
  EXPECT_EQ(r.evidence_lead_ticks, alarm - r.first_evidence_tick);
  // The cleansing attack leaves evidence well before a realistic alarm.
  EXPECT_GT(r.evidence_lead_ticks, 0);
}

TEST(ForensicsTest, BenignLoadStaysUnattributed) {
  eval::ScenarioConfig cfg;
  cfg.app = "bayes";
  cfg.machine.attribution = true;
  cfg.seed = 23;
  eval::Scenario s = eval::BuildScenario(cfg);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 200);
  const ForensicReport& r = engine.OnAlarm(s.hypervisor->now());
  // Seven symmetric benign utilities split the evidence; nobody clears the
  // min_score bar, so a false-positive alarm stays explicitly unattributed.
  EXPECT_FALSE(r.attributed);
  EXPECT_EQ(r.prime_suspect, 0u);
  EXPECT_EQ(r.first_evidence_tick, kInvalidTick);
}

TEST(ForensicsTest, WindowIsBoundedByConfig) {
  eval::Scenario s = AttackScenario(eval::AttackKind::kLlcCleansing);
  ForensicsConfig cfg;
  cfg.window_spans = 32;
  ForensicsEngine engine(*s.hypervisor, s.victim, cfg);
  Drive(s, engine, 100);
  EXPECT_EQ(engine.window_size(), 32u);
  const ForensicReport& r = engine.OnAlarm(s.hypervisor->now());
  EXPECT_EQ(r.window_end - r.window_start + 1, 32);
}

TEST(ForensicsTest, AlarmEmitsAuditAndTrace) {
  telemetry::Telemetry tel;
  eval::Scenario s = AttackScenario(eval::AttackKind::kLlcCleansing, &tel);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 150);
  engine.OnAlarm(s.hypervisor->now(), s.attacker);
  bool audited = false;
  for (const telemetry::AuditRecord& rec : tel.audit().records()) {
    if (std::string_view(rec.detector) == "Forensics") {
      audited = true;
      EXPECT_TRUE(rec.violation);
      EXPECT_STREQ(rec.check, "forensics");
    }
  }
  EXPECT_TRUE(audited);
  bool traced = false;
  for (std::size_t i = 0; i < tel.tracer().retained(); ++i) {
    if (std::string_view(tel.tracer().event(i).name) == "forensic_report") {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);
}

TEST(ForensicsTest, ReportRenderingsAreStable) {
  eval::Scenario s = AttackScenario(eval::AttackKind::kLlcCleansing);
  ForensicsEngine engine(*s.hypervisor, s.victim);
  Drive(s, engine, 150);
  const ForensicReport& r = engine.OnAlarm(s.hypervisor->now(), s.attacker);
  std::ostringstream json;
  WriteForensicReportJson(json, r);
  EXPECT_NE(json.str().find("\"type\":\"forensic_report\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"prime_suspect\":2"), std::string::npos);
  std::ostringstream text;
  WriteForensicReportText(text, r);
  EXPECT_NE(text.str().find("prime suspect: VM 2"), std::string::npos);
  EXPECT_NE(text.str().find("agrees"), std::string::npos);
  // Rendering is a pure function of the report.
  std::ostringstream json2;
  WriteForensicReportJson(json2, r);
  EXPECT_EQ(json.str(), json2.str());
}

}  // namespace
}  // namespace sds::detect
