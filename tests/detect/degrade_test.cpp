#include "detect/degrade.h"

#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "eval/scenario.h"
#include "workloads/catalog.h"

namespace sds::detect {
namespace {

struct Rig {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<vm::Hypervisor> hypervisor;
  OwnerId victim;

  Rig() {
    sim::MachineConfig mc;
    machine = std::make_unique<sim::Machine>(mc);
    vm::HypervisorConfig hc;
    hypervisor = std::make_unique<vm::Hypervisor>(*machine, hc, Rng(3));
    victim = hypervisor->CreateVm("victim", workloads::MakeApp("bayes"));
  }
};

// A SampleSource the test scripts tick by tick: set `next` (and `span`)
// before each OnTick call; leaving it empty scripts a gap.
class ScriptedSource final : public pcm::SampleSource {
 public:
  explicit ScriptedSource(OwnerId target) : target_(target) {}
  void Start() override { started_ = true; }
  void Stop() override { started_ = false; }
  bool started() const override { return started_; }
  OwnerId target() const override { return target_; }
  std::optional<pcm::PcmSample> Next() override {
    auto out = next;
    next.reset();
    return out;
  }
  Tick last_span() const override { return span; }
  bool healthy() const override { return healthy_flag; }
  bool TryRestart() override {
    ++restart_calls;
    if (!restart_allowed) return false;
    healthy_flag = true;
    return true;
  }

  std::optional<pcm::PcmSample> next;
  Tick span = 1;
  bool healthy_flag = true;
  bool restart_allowed = true;
  int restart_calls = 0;

 private:
  OwnerId target_;
  bool started_ = false;
};

pcm::PcmSample Sample(Tick tick, std::uint64_t access, std::uint64_t miss) {
  pcm::PcmSample s;
  s.tick = tick;
  s.access_num = access;
  s.miss_num = miss;
  return s;
}

// -- SampleIsSane -------------------------------------------------------------

TEST(SampleIsSaneTest, AcceptsPlausibleSamples) {
  SanityParams p;
  EXPECT_TRUE(SampleIsSane(Sample(1, 500, 50), p, 1));
  EXPECT_TRUE(SampleIsSane(Sample(1, 0, 0), p, 1));
  EXPECT_TRUE(SampleIsSane(Sample(1, p.max_delta_per_tick, 0), p, 1));
}

TEST(SampleIsSaneTest, RejectsImpossibleDeltas) {
  SanityParams p;
  EXPECT_FALSE(SampleIsSane(Sample(1, p.max_delta_per_tick + 1, 0), p, 1));
  EXPECT_FALSE(
      SampleIsSane(Sample(1, std::uint64_t{1} << 62, 0), p, 1));
}

TEST(SampleIsSaneTest, RejectsMissExceedingAccess) {
  SanityParams p;
  EXPECT_FALSE(SampleIsSane(Sample(1, 10, 11), p, 1));
  p.check_miss_le_access = false;
  EXPECT_TRUE(SampleIsSane(Sample(1, 10, 11), p, 1));
}

TEST(SampleIsSaneTest, CeilingScalesWithSpan) {
  SanityParams p;
  // A legitimate 5-interval coalesced delta exceeds the 1-interval ceiling
  // but not the span-scaled one.
  const pcm::PcmSample wide = Sample(5, 3 * p.max_delta_per_tick, 0);
  EXPECT_FALSE(SampleIsSane(wide, p, 1));
  EXPECT_TRUE(SampleIsSane(wide, p, 5));
}

TEST(SampleIsSaneTest, DisabledAcceptsEverything) {
  SanityParams p;
  p.enabled = false;
  EXPECT_TRUE(SampleIsSane(Sample(1, std::uint64_t{1} << 62, 1), p, 1));
}

// -- SamplerWatchdog ----------------------------------------------------------

TEST(SamplerWatchdogTest, BackoffGrowsAcrossAttemptsOfOneIncident) {
  Rig rig;
  ScriptedSource source(rig.victim);
  source.healthy_flag = false;
  source.restart_allowed = false;
  WatchdogParams p;  // backoff 1 -> 2 -> 4 -> ... capped at 64
  SamplerWatchdog watchdog(source, p, *rig.hypervisor);
  for (Tick now = 1; now <= 20; ++now) watchdog.OnMissing(now);
  // Probes at ticks 1, 2, 4, 8, 16 — exponential, not every tick.
  EXPECT_EQ(watchdog.attempts(), 5u);
  EXPECT_EQ(watchdog.restarts(), 0u);
  EXPECT_EQ(source.restart_calls, 5);
}

TEST(SamplerWatchdogTest, SuccessfulRestartDoesNotResetBackoff) {
  // The storm regression: a source that accepts every restart but never
  // resumes delivery must still be probed on the exponential schedule —
  // otherwise the consumer is re-warmed every few ticks forever.
  Rig rig;
  ScriptedSource source(rig.victim);
  source.healthy_flag = false;
  WatchdogParams p;
  SamplerWatchdog watchdog(source, p, *rig.hypervisor);
  for (Tick now = 1; now <= 20; ++now) {
    if (watchdog.OnMissing(now)) {
      // Restart "succeeded" but the stream stays silent.
      source.healthy_flag = false;
    }
  }
  EXPECT_EQ(watchdog.attempts(), 5u);
  EXPECT_EQ(watchdog.restarts(), 5u);
}

TEST(SamplerWatchdogTest, DeliveryEndsTheIncidentAndResetsBackoff) {
  Rig rig;
  ScriptedSource source(rig.victim);
  source.healthy_flag = false;
  source.restart_allowed = false;
  WatchdogParams p;
  SamplerWatchdog watchdog(source, p, *rig.hypervisor);
  for (Tick now = 1; now <= 8; ++now) watchdog.OnMissing(now);
  EXPECT_EQ(watchdog.attempts(), 4u);  // ticks 1, 2, 4, 8
  watchdog.OnDelivered();
  EXPECT_EQ(watchdog.miss_streak(), 0);
  // A fresh incident probes immediately again instead of inheriting the
  // old 16-tick backoff.
  watchdog.OnMissing(100);
  EXPECT_EQ(watchdog.attempts(), 5u);
}

TEST(SamplerWatchdogTest, HealthyLossySourceIsLeftAloneUntilStreak) {
  Rig rig;
  ScriptedSource source(rig.victim);  // healthy, just not delivering
  WatchdogParams p;                   // dead_after_misses = 5
  SamplerWatchdog watchdog(source, p, *rig.hypervisor);
  for (Tick now = 1; now <= 4; ++now) {
    watchdog.OnMissing(now);
    EXPECT_EQ(watchdog.attempts(), 0u) << "tick " << now;
  }
  watchdog.OnMissing(5);
  EXPECT_EQ(watchdog.attempts(), 1u);
}

TEST(SamplerWatchdogTest, DisabledWatchdogNeverProbes) {
  Rig rig;
  ScriptedSource source(rig.victim);
  source.healthy_flag = false;
  WatchdogParams p;
  p.enabled = false;
  SamplerWatchdog watchdog(source, p, *rig.hypervisor);
  for (Tick now = 1; now <= 50; ++now) EXPECT_FALSE(watchdog.OnMissing(now));
  EXPECT_EQ(watchdog.attempts(), 0u);
}

// -- DegradingSampleGate ------------------------------------------------------

struct GateRig : Rig {
  ScriptedSource source;
  explicit GateRig() : source(victim) { source.Start(); }

  DegradingSampleGate MakeGate(const DegradeConfig& config) {
    return DegradingSampleGate(*hypervisor, source, config, "test");
  }
};

TEST(DegradingSampleGateTest, PassesDeliveredSamplesThrough) {
  GateRig rig;
  DegradingSampleGate gate = rig.MakeGate(DegradeConfig{});
  rig.hypervisor->RunTick();
  rig.source.next = Sample(1, 500, 50);
  const auto out = gate.OnTick();
  EXPECT_TRUE(out.delivered);
  EXPECT_FALSE(out.quarantined);
  EXPECT_FALSE(out.substituted);
  ASSERT_TRUE(out.sample.has_value());
  EXPECT_EQ(out.sample->access_num, 500u);
  EXPECT_EQ(out.sample->miss_num, 50u);
  EXPECT_EQ(gate.stats().delivered, 1u);
}

TEST(DegradingSampleGateTest, HoldLastSubstitutesOnGaps) {
  GateRig rig;
  DegradeConfig config;  // kHoldLast
  config.watchdog.enabled = false;
  DegradingSampleGate gate = rig.MakeGate(config);

  rig.hypervisor->RunTick();
  rig.source.next = Sample(1, 500, 50);
  gate.OnTick();

  rig.hypervisor->RunTick();  // gap tick
  const auto out = gate.OnTick();
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.substituted);
  ASSERT_TRUE(out.sample.has_value());
  // The held sample carries the last good values, re-stamped to this tick.
  EXPECT_EQ(out.sample->access_num, 500u);
  EXPECT_EQ(out.sample->miss_num, 50u);
  EXPECT_EQ(out.sample->tick, rig.hypervisor->now());
  EXPECT_EQ(gate.stats().substituted, 1u);
  EXPECT_EQ(gate.stats().gap_ticks, 1u);
}

TEST(DegradingSampleGateTest, HoldLastHasNothingToSubstituteBeforeFirstGood) {
  GateRig rig;
  DegradeConfig config;
  config.watchdog.enabled = false;
  DegradingSampleGate gate = rig.MakeGate(config);
  rig.hypervisor->RunTick();  // gap before any delivery
  const auto out = gate.OnTick();
  EXPECT_FALSE(out.sample.has_value());
  EXPECT_FALSE(out.substituted);
}

TEST(DegradingSampleGateTest, SkipFreezeFeedsNothingOnGaps) {
  GateRig rig;
  DegradeConfig config;
  config.gap_policy = GapPolicy::kSkipFreeze;
  config.watchdog.enabled = false;
  DegradingSampleGate gate = rig.MakeGate(config);

  rig.hypervisor->RunTick();
  rig.source.next = Sample(1, 500, 50);
  gate.OnTick();
  rig.hypervisor->RunTick();
  const auto out = gate.OnTick();
  EXPECT_FALSE(out.sample.has_value());
  EXPECT_FALSE(out.substituted);
  EXPECT_EQ(gate.stats().gap_ticks, 1u);
}

TEST(DegradingSampleGateTest, QuarantinesInsaneSamplesAsGaps) {
  GateRig rig;
  DegradeConfig config;  // kHoldLast
  config.watchdog.enabled = false;
  DegradingSampleGate gate = rig.MakeGate(config);

  rig.hypervisor->RunTick();
  rig.source.next = Sample(1, 500, 50);
  gate.OnTick();

  // A counter-reset-style wrapped delta must never reach the analyzers —
  // the tick degrades to a gap and hold-last substitutes the last good.
  rig.hypervisor->RunTick();
  rig.source.next = Sample(2, std::uint64_t{1} << 62, 7);
  const auto out = gate.OnTick();
  EXPECT_TRUE(out.delivered);
  EXPECT_TRUE(out.quarantined);
  EXPECT_TRUE(out.substituted);
  ASSERT_TRUE(out.sample.has_value());
  EXPECT_EQ(out.sample->access_num, 500u);
  EXPECT_EQ(gate.stats().quarantined, 1u);
}

TEST(DegradingSampleGateTest, NormalizesSpanningSamplesToPerInterval) {
  GateRig rig;
  DegradeConfig config;
  config.watchdog.enabled = false;
  DegradingSampleGate gate = rig.MakeGate(config);
  rig.hypervisor->RunTick();
  rig.source.next = Sample(1, 1000, 100);
  rig.source.span = 4;
  const auto out = gate.OnTick();
  ASSERT_TRUE(out.sample.has_value());
  EXPECT_EQ(out.sample->access_num, 250u);
  EXPECT_EQ(out.sample->miss_num, 25u);
}

TEST(DegradingSampleGateTest, RewarmFiresOncePerGap) {
  GateRig rig;
  DegradeConfig config;
  config.gap_policy = GapPolicy::kRewarm;
  config.rewarm_gap = 3;
  config.watchdog.enabled = false;
  DegradingSampleGate gate = rig.MakeGate(config);

  auto gap_tick = [&]() {
    rig.hypervisor->RunTick();
    return gate.OnTick();
  };
  rig.hypervisor->RunTick();
  rig.source.next = Sample(1, 500, 50);
  gate.OnTick();

  EXPECT_FALSE(gap_tick().rewarm);  // gap length 1
  EXPECT_FALSE(gap_tick().rewarm);  // 2
  EXPECT_TRUE(gap_tick().rewarm);   // 3 = rewarm_gap: fire once
  EXPECT_FALSE(gap_tick().rewarm);  // same gap keeps running: no repeat
  EXPECT_FALSE(gap_tick().rewarm);
  EXPECT_EQ(gate.stats().rewarms, 1u);

  // Data resumes, then a second long gap earns a second re-warm.
  rig.hypervisor->RunTick();
  rig.source.next = Sample(10, 500, 50);
  gate.OnTick();
  EXPECT_FALSE(gap_tick().rewarm);
  EXPECT_FALSE(gap_tick().rewarm);
  EXPECT_TRUE(gap_tick().rewarm);
  EXPECT_EQ(gate.stats().rewarms, 2u);
}

TEST(DegradingSampleGateTest, RestartRewarmsUnlessHoldLast) {
  // A successful watchdog restart re-baselines the source. Under hold-last
  // the substitute stream stayed continuous, so analyzer state is kept;
  // under skip-freeze the gap left a real discontinuity and the consumer
  // must re-warm.
  for (const GapPolicy policy :
       {GapPolicy::kHoldLast, GapPolicy::kSkipFreeze}) {
    GateRig rig;
    rig.source.healthy_flag = false;  // dead: watchdog probes immediately
    DegradeConfig config;
    config.gap_policy = policy;
    DegradingSampleGate gate = rig.MakeGate(config);
    rig.hypervisor->RunTick();
    const auto out = gate.OnTick();
    EXPECT_EQ(rig.source.restart_calls, 1);
    EXPECT_EQ(out.rewarm, policy != GapPolicy::kHoldLast)
        << GapPolicyName(policy);
    EXPECT_EQ(gate.stats().watchdog_restarts, 1u);
  }
}

TEST(DegradingSampleGateTest, SessionStartForgetsHeldSample) {
  GateRig rig;
  DegradeConfig config;
  config.watchdog.enabled = false;
  DegradingSampleGate gate = rig.MakeGate(config);
  rig.hypervisor->RunTick();
  rig.source.next = Sample(1, 500, 50);
  gate.OnTick();
  gate.OnSessionStart();
  // The previous session's last sample is stale context for the new one.
  rig.hypervisor->RunTick();
  const auto out = gate.OnTick();
  EXPECT_FALSE(out.sample.has_value());
  EXPECT_FALSE(out.substituted);
}

TEST(DegradingSampleGateTest, TransparentOverPerfectSource) {
  // With a fault-free real sampler every policy must be bit-transparent:
  // same samples out as in, zero degradation activity. (The golden
  // regression test pins the same invariant end-to-end.)
  for (const GapPolicy policy : {GapPolicy::kHoldLast, GapPolicy::kSkipFreeze,
                                 GapPolicy::kRewarm}) {
    Rig gate_rig;
    Rig plain_rig;
    pcm::PcmSampler source(*gate_rig.hypervisor, gate_rig.victim);
    pcm::PcmSampler plain(*plain_rig.hypervisor, plain_rig.victim);
    source.Start();
    plain.Start();
    DegradeConfig config;
    config.gap_policy = policy;
    DegradingSampleGate gate(*gate_rig.hypervisor, source, config, "test");
    for (int t = 0; t < 50; ++t) {
      gate_rig.hypervisor->RunTick();
      plain_rig.hypervisor->RunTick();
      const pcm::PcmSample want = plain.Sample();
      const auto out = gate.OnTick();
      ASSERT_TRUE(out.sample.has_value());
      EXPECT_FALSE(out.substituted);
      EXPECT_FALSE(out.rewarm);
      EXPECT_EQ(out.sample->access_num, want.access_num);
      EXPECT_EQ(out.sample->miss_num, want.miss_num);
    }
    EXPECT_EQ(gate.stats().delivered, 50u);
    EXPECT_EQ(gate.stats().gap_ticks, 0u);
    EXPECT_EQ(gate.stats().quarantined, 0u);
    EXPECT_EQ(gate.stats().watchdog_attempts, 0u);
  }
}

}  // namespace
}  // namespace sds::detect
