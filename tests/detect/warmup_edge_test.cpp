// Warm-up edge cases of the profiling/boundary pipeline: degenerate clean
// windows must produce a clear, immediate error (or a well-defined finite
// profile) — never a silent NaN that disables detection.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "detect/boundary.h"
#include "detect/period.h"
#include "detect/profile.h"

namespace sds::detect {
namespace {

// Small preprocessing windows so edge lengths stay readable; the checks
// under test are length-relative, not absolute.
DetectorParams SmallParams() {
  DetectorParams p;
  p.window = 10;
  p.step = 5;
  return p;
}

std::vector<pcm::PcmSample> ConstantSamples(std::size_t n,
                                            std::uint64_t access,
                                            std::uint64_t miss) {
  std::vector<pcm::PcmSample> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].tick = static_cast<Tick>(i + 1);
    out[i].access_num = access;
    out[i].miss_num = miss;
  }
  return out;
}

TEST(WarmupEdgeTest, SingleSampleProfileAbortsWithClearError) {
  const auto clean = ConstantSamples(1, 500, 50);
  EXPECT_DEATH(BuildSdsProfile(clean, SmallParams()), "too short");
}

TEST(WarmupEdgeTest, ProfileShorterThanOneWindowAborts) {
  // 9 raw samples never fill the 10-sample MA window: zero EWMA values.
  const auto clean = ConstantSamples(9, 500, 50);
  EXPECT_DEATH(BuildSdsProfile(clean, SmallParams()), "too short");
}

TEST(WarmupEdgeTest, ProfileWithOneEwmaValueAborts) {
  // Exactly one full window produces exactly one EWMA value — no variance
  // estimate exists, so sigma_E would be undefined.
  const auto clean = ConstantSamples(10, 500, 50);
  EXPECT_DEATH(BuildSdsProfile(clean, SmallParams()), "too short");
}

TEST(WarmupEdgeTest, TwoEwmaValuesAreTheMinimumViableProfile) {
  const auto clean = ConstantSamples(15, 500, 50);  // window + step
  const SdsProfile profile = BuildSdsProfile(clean, SmallParams());
  EXPECT_TRUE(std::isfinite(profile.access_boundary.mean));
  EXPECT_TRUE(std::isfinite(profile.access_boundary.stddev));
  EXPECT_DOUBLE_EQ(profile.access_boundary.mean, 500.0);
}

TEST(WarmupEdgeTest, AllZeroProfileIsFiniteAndNotPeriodic) {
  // An idle VM profiles as all-zero windows. That must yield mu = sigma = 0
  // (not NaN from a zero-variance normalization) and never classify as
  // periodic.
  const auto clean = ConstantSamples(400, 0, 0);
  const SdsProfile profile = BuildSdsProfile(clean, SmallParams());
  EXPECT_DOUBLE_EQ(profile.access_boundary.mean, 0.0);
  EXPECT_DOUBLE_EQ(profile.access_boundary.stddev, 0.0);
  EXPECT_DOUBLE_EQ(profile.miss_boundary.mean, 0.0);
  EXPECT_DOUBLE_EQ(profile.miss_boundary.stddev, 0.0);
  EXPECT_FALSE(profile.periodic());
}

TEST(WarmupEdgeTest, AllZeroProfileStillDetectsActivity) {
  // Degenerate zero-sigma bounds collapse to [0, 0]: zero traffic is
  // normal, any activity is a violation — strict and finite, not NaN-blind.
  const DetectorParams params = SmallParams();
  const auto clean = ConstantSamples(400, 0, 0);
  const SdsProfile profile = BuildSdsProfile(clean, params);
  BoundaryAnalyzer analyzer(profile.access_boundary, params);
  for (int i = 0; i < 20; ++i) {
    const auto s = analyzer.Observe(0.0);
    if (s.has_value()) {
      EXPECT_TRUE(std::isfinite(*s));
      EXPECT_EQ(analyzer.consecutive_violations(), 0);
    }
  }
  int violations = 0;
  for (int i = 0; i < 100; ++i) {
    if (analyzer.Observe(800.0).has_value() && analyzer.consecutive_violations() > 0) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

TEST(WarmupEdgeTest, ConstantProfileStaysInBoundsOnSameConstant) {
  // sigma_E = 0 collapses the bounds to the mean; the EWMA of the same
  // constant sits exactly on it and the strict comparison never fires.
  const DetectorParams params = SmallParams();
  const auto clean = ConstantSamples(100, 500, 50);
  const SdsProfile profile = BuildSdsProfile(clean, params);
  EXPECT_DOUBLE_EQ(profile.access_boundary.stddev, 0.0);
  BoundaryAnalyzer analyzer(profile.access_boundary, params);
  for (int i = 0; i < 100; ++i) {
    analyzer.Observe(500.0);
    EXPECT_EQ(analyzer.consecutive_violations(), 0);
  }
}

TEST(WarmupEdgeTest, NonFiniteCleanSamplesAbort) {
  const DetectorParams params = SmallParams();
  std::vector<double> raw(100, 500.0);
  raw[40] = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(BuildBoundaryProfile(raw, params), "finite");
}

TEST(WarmupEdgeTest, PeriodClassifierRejectsDegenerateSeries) {
  const DetectorParams params = SmallParams();
  // Too short for any half-window estimate.
  EXPECT_FALSE(
      ClassifyPeriodicity(std::vector<double>(8, 1.0), params).has_value());
  // Long but flat: no spectral structure, no ACF hill.
  EXPECT_FALSE(
      ClassifyPeriodicity(std::vector<double>(400, 0.0), params).has_value());
}

TEST(WarmupEdgeTest, PeriodAnalyzerRejectsZeroPeriodProfile) {
  PeriodProfile profile;
  profile.period = 0.0;
  EXPECT_DEATH(PeriodAnalyzer(profile, DetectorParams{}), "positive");
}

}  // namespace
}  // namespace sds::detect
