#include "detect/kstest_detector.h"

#include <gtest/gtest.h>

#include "eval/scenario.h"

namespace sds::detect {
namespace {

KsTestParams FastParams() {
  // Scaled-down grid so unit tests stay quick: L_R=600, W_R=50, L_M=100,
  // W_M=50 ticks.
  KsTestParams p;
  p.l_r = 600;
  p.w_r = 50;
  p.l_m = 100;
  p.w_m = 50;
  p.initial_offset = p.l_r - 1;  // first reference right away
  return p;
}

struct Rig {
  eval::Scenario scenario;

  Rig(const std::string& app, eval::AttackKind attack, Tick attack_start,
      std::uint64_t seed) {
    eval::ScenarioConfig cfg;
    cfg.app = app;
    cfg.attack = attack;
    cfg.attack_start = attack_start;
    cfg.seed = seed;
    scenario = eval::BuildScenario(cfg);
  }

  void Run(Detector& d, Tick ticks) {
    for (Tick t = 0; t < ticks; ++t) {
      scenario.hypervisor->RunTick();
      d.OnTick();
    }
  }
};

TEST(KsTestDetectorTest, CollectsReferenceUnderThrottling) {
  Rig rig("bayes", eval::AttackKind::kNone, 0, 1);
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams());
  EXPECT_FALSE(det.has_reference());
  rig.Run(det, 2);
  // Reference collection throttles all other VMs.
  EXPECT_TRUE(rig.scenario.hypervisor->throttling_active());
  rig.Run(det, 60);
  EXPECT_TRUE(det.has_reference());
  EXPECT_FALSE(rig.scenario.hypervisor->throttling_active());
}

TEST(KsTestDetectorTest, ProducesDecisionsOnGrid) {
  Rig rig("bayes", eval::AttackKind::kNone, 0, 2);
  // Identification sweeps would suspend the monitored-test grid; disable
  // them to verify the bare schedule.
  KsIdentificationParams ident;
  ident.enabled = false;
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams(), ident);
  rig.Run(det, 1200);
  // After the reference (51 ticks), monitored windows complete every L_M.
  EXPECT_GE(det.decisions().size(), 5u);
  for (std::size_t i = 1; i < det.decisions().size(); ++i) {
    EXPECT_GT(det.decisions()[i].tick, det.decisions()[i - 1].tick);
  }
}

TEST(KsTestDetectorTest, StationaryAppMostlyPasses) {
  Rig rig("bayes", eval::AttackKind::kNone, 0, 3);
  KsIdentificationParams ident;
  ident.enabled = false;
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams(), ident);
  rig.Run(det, 6000);
  ASSERT_GT(det.decisions().size(), 10u);
  int rejected = 0;
  for (const auto& d : det.decisions()) {
    if (d.rejected()) ++rejected;
  }
  // False rejections are common — that is the paper's point — but a
  // stationary application must not reject every single window.
  EXPECT_LT(rejected, static_cast<int>(det.decisions().size()));
}

TEST(KsTestDetectorTest, DetectsBusLockAttack) {
  Rig rig("bayes", eval::AttackKind::kBusLock, 3000, 4);
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams());
  rig.Run(det, 3000);
  const auto events_before = det.alarm_events();
  rig.Run(det, 6000);
  EXPECT_GT(det.alarm_events(), events_before);
  EXPECT_TRUE(det.attack_active());
}

TEST(KsTestDetectorTest, IdentifiesTheAttackerVm) {
  Rig rig("bayes", eval::AttackKind::kBusLock, 3000, 5);
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams());
  rig.Run(det, 9000);
  ASSERT_TRUE(det.attack_active());
  ASSERT_GE(det.identification_sweeps(), 1u);
  // The attack VM is owner 2 in the standard scenario layout.
  EXPECT_EQ(det.identified_attacker(), rig.scenario.attacker);
}

TEST(KsTestDetectorTest, DetectsCleansingAttack) {
  Rig rig("aggregation", eval::AttackKind::kLlcCleansing, 3000, 6);
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams());
  rig.Run(det, 9000);
  EXPECT_TRUE(det.attack_active());
}

TEST(KsTestDetectorTest, NoIdentificationWhenDisabled) {
  Rig rig("bayes", eval::AttackKind::kBusLock, 2000, 7);
  KsIdentificationParams ident;
  ident.enabled = false;
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams(), ident);
  rig.Run(det, 8000);
  EXPECT_TRUE(det.attack_active());
  EXPECT_EQ(det.identification_sweeps(), 0u);
}

TEST(KsTestDetectorTest, TriggerTickPrecedesAlarmEvent) {
  Rig rig("bayes", eval::AttackKind::kBusLock, 2000, 8);
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams());
  rig.Run(det, 8000);
  ASSERT_GE(det.alarm_events(), 1u);
  EXPECT_GE(det.last_alarm_trigger_tick(), 2000);
  EXPECT_LE(det.last_alarm_trigger_tick(), rig.scenario.hypervisor->now());
}

TEST(KsTestDetectorTest, TerasortCleanRunRaisesFalseAlarms) {
  // The paper's Figure 1 phenomenon at detector level: TeraSort's
  // phase-switching statistics trip KStest even without any attack.
  Rig rig("terasort", eval::AttackKind::kNone, 0, 9);
  KsTestDetector det(*rig.scenario.hypervisor, rig.scenario.victim,
                     FastParams());
  rig.Run(det, 12000);
  EXPECT_GE(det.alarm_events(), 1u);
}

TEST(KsTestDetectorTest, RejectsBadParams) {
  Rig rig("bayes", eval::AttackKind::kNone, 0, 10);
  KsTestParams p = FastParams();
  p.w_r = 0;
  EXPECT_DEATH(
      KsTestDetector(*rig.scenario.hypervisor, rig.scenario.victim, p),
      "windows must be positive");
  KsTestParams q = FastParams();
  q.initial_offset = q.l_r;
  EXPECT_DEATH(
      KsTestDetector(*rig.scenario.hypervisor, rig.scenario.victim, q),
      "grid offset");
}

}  // namespace
}  // namespace sds::detect
