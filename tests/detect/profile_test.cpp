#include "detect/profile.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace sds::detect {
namespace {

std::vector<pcm::PcmSample> CleanSamples(const std::string& app, Tick ticks,
                                         std::uint64_t seed) {
  eval::ScenarioConfig base;
  base.app = app;
  return eval::CollectCleanSamples(base, ticks, seed);
}

TEST(ChannelSeriesTest, ExtractsChannels) {
  std::vector<pcm::PcmSample> samples(3);
  samples[0].access_num = 10;
  samples[0].miss_num = 1;
  samples[1].access_num = 20;
  samples[1].miss_num = 2;
  samples[2].access_num = 30;
  samples[2].miss_num = 3;
  const auto access = ChannelSeries(samples, pcm::Channel::kAccessNum);
  const auto miss = ChannelSeries(samples, pcm::Channel::kMissNum);
  EXPECT_EQ(access, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(miss, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(BuildSdsProfileTest, StationaryAppNotPeriodic) {
  const auto samples = CleanSamples("bayes", 8000, 1);
  DetectorParams params;
  const SdsProfile profile = BuildSdsProfile(samples, params);
  EXPECT_FALSE(profile.periodic());
  EXPECT_GT(profile.access_boundary.mean, 0.0);
  EXPECT_GT(profile.access_boundary.stddev, 0.0);
  EXPECT_GT(profile.miss_boundary.mean, 0.0);
  // Misses are a strict subset of accesses.
  EXPECT_LT(profile.miss_boundary.mean, profile.access_boundary.mean);
}

TEST(BuildSdsProfileTest, FacenetIsPeriodicWithExpectedPeriod) {
  const auto samples = CleanSamples("facenet", 12000, 2);
  DetectorParams params;
  const SdsProfile profile = BuildSdsProfile(samples, params);
  ASSERT_TRUE(profile.periodic());
  // Nominal period 850 ticks / step 50 = 17 MA steps (Figure 8 shows ~17).
  const auto& pp =
      profile.access_period ? profile.access_period : profile.miss_period;
  ASSERT_TRUE(pp.has_value());
  EXPECT_NEAR(pp->period, 17.0, 3.5);
}

TEST(BuildSdsProfileTest, PcaIsPeriodic) {
  const auto samples = CleanSamples("pca", 12000, 3);
  DetectorParams params;
  EXPECT_TRUE(BuildSdsProfile(samples, params).periodic());
}

TEST(BuildSdsProfileTest, KmeansAndJoinNotPeriodic) {
  // The paper treats these iterative apps as non-periodic: their cycle
  // lengths drift too much for a stable period.
  DetectorParams params;
  for (const char* app : {"kmeans", "join", "terasort"}) {
    const auto samples = CleanSamples(app, 12000, 4);
    EXPECT_FALSE(BuildSdsProfile(samples, params).periodic()) << app;
  }
}

TEST(BuildSdsProfileTest, DeterministicAcrossCalls) {
  const auto a = CleanSamples("svm", 6000, 5);
  const auto b = CleanSamples("svm", 6000, 5);
  DetectorParams params;
  const SdsProfile pa = BuildSdsProfile(a, params);
  const SdsProfile pb = BuildSdsProfile(b, params);
  EXPECT_DOUBLE_EQ(pa.access_boundary.mean, pb.access_boundary.mean);
  EXPECT_DOUBLE_EQ(pa.access_boundary.stddev, pb.access_boundary.stddev);
  EXPECT_DOUBLE_EQ(pa.miss_boundary.mean, pb.miss_boundary.mean);
}

}  // namespace
}  // namespace sds::detect
