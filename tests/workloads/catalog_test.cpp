#include "workloads/catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace sds::workloads {
namespace {

TEST(CatalogTest, HasAllTenPaperApplications) {
  const auto& catalog = AppCatalog();
  EXPECT_EQ(catalog.size(), 10u);
  std::set<std::string> names;
  for (const auto& info : catalog) names.insert(info.name);
  for (const char* expected :
       {"bayes", "svm", "kmeans", "pca", "aggregation", "join", "scan",
        "terasort", "pagerank", "facenet"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(CatalogTest, PeriodicFlagsMatchPaper) {
  // Section 3.3: PCA and FaceNet are the periodic applications.
  for (const auto& info : AppCatalog()) {
    const bool expected_periodic =
        info.name == "pca" || info.name == "facenet";
    EXPECT_EQ(info.periodic, expected_periodic) << info.name;
    if (info.periodic) {
      EXPECT_GT(info.nominal_period_ticks, 0);
    } else {
      EXPECT_EQ(info.nominal_period_ticks, 0);
    }
  }
}

TEST(CatalogTest, CategoriesMatchPaperSections) {
  EXPECT_EQ(AppInfoFor("bayes").category, "machine-learning");
  EXPECT_EQ(AppInfoFor("aggregation").category, "database");
  EXPECT_EQ(AppInfoFor("terasort").category, "data-intensive");
  EXPECT_EQ(AppInfoFor("pagerank").category, "web-search");
  EXPECT_EQ(AppInfoFor("facenet").category, "deep-learning");
}

TEST(CatalogTest, IsKnownApp) {
  EXPECT_TRUE(IsKnownApp("kmeans"));
  EXPECT_FALSE(IsKnownApp("notanapp"));
  EXPECT_FALSE(IsKnownApp(""));
}

TEST(CatalogTest, MakeAppInstantiatesEveryEntry) {
  for (const auto& info : AppCatalog()) {
    auto w = MakeApp(info.name);
    ASSERT_NE(w, nullptr) << info.name;
    EXPECT_EQ(w->name(), info.name);
  }
}

TEST(CatalogTest, SpecsAreInternallyConsistent) {
  for (const auto& info : AppCatalog()) {
    const SyntheticSpec spec = SpecForApp(info.name);
    EXPECT_EQ(spec.name, info.name);
    EXPECT_FALSE(spec.phases.empty());
    for (const auto& p : spec.phases) {
      EXPECT_GT(p.intensity, 0.0) << info.name << "/" << p.name;
      EXPECT_GE(p.hot_fraction, 0.0);
      EXPECT_LE(p.hot_fraction, 1.0);
      EXPECT_GT(p.hot_lines, 0u);
      EXPECT_GT(p.stream_lines, 0u);
    }
    // Periodic apps must cycle with finite phase work.
    if (info.periodic) {
      EXPECT_TRUE(spec.cycle);
      EXPECT_GT(spec.phases.size(), 1u);
      for (const auto& p : spec.phases) EXPECT_GT(p.work, 0u);
    }
  }
}

TEST(CatalogTest, PeriodicAppPhaseWorkMatchesNominalPeriod) {
  // Sum over phases of work / completed-per-tick should approximate the
  // catalog's nominal period (completed-per-tick = I / (1 + miss*stall)).
  for (const char* app : {"pca", "facenet"}) {
    const auto& info = AppInfoFor(app);
    const SyntheticSpec spec = SpecForApp(app);
    double ticks = 0.0;
    for (const auto& p : spec.phases) {
      const double miss_frac = 1.0 - p.hot_fraction;
      const double completed_per_tick =
          p.intensity / (1.0 + miss_frac * spec.miss_stall_cost);
      ticks += static_cast<double>(p.work) / completed_per_tick;
    }
    EXPECT_NEAR(ticks, static_cast<double>(info.nominal_period_ticks),
                0.15 * static_cast<double>(info.nominal_period_ticks))
        << app;
  }
}

TEST(CatalogTest, BenignUtilityIsLightweight) {
  auto w = MakeBenignUtility();
  ASSERT_NE(w, nullptr);
  auto* synthetic = dynamic_cast<SyntheticWorkload*>(w.get());
  ASSERT_NE(synthetic, nullptr);
  EXPECT_LT(synthetic->spec().phases[0].intensity, 100.0);
}

TEST(CatalogTest, AppInfoForUnknownAborts) {
  EXPECT_DEATH(AppInfoFor("nope"), "unknown application");
}

}  // namespace
}  // namespace sds::workloads
