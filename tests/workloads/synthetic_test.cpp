#include "workloads/synthetic.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/mem_op.h"

namespace sds::workloads {
namespace {

SyntheticSpec SimpleSpec() {
  SyntheticSpec s;
  s.name = "test";
  PhaseSpec p;
  p.name = "only";
  p.intensity = 100.0;
  p.hot_fraction = 0.5;
  p.hot_lines = 64;
  p.stream_lines = 1000;
  s.phases = {p};
  s.ou_tau_ticks = 0.0;  // disable OU for determinism
  s.ou_sigma = 0.0;
  s.tick_jitter = 0.0;
  s.miss_stall_cost = 0.0;
  return s;
}

// Drains all ops for one tick, reporting the given outcome for each.
std::vector<sim::MemOp> DrainTick(SyntheticWorkload& w, Tick now,
                                  sim::AccessOutcome outcome) {
  w.BeginTick(now);
  std::vector<sim::MemOp> ops;
  sim::MemOp op;
  while (w.NextOp(op)) {
    ops.push_back(op);
    w.OnOutcome(op, outcome);
  }
  return ops;
}

TEST(SyntheticWorkloadTest, PlansIntensityOpsPerTick) {
  SyntheticWorkload w(SimpleSpec());
  w.Bind(0, Rng(1));
  const auto ops = DrainTick(w, 0, sim::AccessOutcome::kHit);
  EXPECT_EQ(ops.size(), 100u);
}

TEST(SyntheticWorkloadTest, AddressesStayInOwnRegion) {
  SyntheticWorkload w(SimpleSpec());
  const LineAddr base = 1ull << 36;
  w.Bind(base, Rng(2));
  for (Tick t = 0; t < 10; ++t) {
    for (const auto& op : DrainTick(w, t, sim::AccessOutcome::kHit)) {
      EXPECT_GE(op.addr, base);
      EXPECT_LT(op.addr, base + (1ull << 36));
    }
  }
}

TEST(SyntheticWorkloadTest, HotFractionRespected) {
  SyntheticSpec spec = SimpleSpec();
  spec.phases[0].hot_fraction = 0.8;
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(3));
  std::size_t hot = 0;
  std::size_t total = 0;
  for (Tick t = 0; t < 100; ++t) {
    for (const auto& op : DrainTick(w, t, sim::AccessOutcome::kHit)) {
      ++total;
      if (op.addr < spec.phases[0].hot_lines) ++hot;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(total), 0.8,
              0.03);
}

TEST(SyntheticWorkloadTest, StreamAddressesSequentialAndWrapping) {
  SyntheticSpec spec = SimpleSpec();
  spec.phases[0].hot_fraction = 0.0;
  spec.phases[0].stream_lines = 50;
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(4));
  std::vector<LineAddr> stream;
  for (Tick t = 0; t < 2; ++t) {
    for (const auto& op : DrainTick(w, t, sim::AccessOutcome::kHit)) {
      stream.push_back(op.addr);
    }
  }
  const LineAddr stream_base = spec.phases[0].hot_lines;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i], stream_base + (i % 50));
  }
}

TEST(SyntheticWorkloadTest, StalledOpsDoNotCountAsWork) {
  SyntheticWorkload w(SimpleSpec());
  w.Bind(0, Rng(5));
  DrainTick(w, 0, sim::AccessOutcome::kStalled);
  EXPECT_EQ(w.work_completed(), 0u);
  for (Tick t = 1; t <= 20; ++t) DrainTick(w, t, sim::AccessOutcome::kHit);
  EXPECT_EQ(w.work_completed(), 2u);  // 2000 completed ops / work_unit 1000
}

TEST(SyntheticWorkloadTest, MissStallReducesTickThroughput) {
  SyntheticSpec spec = SimpleSpec();
  spec.miss_stall_cost = 2.0;
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(6));
  const auto all_hit = DrainTick(w, 0, sim::AccessOutcome::kHit);
  const auto all_miss = DrainTick(w, 1, sim::AccessOutcome::kMiss);
  EXPECT_EQ(all_hit.size(), 100u);
  // Every miss eats 2 extra budget units: ~100/3 ops complete.
  EXPECT_NEAR(static_cast<double>(all_miss.size()), 100.0 / 3.0, 2.0);
}

TEST(SyntheticWorkloadTest, PhasesAdvanceByCompletedWork) {
  SyntheticSpec spec = SimpleSpec();
  PhaseSpec second = spec.phases[0];
  second.name = "second";
  spec.phases[0].work = 150;  // advance after 150 completed ops
  spec.phases.push_back(second);
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(7));
  EXPECT_EQ(w.current_phase(), 0u);
  DrainTick(w, 0, sim::AccessOutcome::kHit);  // 100 ops
  EXPECT_EQ(w.current_phase(), 0u);
  DrainTick(w, 1, sim::AccessOutcome::kHit);  // 200 ops total
  EXPECT_EQ(w.current_phase(), 1u);
}

TEST(SyntheticWorkloadTest, StalledTicksDoNotAdvancePhases) {
  SyntheticSpec spec = SimpleSpec();
  spec.phases[0].work = 150;
  PhaseSpec second = spec.phases[0];
  second.work = 0;
  spec.phases.push_back(second);
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(8));
  for (Tick t = 0; t < 10; ++t) DrainTick(w, t, sim::AccessOutcome::kStalled);
  EXPECT_EQ(w.current_phase(), 0u);
}

TEST(SyntheticWorkloadTest, CyclingCountsBatches) {
  SyntheticSpec spec = SimpleSpec();
  spec.phases[0].work = 100;
  PhaseSpec second = spec.phases[0];
  spec.phases.push_back(second);
  spec.cycle = true;
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(9));
  for (Tick t = 0; t < 10; ++t) DrainTick(w, t, sim::AccessOutcome::kHit);
  // 1000 completed ops / 200 per cycle = 5 batches.
  EXPECT_EQ(w.batches_completed(), 5u);
}

TEST(SyntheticWorkloadTest, NonCyclingStaysInLastPhase) {
  SyntheticSpec spec = SimpleSpec();
  spec.phases[0].work = 100;
  PhaseSpec second = spec.phases[0];
  second.work = 100;
  spec.phases.push_back(second);
  spec.cycle = false;
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(10));
  for (Tick t = 0; t < 20; ++t) DrainTick(w, t, sim::AccessOutcome::kHit);
  EXPECT_EQ(w.current_phase(), 1u);
  EXPECT_EQ(w.batches_completed(), 1u);
}

TEST(SyntheticWorkloadTest, PhaseHotRegionsAreDisjoint) {
  SyntheticSpec spec = SimpleSpec();
  spec.phases[0].work = 100;
  spec.phases[0].hot_fraction = 1.0;
  PhaseSpec second = spec.phases[0];
  second.work = 0;
  spec.phases.push_back(second);
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(11));
  const auto first_ops = DrainTick(w, 0, sim::AccessOutcome::kHit);
  // Now in phase 1.
  const auto second_ops = DrainTick(w, 1, sim::AccessOutcome::kHit);
  LineAddr first_max = 0;
  for (const auto& op : first_ops) first_max = std::max(first_max, op.addr);
  LineAddr second_min = ~0ull;
  for (const auto& op : second_ops) second_min = std::min(second_min, op.addr);
  EXPECT_LT(first_max, spec.phases[0].hot_lines);
  EXPECT_GE(second_min, spec.phases[0].hot_lines);
}

TEST(SyntheticWorkloadTest, DeterministicForSameSeed) {
  SyntheticSpec spec = SimpleSpec();
  spec.tick_jitter = 0.1;
  spec.ou_tau_ticks = 100.0;
  spec.ou_sigma = 0.1;
  SyntheticWorkload a(spec);
  SyntheticWorkload b(spec);
  a.Bind(0, Rng(12));
  b.Bind(0, Rng(12));
  for (Tick t = 0; t < 5; ++t) {
    const auto oa = DrainTick(a, t, sim::AccessOutcome::kHit);
    const auto ob = DrainTick(b, t, sim::AccessOutcome::kHit);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].addr, ob[i].addr);
    }
  }
}

TEST(SyntheticWorkloadTest, ZipfConcentratesOnLowRanks) {
  SyntheticSpec spec = SimpleSpec();
  spec.zipf_exponent = 1.0;
  spec.phases[0].hot_fraction = 1.0;
  spec.phases[0].hot_lines = 1000;
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(13));
  std::size_t low = 0;
  std::size_t total = 0;
  for (Tick t = 0; t < 100; ++t) {
    for (const auto& op : DrainTick(w, t, sim::AccessOutcome::kHit)) {
      ++total;
      if (op.addr < 10) ++low;
    }
  }
  // Top-10 of 1000 Zipf(1.0) lines carry ~39% of accesses; uniform would be 1%.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.2);
}

TEST(SyntheticWorkloadTest, OuJitterVariesBudget) {
  SyntheticSpec spec = SimpleSpec();
  spec.ou_tau_ticks = 50.0;
  spec.ou_sigma = 0.2;
  SyntheticWorkload w(spec);
  w.Bind(0, Rng(14));
  std::size_t min_ops = ~0ull;
  std::size_t max_ops = 0;
  for (Tick t = 0; t < 200; ++t) {
    const auto n = DrainTick(w, t, sim::AccessOutcome::kHit).size();
    min_ops = std::min(min_ops, n);
    max_ops = std::max(max_ops, n);
  }
  EXPECT_LT(min_ops, 95u);
  EXPECT_GT(max_ops, 105u);
}

}  // namespace
}  // namespace sds::workloads
