#include "pcm/trace.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sds::pcm {
namespace {

std::vector<PcmSample> MakeSamples(int n) {
  std::vector<PcmSample> samples;
  for (int i = 0; i < n; ++i) {
    PcmSample s;
    s.tick = i + 1;
    s.access_num = static_cast<std::uint64_t>(100 + i);
    s.miss_num = static_cast<std::uint64_t>(10 + i % 7);
    samples.push_back(s);
  }
  return samples;
}

TEST(TraceTest, RoundTrip) {
  const auto samples = MakeSamples(50);
  std::stringstream ss;
  ASSERT_TRUE(WriteTrace(ss, samples));
  const auto back = ReadTrace(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ((*back)[i].tick, samples[i].tick);
    EXPECT_EQ((*back)[i].access_num, samples[i].access_num);
    EXPECT_EQ((*back)[i].miss_num, samples[i].miss_num);
  }
}

TEST(TraceTest, EmptyTraceRoundTrips) {
  std::stringstream ss;
  ASSERT_TRUE(WriteTrace(ss, {}));
  const auto back = ReadTrace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(TraceTest, RejectsMissingHeader) {
  std::stringstream ss("1,2,3\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
}

TEST(TraceTest, RejectsWrongHeader) {
  std::stringstream ss("time,hits,misses\n1,2,3\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
}

TEST(TraceTest, RejectsNonNumericField) {
  std::stringstream ss("tick,access_num,miss_num\n1,abc,3\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
}

TEST(TraceTest, RejectsMissingField) {
  std::stringstream ss("tick,access_num,miss_num\n1,2\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
}

TEST(TraceTest, RejectsNonMonotoneTicks) {
  std::stringstream ss("tick,access_num,miss_num\n5,1,1\n5,2,2\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
  std::stringstream ss2("tick,access_num,miss_num\n5,1,1\n4,2,2\n");
  EXPECT_FALSE(ReadTrace(ss2).has_value());
}

TEST(TraceTest, SkipsBlankLines) {
  std::stringstream ss("tick,access_num,miss_num\n1,2,3\n\n2,4,5\n");
  const auto back = ReadTrace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 2u);
}

TEST(TraceTest, FileRoundTrip) {
  const auto samples = MakeSamples(10);
  const std::string path = ::testing::TempDir() + "/sds_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, samples));
  const auto back = ReadTraceFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 10u);
}

TEST(TraceTest, MissingFileFails) {
  EXPECT_FALSE(ReadTraceFile("/nonexistent/path/trace.csv").has_value());
}

TEST(TraceJsonlTest, RoundTrip) {
  const auto samples = MakeSamples(50);
  std::stringstream ss;
  ASSERT_TRUE(WriteTraceJsonl(ss, samples));
  const auto back = ReadTraceJsonl(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ((*back)[i].tick, samples[i].tick);
    EXPECT_EQ((*back)[i].access_num, samples[i].access_num);
    EXPECT_EQ((*back)[i].miss_num, samples[i].miss_num);
  }
}

TEST(TraceJsonlTest, LinesUseTelemetryEventSchema) {
  const auto samples = MakeSamples(1);
  std::stringstream ss;
  ASSERT_TRUE(WriteTraceJsonl(ss, samples));
  const std::string line = ss.str();
  EXPECT_NE(line.find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(line.find("\"layer\":\"pcm\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"sample\""), std::string::npos);
}

TEST(TraceJsonlTest, SkipsNonSampleLines) {
  std::stringstream ss(
      "{\"type\":\"header\",\"format\":\"sds-telemetry\"}\n"
      "{\"type\":\"event\",\"tick\":1,\"layer\":\"pcm\",\"event\":\"sample\","
      "\"access_num\":10,\"miss_num\":2}\n"
      "{\"type\":\"event\",\"tick\":1,\"layer\":\"vm\",\"event\":\"vm_created\","
      "\"owner\":1}\n"
      "{\"type\":\"metric\",\"metric\":\"counter\",\"name\":\"c\","
      "\"value\":3}\n");
  const auto back = ReadTraceJsonl(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].tick, 1);
  EXPECT_EQ((*back)[0].access_num, 10u);
  EXPECT_EQ((*back)[0].miss_num, 2u);
}

TEST(TraceJsonlTest, RejectsMalformedSampleLine) {
  std::stringstream ss(
      "{\"type\":\"event\",\"tick\":1,\"layer\":\"pcm\",\"event\":\"sample\","
      "\"access_num\":oops,\"miss_num\":2}\n");
  EXPECT_FALSE(ReadTraceJsonl(ss).has_value());
}

TEST(TraceJsonlTest, RejectsNonMonotoneTicks) {
  const auto samples = MakeSamples(2);
  std::stringstream ss;
  ASSERT_TRUE(WriteTraceJsonl(ss, samples));
  ASSERT_TRUE(WriteTraceJsonl(ss, samples));  // duplicate ticks
  EXPECT_FALSE(ReadTraceJsonl(ss).has_value());
}

TEST(TraceJsonlTest, FileRoundTrip) {
  const auto samples = MakeSamples(10);
  const std::string path = ::testing::TempDir() + "/sds_trace_test.jsonl";
  ASSERT_TRUE(WriteTraceJsonlFile(path, samples));
  const auto back = ReadTraceJsonlFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 10u);
}

}  // namespace
}  // namespace sds::pcm
