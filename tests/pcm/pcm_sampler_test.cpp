#include "pcm/pcm_sampler.h"

#include <memory>

#include <gtest/gtest.h>

#include "eval/scenario.h"
#include "workloads/catalog.h"

namespace sds::pcm {
namespace {

struct Rig {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<vm::Hypervisor> hypervisor;
  OwnerId victim;

  Rig() {
    sim::MachineConfig mc;
    machine = std::make_unique<sim::Machine>(mc);
    vm::HypervisorConfig hc;
    hypervisor = std::make_unique<vm::Hypervisor>(*machine, hc, Rng(3));
    victim = hypervisor->CreateVm("victim", workloads::MakeApp("bayes"));
  }
};

TEST(PcmSamplerTest, StartsStopped) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  EXPECT_FALSE(sampler.started());
  EXPECT_EQ(rig.hypervisor->active_monitors(), 0);
}

TEST(PcmSamplerTest, StartAttachesMonitor) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  EXPECT_EQ(rig.hypervisor->active_monitors(), 1);
  sampler.Stop();
  EXPECT_EQ(rig.hypervisor->active_monitors(), 0);
}

TEST(PcmSamplerTest, DestructorDetaches) {
  Rig rig;
  {
    PcmSampler sampler(*rig.hypervisor, rig.victim);
    sampler.Start();
  }
  EXPECT_EQ(rig.hypervisor->active_monitors(), 0);
}

TEST(PcmSamplerTest, DeltasSumToCumulativeCounters) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  const auto start_acc =
      rig.machine->counters(rig.victim).llc_accesses;
  std::uint64_t sum_access = 0;
  std::uint64_t sum_miss = 0;
  for (int t = 0; t < 100; ++t) {
    rig.hypervisor->RunTick();
    const PcmSample s = sampler.Sample();
    sum_access += s.access_num;
    sum_miss += s.miss_num;
  }
  EXPECT_EQ(sum_access,
            rig.machine->counters(rig.victim).llc_accesses - start_acc);
  EXPECT_EQ(sum_miss, rig.machine->counters(rig.victim).llc_misses);
}

TEST(PcmSamplerTest, SamplesCarryTickStamps) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  rig.hypervisor->RunTick();
  const PcmSample a = sampler.Sample();
  rig.hypervisor->RunTick();
  const PcmSample b = sampler.Sample();
  EXPECT_EQ(b.tick, a.tick + 1);
}

TEST(PcmSamplerTest, RestartResetsBaseline) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  rig.hypervisor->RunTick();
  sampler.Sample();
  sampler.Stop();
  // Activity while not sampling must not leak into the next delta.
  for (int t = 0; t < 10; ++t) rig.hypervisor->RunTick();
  sampler.Start();
  rig.hypervisor->RunTick();
  const PcmSample s = sampler.Sample();
  // One tick of a ~400-600 ops/tick workload, not eleven.
  EXPECT_LT(s.access_num, 1500u);
  EXPECT_GT(s.access_num, 0u);
}

TEST(PcmSamplerTest, CollectSamplesLength) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  const auto samples = CollectSamples(*rig.hypervisor, sampler, 50);
  EXPECT_EQ(samples.size(), 50u);
}

TEST(PcmSamplerTest, ChannelHelpers) {
  PcmSample s;
  s.access_num = 7;
  s.miss_num = 3;
  EXPECT_DOUBLE_EQ(SampleValue(s, Channel::kAccessNum), 7.0);
  EXPECT_DOUBLE_EQ(SampleValue(s, Channel::kMissNum), 3.0);
  EXPECT_STREQ(ChannelName(Channel::kAccessNum), "AccessNum");
  EXPECT_STREQ(ChannelName(Channel::kMissNum), "MissNum");
}

TEST(PcmSamplerTest, DoubleStartAborts) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  EXPECT_DEATH(sampler.Start(), "already started");
}

// -- Once-per-tick contract ---------------------------------------------------

TEST(PcmSamplerTest, DoubleSampleInOneTickAborts) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  rig.hypervisor->RunTick();
  sampler.Sample();
  // The second delta would be zero and silently bias every statistic.
  EXPECT_DEATH(sampler.Sample(), "twice in one tick");
}

TEST(PcmSamplerTest, SampleInStartTickAborts) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  // Start() aligned the baseline to the current tick; sampling before the
  // next RunTick would produce the same zero-delta hazard.
  EXPECT_DEATH(sampler.Sample(), "twice in one tick");
}

TEST(PcmSamplerTest, MissedTicksAreToleratedAndCounted) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  rig.hypervisor->RunTick();
  const PcmSample first = sampler.Sample();
  EXPECT_EQ(sampler.missed_ticks(), 0u);
  EXPECT_EQ(sampler.last_span(), 1);

  // Skip 4 ticks, then read: the delta spans the whole 5-interval gap.
  for (int t = 0; t < 5; ++t) rig.hypervisor->RunTick();
  const PcmSample wide = sampler.Sample();
  EXPECT_EQ(sampler.missed_ticks(), 4u);
  EXPECT_EQ(sampler.last_span(), 5);
  // ~5 intervals of activity, so clearly more than one interval's worth.
  EXPECT_GT(wide.access_num, first.access_num * 2);

  // The next normal read is a clean single interval again.
  rig.hypervisor->RunTick();
  sampler.Sample();
  EXPECT_EQ(sampler.missed_ticks(), 4u);
  EXPECT_EQ(sampler.last_span(), 1);
}

TEST(PcmSamplerTest, TryRestartRebaselines) {
  Rig rig;
  PcmSampler sampler(*rig.hypervisor, rig.victim);
  sampler.Start();
  rig.hypervisor->RunTick();
  sampler.Sample();
  // Leave a 10-tick gap, restart, then read: the delta must NOT span the
  // gap (TryRestart re-baselined), unlike the missed-tick tolerance above.
  for (int t = 0; t < 10; ++t) rig.hypervisor->RunTick();
  EXPECT_TRUE(sampler.TryRestart());
  EXPECT_TRUE(sampler.started());
  rig.hypervisor->RunTick();
  const PcmSample s = sampler.Sample();
  EXPECT_EQ(sampler.last_span(), 1);
  EXPECT_LT(s.access_num, 1500u);
}

}  // namespace
}  // namespace sds::pcm
