#include "pcm/attribution_sampler.h"

#include <gtest/gtest.h>

#include "eval/scenario.h"
#include "sim/attribution.h"

namespace sds::pcm {
namespace {

eval::Scenario CleansingScenario() {
  eval::ScenarioConfig cfg;
  cfg.app = "bayes";
  cfg.attack = eval::AttackKind::kLlcCleansing;
  cfg.attack_start = 0;
  cfg.machine.attribution = true;
  cfg.seed = 11;
  return eval::BuildScenario(cfg);
}

TEST(AttributionSamplerTest, RequiresAttributionEnabled) {
  eval::ScenarioConfig cfg;
  eval::Scenario s = eval::BuildScenario(cfg);
  EXPECT_DEATH(AttributionSampler(*s.hypervisor, s.victim),
               "attribution enabled");
}

TEST(AttributionSamplerTest, DeltasSumToCumulativeLedger) {
  eval::Scenario s = CleansingScenario();
  AttributionSampler sampler(*s.hypervisor, s.victim);
  std::uint64_t ev = 0;
  std::uint64_t bd = 0;
  std::uint64_t oc = 0;
  for (int t = 0; t < 120; ++t) {
    s.hypervisor->RunTick();
    const AttributionSpan span = sampler.Sample();
    EXPECT_EQ(span.span, 1);
    ev += span.slices[s.attacker].evictions_on_target;
    bd += span.slices[s.attacker].bus_delay_on_target;
    oc += span.slices[s.attacker].occupancy_slots;
  }
  const sim::AttributionLedger& ledger = *s.machine->attribution();
  EXPECT_EQ(ev, ledger.evictions_inflicted(s.attacker, s.victim));
  EXPECT_EQ(bd, ledger.bus_delay_imposed(s.attacker, s.victim));
  EXPECT_EQ(oc, ledger.occupancy_slots(s.attacker));
  // The cleansing attack actually left eviction evidence to sum.
  EXPECT_GT(ev, 0u);
}

TEST(AttributionSamplerTest, AttackerSliceDominatesEvictions) {
  eval::Scenario s = CleansingScenario();
  AttributionSampler sampler(*s.hypervisor, s.victim);
  s.RunTicks(120);
  const AttributionSpan span = sampler.Sample();
  const std::uint64_t attacker_ev =
      span.slices[s.attacker].evictions_on_target;
  EXPECT_GT(attacker_ev, 0u);
  for (const AttributionSlice& slice : span.slices) {
    if (slice.owner == s.attacker || slice.owner == s.victim) continue;
    EXPECT_GT(attacker_ev, slice.evictions_on_target)
        << "owner " << slice.owner;
  }
}

TEST(AttributionSamplerTest, SkippedTicksWidenTheSpan) {
  eval::Scenario s = CleansingScenario();
  AttributionSampler sampler(*s.hypervisor, s.victim);
  s.RunTicks(5);
  const AttributionSpan span = sampler.Sample();
  EXPECT_EQ(span.span, 5);
  EXPECT_EQ(span.tick, s.hypervisor->now());
}

TEST(AttributionSamplerTest, DoubleSampleInOneTickAborts) {
  eval::Scenario s = CleansingScenario();
  AttributionSampler sampler(*s.hypervisor, s.victim);
  s.hypervisor->RunTick();
  sampler.Sample();
  EXPECT_DEATH(sampler.Sample(), "twice in one tick");
}

TEST(AttributionSamplerTest, StartRebaselines) {
  eval::Scenario s = CleansingScenario();
  AttributionSampler sampler(*s.hypervisor, s.victim);
  s.RunTicks(100);
  // Re-baseline: the accumulated attack evidence must not leak into the
  // next delta.
  sampler.Start();
  s.hypervisor->RunTick();
  const AttributionSpan span = sampler.Sample();
  EXPECT_EQ(span.span, 1);
  const sim::AttributionLedger& ledger = *s.machine->attribution();
  EXPECT_LT(span.slices[s.attacker].evictions_on_target,
            ledger.evictions_inflicted(s.attacker, s.victim));
}

}  // namespace
}  // namespace sds::pcm
