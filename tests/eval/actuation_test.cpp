#include "eval/actuation.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace sds::eval {
namespace {

// CI-sized run windows: short but still long enough for the full retry /
// escalate / fallback chain to play out under 100% fault rates.
ActuationRunConfig SmallRun() {
  ActuationRunConfig run;
  run.clean_window = 200;
  run.attack_lead = 150;
  run.settle_cap = 2000;
  run.post_window = 200;
  return run;
}

TEST(ActuationEvalTest, BaselineSettlesAtTheAlarmTick) {
  const ActuationRunResult r = RunActuationRun(SmallRun(), 7100);
  EXPECT_TRUE(r.settled);
  EXPECT_EQ(r.time_to_settled, 0);  // null plan: synchronous inside OnAlarm
  EXPECT_EQ(r.applied, cluster::MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(r.mitigation.retries, 0u);
  EXPECT_EQ(r.actuation.injected_total(), 0u);
  // The bus lock bites and migration relieves it.
  EXPECT_LT(r.rate_attacked, r.rate_clean);
  EXPECT_GT(r.rate_post, r.rate_attacked);
}

TEST(ActuationEvalTest, RunIsDeterministicPerSeed) {
  ActuationRunConfig run = SmallRun();
  run.plan = fault::ActuationFaultPlan::Single(
      fault::ActuationFaultKind::kMigrationAbort, 0.5, 99, 2, 8);
  const ActuationRunResult a = RunActuationRun(run, 7100);
  const ActuationRunResult b = RunActuationRun(run, 7100);
  EXPECT_EQ(a.settled, b.settled);
  EXPECT_EQ(a.time_to_settled, b.time_to_settled);
  EXPECT_EQ(a.mitigation.retries, b.mitigation.retries);
  EXPECT_EQ(a.actuation.injected_total(), b.actuation.injected_total());
  EXPECT_DOUBLE_EQ(a.rate_post, b.rate_post);
}

TEST(ActuationEvalTest, SweepSettlesEverywhereAtModerateRates) {
  // The acceptance bar: at every fault rate <= 50% the victim reaches
  // settled in 100% of seeded scenarios, and faulted cells are no faster
  // than the fault-free baseline.
  ActuationSweepConfig config;
  config.run = SmallRun();
  config.rates = {0.25, 0.5};
  config.runs_per_cell = 1;
  const ActuationSweepResult result = RunActuationSweep(config);

  EXPECT_DOUBLE_EQ(result.baseline.settle_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(result.baseline.mean_time_to_settled, 0.0);
  EXPECT_EQ(result.cells.size(), config.kinds.size() * config.rates.size());
  for (const auto& cell : result.cells) {
    SCOPED_TRACE(fault::ActuationFaultKindName(cell.kind) +
                 std::string(" @ ") + std::to_string(cell.rate));
    EXPECT_DOUBLE_EQ(cell.settle_ratio(), 1.0);
    EXPECT_EQ(cell.failed_runs, 0);
    EXPECT_GE(cell.mean_time_to_settled,
              result.baseline.mean_time_to_settled);
  }
}

TEST(ActuationEvalTest, JsonCarriesTheBenchSchema) {
  ActuationSweepConfig config;
  config.run = SmallRun();
  config.rates = {0.5};
  config.kinds = {fault::ActuationFaultKind::kMigrationAbort};
  config.runs_per_cell = 1;
  const ActuationSweepResult result = RunActuationSweep(config);

  std::ostringstream os;
  WriteActuationJson(os, config, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\":\"actuation\""), std::string::npos);
  EXPECT_NE(json.find("\"baseline\":{"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"migration-abort\""), std::string::npos);
  EXPECT_NE(json.find("\"settle_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"mean_residual_degradation\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace sds::eval
