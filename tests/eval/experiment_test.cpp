#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace sds::eval {
namespace {

TEST(CollectCleanSamplesTest, ReturnsRequestedCount) {
  ScenarioConfig base;
  base.app = "bayes";
  const auto samples = CollectCleanSamples(base, 1234, 1);
  EXPECT_EQ(samples.size(), 1234u);
}

TEST(CollectCleanSamplesTest, WarmupExcludesColdStart) {
  // The first returned sample must already be near steady state: without
  // warmup the cold cache would make early MissNum hugely inflated.
  ScenarioConfig base;
  base.app = "bayes";
  const auto samples = CollectCleanSamples(base, 3000, 2);
  const auto miss = detect::ChannelSeries(samples, pcm::Channel::kMissNum);
  const std::vector<double> head(miss.begin(), miss.begin() + 300);
  const std::vector<double> tail(miss.end() - 300, miss.end());
  EXPECT_LT(Mean(head), 2.0 * Mean(tail));
}

TEST(CollectCleanSamplesTest, IgnoresAttackInBaseConfig) {
  ScenarioConfig base;
  base.app = "bayes";
  base.attack = AttackKind::kBusLock;  // must be stripped
  base.attack_start = 0;
  const auto samples = CollectCleanSamples(base, 2000, 3);
  const auto access = detect::ChannelSeries(samples, pcm::Channel::kAccessNum);
  // Under a live bus-lock the mean would collapse; clean bayes sits much
  // higher.
  EXPECT_GT(Mean(access), 250.0);
}

TEST(RunMeasurementStudyTest, SampleCountAndDeterminism) {
  const auto a =
      RunMeasurementStudy("svm", AttackKind::kBusLock, 3000, 1500, 4);
  const auto b =
      RunMeasurementStudy("svm", AttackKind::kBusLock, 3000, 1500, 4);
  ASSERT_EQ(a.size(), 3000u);
  ASSERT_EQ(b.size(), 3000u);
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].access_num, b[i].access_num);
    EXPECT_EQ(a[i].miss_num, b[i].miss_num);
  }
}

TEST(RunKsFalseAlarmStudyTest, IntervalCountRespected) {
  detect::KsTestParams params;
  params.l_r = 1000;
  params.w_r = 50;
  params.l_m = 100;
  params.w_m = 50;
  const auto result = RunKsFalseAlarmStudy("bayes", params, 4, 5);
  EXPECT_EQ(result.interval_decisions.size(), 4u);
  EXPECT_GE(result.alarm_fraction, 0.0);
  EXPECT_LE(result.alarm_fraction, 1.0);
  // Each interval should contain several decisions.
  for (const auto& interval : result.interval_decisions) {
    EXPECT_GE(interval.size(), 3u);
  }
}

TEST(DetectionRunResultTest, SpecificityArithmetic) {
  DetectionRunResult r;
  r.true_negative_intervals = 9;
  r.false_positive_intervals = 1;
  EXPECT_DOUBLE_EQ(r.specificity(), 0.9);
  EXPECT_DOUBLE_EQ(r.recall(), 0.0);
  r.detected = true;
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
  DetectionRunResult empty;
  EXPECT_DOUBLE_EQ(empty.specificity(), 1.0);  // vacuous
}

}  // namespace
}  // namespace sds::eval
