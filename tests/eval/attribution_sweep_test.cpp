#include "eval/attribution_sweep.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sds::eval {
namespace {

AttributionSweepConfig SmallConfig() {
  AttributionSweepConfig config;
  config.apps = {"kmeans"};
  config.attack_ticks = 400;
  config.kstest_cell = false;  // identification sweep is too slow for a unit
  return config;
}

TEST(AttributionSweep, GridCoversQuietSingleAndColludingCells) {
  const AttributionSweepResult result = RunAttributionSweep(SmallConfig());
  // One app: quiet + bus-lock + cleansing + the colluding cell.
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].attack, AttackKind::kNone);
  EXPECT_EQ(result.cells[0].true_attacker, 0u);
  EXPECT_EQ(result.cells[1].attack, AttackKind::kBusLock);
  EXPECT_EQ(result.cells[2].attack, AttackKind::kLlcCleansing);
  EXPECT_NE(result.cells[3].attack2, AttackKind::kNone);
  EXPECT_NE(result.cells[3].true_attacker2, 0u);
}

TEST(AttributionSweep, SingleAttackerCellsRankTrueAttackerFirst) {
  const AttributionSweepResult result = RunAttributionSweep(SmallConfig());
  for (const AttributionCell& cell : result.cells) {
    if (cell.true_attacker == 0 || cell.true_attacker2 != 0) continue;
    EXPECT_EQ(cell.rank_of_true, 1) << cell.app;
    EXPECT_TRUE(cell.attributed) << cell.app;
    EXPECT_EQ(cell.prime_suspect, cell.true_attacker) << cell.app;
  }
  EXPECT_DOUBLE_EQ(result.rank1_fraction, 1.0);
}

TEST(AttributionSweep, QuietCellStaysUnattributed) {
  const AttributionSweepResult result = RunAttributionSweep(SmallConfig());
  EXPECT_FALSE(result.cells[0].attributed);
  EXPECT_EQ(result.false_positives, 0);
}

TEST(AttributionSweep, ColludingCellNamesOneOfTheAttackers) {
  const AttributionSweepResult result = RunAttributionSweep(SmallConfig());
  const AttributionCell& cell = result.cells[3];
  EXPECT_TRUE(cell.attributed);
  EXPECT_TRUE(cell.prime_suspect == cell.true_attacker ||
              cell.prime_suspect == cell.true_attacker2)
      << "prime=" << cell.prime_suspect;
}

TEST(AttributionSweep, RepeatedSweepsFingerprintIdentically) {
  const AttributionSweepResult a = RunAttributionSweep(SmallConfig());
  const AttributionSweepResult b = RunAttributionSweep(SmallConfig());
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].prime_suspect, b.cells[i].prime_suspect) << i;
    EXPECT_EQ(a.cells[i].prime_score, b.cells[i].prime_score) << i;
  }
}

TEST(AttributionSweep, JsonCarriesSummaryAndCellRows) {
  const AttributionSweepConfig config = SmallConfig();
  const AttributionSweepResult result = RunAttributionSweep(config);
  std::ostringstream os;
  WriteAttributionJson(os, config, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\":\"attrib\""), std::string::npos);
  EXPECT_NE(json.find("\"rank1_fraction\":1"), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\":\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"rank_of_true\":1"), std::string::npos);
}

}  // namespace
}  // namespace sds::eval
