#include "eval/robustness.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sds::eval {
namespace {

// Short stages keep each three-stage run around a hundred milliseconds; the
// invariants under test (determinism, baseline equivalence) are
// length-independent.
DetectionRunConfig FastConfig(Scheme scheme) {
  DetectionRunConfig config;
  config.app = "bayes";
  config.attack = AttackKind::kBusLock;
  config.scheme = scheme;
  config.profile_ticks = 3000;
  config.clean_ticks = 3000;
  config.attack_ticks = 3000;
  config.eval_interval = 500;
  return config;
}

bool SameResult(const DetectionRunResult& a, const DetectionRunResult& b) {
  return a.detected == b.detected &&
         a.detection_delay_ticks == b.detection_delay_ticks &&
         a.true_negative_intervals == b.true_negative_intervals &&
         a.false_positive_intervals == b.false_positive_intervals &&
         a.profile_periodic == b.profile_periodic;
}

TEST(RobustnessRunTest, ZeroRatePlanMatchesPlainRun) {
  // The injector + gate in the loop with an inert plan must not change a
  // single decision: same detection outcome, same interval counts.
  const DetectionRunConfig config = FastConfig(Scheme::kSds);
  const DetectionRunResult plain = RunDetectionRun(config, 42);

  RobustnessRunConfig robust;  // inert plan, default degrade
  RobustnessCounters counters;
  const DetectionRunResult faulted =
      RunDetectionRunFaulted(config, 42, robust, &counters);

  EXPECT_TRUE(SameResult(plain, faulted));
  EXPECT_EQ(counters.fault.injected_total(), 0u);
  EXPECT_EQ(counters.degrade.quarantined, 0u);
  EXPECT_EQ(counters.degrade.substituted, 0u);
  EXPECT_EQ(counters.degrade.watchdog_attempts, 0u);
}

TEST(RobustnessRunTest, FaultedRunIsDeterministic) {
  const DetectionRunConfig config = FastConfig(Scheme::kSds);
  RobustnessRunConfig robust;
  robust.plan = fault::FaultPlan::Single(fault::FaultKind::kDropSample, 0.2,
                                         0xabcull);
  robust.plan.set_rate(fault::FaultKind::kCorruption, 0.05);

  RobustnessCounters a_counters;
  RobustnessCounters b_counters;
  const DetectionRunResult a =
      RunDetectionRunFaulted(config, 7, robust, &a_counters);
  const DetectionRunResult b =
      RunDetectionRunFaulted(config, 7, robust, &b_counters);

  EXPECT_TRUE(SameResult(a, b));
  EXPECT_EQ(a_counters.fault.injected, b_counters.fault.injected);
  EXPECT_EQ(a_counters.fault.missing_ticks, b_counters.fault.missing_ticks);
  EXPECT_EQ(a_counters.degrade.substituted, b_counters.degrade.substituted);
  EXPECT_EQ(a_counters.degrade.quarantined, b_counters.degrade.quarantined);
  // The plan actually fired — determinism over a silent plan proves nothing.
  EXPECT_GT(a_counters.fault.injected_total(), 100u);
}

TEST(RobustnessRunTest, HeavyFaultsActuallyPerturbTheMonitoringPlane) {
  const DetectionRunConfig config = FastConfig(Scheme::kSds);
  RobustnessRunConfig robust;
  robust.plan = fault::FaultPlan::Single(fault::FaultKind::kCounterReset, 0.3,
                                         0x123ull);
  RobustnessCounters counters;
  (void)RunDetectionRunFaulted(config, 11, robust, &counters);
  // Every wrapped delta must be caught by the sanity gate, not fed onward.
  EXPECT_GT(counters.fault.tampered_samples, 100u);
  EXPECT_EQ(counters.degrade.quarantined, counters.fault.tampered_samples);
}

TEST(RobustnessRunTest, CountersAccumulate) {
  RobustnessCounters total;
  RobustnessCounters one;
  one.fault.injected[0] = 3;
  one.fault.missing_ticks = 5;
  one.degrade.substituted = 7;
  one.ks_abandoned_collections = 2;
  total.Accumulate(one);
  total.Accumulate(one);
  EXPECT_EQ(total.fault.injected[0], 6u);
  EXPECT_EQ(total.fault.missing_ticks, 10u);
  EXPECT_EQ(total.degrade.substituted, 14u);
  EXPECT_EQ(total.ks_abandoned_collections, 4u);
}

TEST(RobustnessSweepTest, TinySweepShapeAndJson) {
  RobustnessSweepConfig config;
  config.run = FastConfig(Scheme::kSdsB);
  config.kinds = {fault::FaultKind::kDropSample};
  config.rates = {0.1};
  config.runs_per_cell = 1;

  const RobustnessSweepResult result = RunRobustnessSweep(config);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.baseline.rate, 0.0);
  EXPECT_EQ(result.baseline.runs, 1);
  EXPECT_EQ(result.cells[0].kind, fault::FaultKind::kDropSample);
  EXPECT_DOUBLE_EQ(result.cells[0].rate, 0.1);
  EXPECT_EQ(result.cells[0].runs, 1);
  // The baseline cell routes through an inert injector: nothing injected.
  EXPECT_EQ(result.baseline.counters.fault.injected_total(), 0u);
  EXPECT_GT(result.cells[0].counters.fault.injected_total(), 0u);

  std::ostringstream os;
  WriteRobustnessJson(os, config, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\":\"robustness\""), std::string::npos);
  EXPECT_NE(json.find("\"baseline\""), std::string::npos);
  EXPECT_NE(json.find("\"drop_sample\""), std::string::npos);
  EXPECT_NE(json.find("\"recall\""), std::string::npos);
  EXPECT_NE(json.find("\"specificity\""), std::string::npos);
}

}  // namespace
}  // namespace sds::eval
