// Golden pin for the service chaos-restart sweep (DESIGN.md §14,
// EXPERIMENTS.md): every crash point in the deterministic grid fires, every
// recovered run is bit-identical to the never-crashed reference, the feed
// exercises every admission rung and backpressure tier, and the accounting
// JSONL + BENCH_svc JSON carry the fields the inspection tooling keys on.
#include "eval/service_chaos.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sds::eval {
namespace {

// CI-sized grid, the same shape bench_svc_chaos_sweep --smoke runs: every
// crash kind, two ordinals, whole-frame-lost and half-frame tears.
ServiceChaosConfig SmokeConfig() {
  ServiceChaosConfig config;
  config.tenants = 4;
  config.ticks = 400;
  config.attack_start = 200;
  config.seed = 42;
  config.op_fractions = {0.3, 0.8};
  config.byte_fractions = {0.0, 0.5};
  config.threads = 2;
  return config;
}

TEST(ServiceChaosTest, EveryCrashPointRecoversBitIdentical) {
  std::ostringstream accounting;
  const ServiceChaosResult result =
      RunServiceChaosSweep(SmokeConfig(), &accounting);

  // Grid shape: per op fraction, one mid-WAL point per byte fraction, one
  // mid-checkpoint point per byte fraction, one after-append point.
  ASSERT_EQ(result.points.size(), 2u * (2u + 2u + 1u));

  EXPECT_TRUE(result.all_bit_identical);
  for (const ChaosPointResult& p : result.points) {
    EXPECT_TRUE(p.fired) << fault::ServiceFaultKindName(p.kind)
                         << " op=" << p.op_index;
    EXPECT_TRUE(p.bit_identical) << fault::ServiceFaultKindName(p.kind)
                                 << " op=" << p.op_index;
    EXPECT_GE(p.crash_tick, 0);
  }

  // The reference run must actually detect: the attacked tenants alarm.
  EXPECT_GE(result.ref_alarms, 1u);
  EXPECT_GE(result.ref_decisions, result.ref_alarms);

  // The feed is built to exercise every rung and tier; a rung whose count
  // is zero means that code path went untested.
  const svc::SvcAccounting& a = result.ref_accounting;
  EXPECT_GT(a.admitted, 0u);
  EXPECT_GT(a.coalesced, 0u);
  EXPECT_GT(a.shed, 0u);
  EXPECT_GT(a.rejected_malformed, 0u);
  EXPECT_GT(a.rejected_insane, 0u);
  EXPECT_GT(a.rejected_future, 0u);
  EXPECT_GT(a.rejected_stale, 0u);
  EXPECT_GT(a.rejected_quarantined, 0u);
  EXPECT_GT(a.quarantines_started, 0u);
  EXPECT_EQ(a.offered, result.feed_events);

  // Accounting JSONL: one svc_ref line + one svc_recovery line per point
  // (what trace_inspect/fleet_inspect --svc consume).
  const std::string lines = accounting.str();
  std::size_t ref_lines = 0;
  std::size_t recovery_lines = 0;
  for (std::size_t pos = 0;
       (pos = lines.find("{\"type\":\"svc_ref\"", pos)) != std::string::npos;
       ++pos) {
    ++ref_lines;
  }
  for (std::size_t pos = 0;
       (pos = lines.find("{\"type\":\"svc_recovery\"", pos)) !=
       std::string::npos;
       ++pos) {
    ++recovery_lines;
  }
  EXPECT_EQ(ref_lines, 1u);
  EXPECT_EQ(recovery_lines, result.points.size());
}

TEST(ServiceChaosTest, RecoveryCurveGrowsWithCrashOrdinal) {
  const ServiceChaosResult result = RunServiceChaosSweep(SmokeConfig());

  // A later crash leaves more durable history behind: the late after-append
  // point must replay at least as many WAL records + dedupe at least as
  // many redelivered events as the early one.
  const ChaosPointResult* early = nullptr;
  const ChaosPointResult* late = nullptr;
  for (const ChaosPointResult& p : result.points) {
    if (p.kind != fault::ServiceFaultKind::kCrashAfterWalAppend) continue;
    if (early == nullptr || p.op_index < early->op_index) early = &p;
    if (late == nullptr || p.op_index > late->op_index) late = &p;
  }
  ASSERT_NE(early, nullptr);
  ASSERT_NE(late, nullptr);
  ASSERT_LT(early->op_index, late->op_index);
  EXPECT_GE(late->redelivered_deduped, early->redelivered_deduped);
  EXPECT_GT(late->redelivered_deduped, 0u);
}

TEST(ServiceChaosTest, BenchJsonCarriesTheCurve) {
  const ServiceChaosConfig config = SmokeConfig();
  const ServiceChaosResult result = RunServiceChaosSweep(config);

  std::ostringstream os;
  WriteServiceChaosJson(config, result, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"bench\":\"svc\"", "\"feed_events\":", "\"ref_alarms\":",
        "\"ref_shed_rate\":", "\"crash_points\":",
        "\"all_bit_identical\":true", "\"recovery_curve\":[",
        "\"replayed\":", "\"deduped\":", "\"bit_identical\":true"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace sds::eval
