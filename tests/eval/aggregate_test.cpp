#include "eval/aggregate.h"

#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "eval/report.h"

namespace sds::eval {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> visits(100);
  ParallelFor(100, 4, [&](int i) { ++visits[static_cast<std::size_t>(i)]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  int called = 0;
  ParallelFor(0, 4, [&](int) { ++called; });
  EXPECT_EQ(called, 0);
}

TEST(ParallelForTest, SingleThreadInline) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, WorkerExceptionPropagatesToCaller) {
  // A throw inside a worker used to escape the thread and terminate the
  // process; now the first exception is rethrown after all workers join.
  EXPECT_THROW(
      ParallelFor(64, 4,
                  [](int i) {
                    if (i == 17) throw std::runtime_error("run 17 failed");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionStopsSchedulingRemainingWork) {
  std::atomic<int> ran{0};
  try {
    // Every even index throws, so each worker fails within its first couple
    // of claims no matter how the scheduler interleaves them.
    ParallelFor(10000, 2, [&](int i) {
      if (i % 2 == 0) throw std::runtime_error("fail fast");
      ++ran;
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error&) {
  }
  // Workers stop claiming indices after the first failure; only a bounded
  // prefix of the 5000 odd iterations can have run.
  EXPECT_LT(ran.load(), 100);
}

TEST(ParallelForTest, InlinePathPropagatesException) {
  EXPECT_THROW(
      ParallelFor(3, 1, [](int) { throw std::runtime_error("inline"); }),
      std::runtime_error);
}

TEST(DefaultThreadsTest, Bounded) {
  EXPECT_GE(DefaultThreads(8), 1);
  EXPECT_LE(DefaultThreads(8), 8);
  EXPECT_EQ(DefaultThreads(1), 1);
}

TEST(FormatSummaryTest, RendersMedianAndBar) {
  PercentileSummary s;
  s.p10 = 0.8;
  s.median = 0.9;
  s.p90 = 1.0;
  EXPECT_EQ(FormatSummary(s, 2), "0.90 [0.80, 1.00]");
}

TEST(AggregateDetectionTest, ShortSweepProducesSaneMetrics) {
  DetectionRunConfig cfg;
  cfg.app = "bayes";
  cfg.attack = AttackKind::kBusLock;
  cfg.scheme = Scheme::kSds;
  // Short stages keep this test quick while exercising the whole pipeline.
  cfg.profile_ticks = 6000;
  cfg.clean_ticks = 5000;
  cfg.attack_ticks = 8000;
  const auto agg = AggregateDetection(cfg, 2, 10, 1);
  EXPECT_EQ(agg.runs, 2);
  EXPECT_EQ(agg.detected_runs, 2);
  EXPECT_DOUBLE_EQ(agg.recall.median, 1.0);
  EXPECT_GE(agg.specificity.median, 0.5);
  EXPECT_GT(agg.delay_seconds.median, 0.0);
  EXPECT_LT(agg.delay_seconds.median, 80.0);
}

TEST(AggregateOverheadTest, SchemeNoneHasRatioOne) {
  OverheadRunConfig cfg;
  cfg.app = "bayes";
  cfg.scheme = Scheme::kNone;
  cfg.work_target_units = 500;
  const auto agg = AggregateOverhead(cfg, 2, 5, 1);
  EXPECT_DOUBLE_EQ(agg.normalized_time.median, 1.0);
}

TEST(SchemeNameTest, AllNames) {
  EXPECT_STREQ(SchemeName(Scheme::kNone), "none");
  EXPECT_STREQ(SchemeName(Scheme::kSdsB), "SDS/B");
  EXPECT_STREQ(SchemeName(Scheme::kSdsP), "SDS/P");
  EXPECT_STREQ(SchemeName(Scheme::kSds), "SDS");
  EXPECT_STREQ(SchemeName(Scheme::kKsTest), "KStest");
}

}  // namespace
}  // namespace sds::eval
