// Thread-stress companion to aggregate_test.cpp, sized for the TSan CI job:
// every test drives the parallel aggregation path with >= 8 workers so the
// race detector sees real interleavings (worker count deliberately exceeds
// the iteration count in one case, and contention on shared state is part of
// the workload in another). Under plain builds this doubles as a cheap
// smoke that worker count never changes results.
#include "eval/aggregate.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "eval/report.h"

namespace sds::eval {
namespace {

constexpr int kStressWorkers = 8;

TEST(ParallelForStressTest, ManyWorkersVisitEveryIndexExactlyOnce) {
  constexpr int kIterations = 10000;
  std::vector<std::atomic<int>> visits(kIterations);
  ParallelFor(kIterations, kStressWorkers,
              [&](int i) { ++visits[static_cast<std::size_t>(i)]; });
  for (const auto& v : visits) ASSERT_EQ(v.load(), 1);
}

TEST(ParallelForStressTest, MoreWorkersThanIterations) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(3, kStressWorkers * 4,
              [&](int i) { ++visits[static_cast<std::size_t>(i)]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForStressTest, SharedAccumulationUnderContention) {
  constexpr int kIterations = 5000;
  std::atomic<std::int64_t> atomic_sum{0};
  std::int64_t locked_sum = 0;
  std::set<int> locked_seen;
  std::mutex mu;
  ParallelFor(kIterations, kStressWorkers, [&](int i) {
    atomic_sum.fetch_add(i, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    locked_sum += i;
    locked_seen.insert(i);
  });
  const std::int64_t expected =
      static_cast<std::int64_t>(kIterations) * (kIterations - 1) / 2;
  EXPECT_EQ(atomic_sum.load(), expected);
  EXPECT_EQ(locked_sum, expected);
  EXPECT_EQ(locked_seen.size(), static_cast<std::size_t>(kIterations));
}

// The real threaded hot path: detection runs fan out across workers and
// write disjoint slots of the results vector. 8 workers over 8 seeds gives
// TSan one thread per run; results must be identical to the single-threaded
// aggregation (the determinism contract shrunk to a unit test).
TEST(AggregateStressTest, EightWorkerDetectionMatchesSerial) {
  DetectionRunConfig cfg;
  cfg.app = "bayes";
  cfg.attack = AttackKind::kBusLock;
  cfg.scheme = Scheme::kSds;
  cfg.profile_ticks = 6000;
  cfg.clean_ticks = 5000;
  cfg.attack_ticks = 8000;
  constexpr int kRuns = 8;
  const auto parallel = AggregateDetection(cfg, kRuns, 10, kStressWorkers);
  const auto serial = AggregateDetection(cfg, kRuns, 10, 1);
  EXPECT_EQ(parallel.runs, kRuns);
  EXPECT_EQ(parallel.detected_runs, serial.detected_runs);
  EXPECT_DOUBLE_EQ(parallel.recall.median, serial.recall.median);
  EXPECT_DOUBLE_EQ(parallel.specificity.median, serial.specificity.median);
  EXPECT_DOUBLE_EQ(parallel.delay_seconds.median, serial.delay_seconds.median);
  EXPECT_DOUBLE_EQ(parallel.delay_seconds.p90, serial.delay_seconds.p90);
}

TEST(AggregateStressTest, EightWorkerOverheadMatchesSerial) {
  OverheadRunConfig cfg;
  cfg.app = "bayes";
  cfg.scheme = Scheme::kNone;
  cfg.work_target_units = 500;
  const auto parallel = AggregateOverhead(cfg, 8, 5, kStressWorkers);
  const auto serial = AggregateOverhead(cfg, 8, 5, 1);
  EXPECT_DOUBLE_EQ(parallel.normalized_time.median,
                   serial.normalized_time.median);
  EXPECT_DOUBLE_EQ(parallel.normalized_time.p10, serial.normalized_time.p10);
  EXPECT_DOUBLE_EQ(parallel.normalized_time.p90, serial.normalized_time.p90);
}

}  // namespace
}  // namespace sds::eval
