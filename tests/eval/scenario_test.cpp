#include "eval/scenario.h"

#include <gtest/gtest.h>

namespace sds::eval {
namespace {

TEST(ScenarioTest, AttackNames) {
  EXPECT_STREQ(AttackName(AttackKind::kNone), "none");
  EXPECT_STREQ(AttackName(AttackKind::kBusLock), "bus-lock");
  EXPECT_STREQ(AttackName(AttackKind::kLlcCleansing), "llc-cleansing");
}

TEST(ScenarioTest, NoAttackLayout) {
  ScenarioConfig cfg;
  cfg.app = "kmeans";
  cfg.attack = AttackKind::kNone;
  Scenario s = BuildScenario(cfg);
  EXPECT_EQ(s.victim, 1u);
  EXPECT_EQ(s.attacker, 0u);
  // Victim + 7 benign.
  EXPECT_EQ(s.hypervisor->vm_count(), 8u);
}

TEST(ScenarioTest, AttackLayoutMatchesPaperDeployment) {
  ScenarioConfig cfg;
  cfg.app = "facenet";
  cfg.attack = AttackKind::kBusLock;
  cfg.attack_start = 100;
  Scenario s = BuildScenario(cfg);
  EXPECT_EQ(s.victim, 1u);
  EXPECT_EQ(s.attacker, 2u);
  // Victim + attacker + 7 benign = 9 VMs sharing the server (Section 5.1).
  EXPECT_EQ(s.hypervisor->vm_count(), 9u);
  EXPECT_EQ(s.hypervisor->vm(s.victim).name(), "victim-facenet");
  EXPECT_EQ(s.hypervisor->vm(s.attacker).name(), "attacker");
}

TEST(ScenarioTest, BenignVmCountConfigurable) {
  ScenarioConfig cfg;
  cfg.benign_vms = 2;
  Scenario s = BuildScenario(cfg);
  EXPECT_EQ(s.hypervisor->vm_count(), 3u);
}

TEST(ScenarioTest, RunTicksAdvancesClock) {
  ScenarioConfig cfg;
  Scenario s = BuildScenario(cfg);
  s.RunTicks(25);
  EXPECT_EQ(s.hypervisor->now(), 25);
}

TEST(ScenarioTest, AttackIdleUntilStart) {
  ScenarioConfig cfg;
  cfg.attack = AttackKind::kBusLock;
  cfg.attack_start = 50;
  Scenario s = BuildScenario(cfg);
  // Machine tick `t` executes during the t-th RunTicks step, so the attack
  // window [50, ...) opens during the 50th call.
  s.RunTicks(49);
  EXPECT_EQ(s.machine->counters(s.attacker).atomic_ops, 0u);
  s.RunTicks(10);
  EXPECT_GT(s.machine->counters(s.attacker).atomic_ops, 0u);
}

TEST(ScenarioTest, AttackStopsAtStopTick) {
  ScenarioConfig cfg;
  cfg.attack = AttackKind::kBusLock;
  cfg.attack_start = 10;
  cfg.attack_stop = 20;
  Scenario s = BuildScenario(cfg);
  s.RunTicks(20);
  const auto during = s.machine->counters(s.attacker).atomic_ops;
  EXPECT_GT(during, 0u);
  s.RunTicks(30);
  EXPECT_EQ(s.machine->counters(s.attacker).atomic_ops, during);
}

TEST(ScenarioTest, CleansingConfigInheritsCacheGeometry) {
  ScenarioConfig cfg;
  cfg.attack = AttackKind::kLlcCleansing;
  cfg.attack_start = 0;
  cfg.machine.cache.sets = 256;
  cfg.machine.cache.ways = 8;
  // Deliberately wrong values that must be overwritten at build time.
  cfg.cleansing.cache_sets = 4;
  cfg.cleansing.cache_ways = 1;
  Scenario s = BuildScenario(cfg);
  s.RunTicks(200);
  // If geometry were wrong the attacker would never touch most sets; with
  // the inherited geometry its recon+cleanse traffic spans the cache.
  EXPECT_GT(s.machine->counters(s.attacker).llc_accesses, 1000u);
}

TEST(ScenarioTest, SameSeedSameTrajectory) {
  ScenarioConfig cfg;
  cfg.app = "svm";
  cfg.seed = 77;
  Scenario a = BuildScenario(cfg);
  Scenario b = BuildScenario(cfg);
  a.RunTicks(500);
  b.RunTicks(500);
  EXPECT_EQ(a.machine->counters(1).llc_accesses,
            b.machine->counters(1).llc_accesses);
  EXPECT_EQ(a.machine->counters(1).llc_misses,
            b.machine->counters(1).llc_misses);
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  ScenarioConfig cfg;
  cfg.app = "svm";
  cfg.seed = 1;
  Scenario a = BuildScenario(cfg);
  cfg.seed = 2;
  Scenario b = BuildScenario(cfg);
  a.RunTicks(500);
  b.RunTicks(500);
  EXPECT_NE(a.machine->counters(1).llc_accesses,
            b.machine->counters(1).llc_accesses);
}

TEST(ScenarioTest, UnknownAppAborts) {
  ScenarioConfig cfg;
  cfg.app = "nosuchapp";
  EXPECT_DEATH(BuildScenario(cfg), "unknown application");
}

}  // namespace
}  // namespace sds::eval
