// Host-chaos protocol harness (src/eval/hostchaos.h): runs are
// deterministic, forced migrations carry handoffs, scheduled crashes drive
// evacuation, and the sweep's warm side wins every cell.
#include "eval/hostchaos.h"

#include <gtest/gtest.h>

#include "fault/host_plan.h"

namespace sds::eval {
namespace {

// Fast-deciding detector so 3000-tick runs contain several alarm windows.
detect::DetectorParams FastParams() {
  detect::DetectorParams params;
  params.window = 100;
  params.step = 25;
  params.h_c = 8;
  return params;
}

HostChaosRunConfig FastRun() {
  HostChaosRunConfig config;
  config.attack_start = 500;
  config.horizon = 3000;
  config.params = FastParams();
  return config;
}

TEST(HostChaosRunTest, QuietRunAlarmsAndNeverMigrates) {
  const HostChaosRunResult r = RunHostChaosRun(FastRun(), /*seed=*/77);
  EXPECT_EQ(r.migrations, 0);
  EXPECT_EQ(r.handoffs.attempts, 0u);
  EXPECT_EQ(r.evacuation.started, 0u);
  EXPECT_TRUE(r.transitions.empty());
  EXPECT_TRUE(r.handoff_events.empty());
  EXPECT_NE(r.first_alarm_tick, kInvalidTick)
      << "the co-resident attacker must be detected without any chaos";
  // Blind-window / missed-tick accounting only starts at the first
  // migration; an unmigrated run has nothing to charge.
  EXPECT_EQ(r.attacked_serving_ticks, 0u);
  EXPECT_EQ(r.missed_ticks, 0u);
  EXPECT_EQ(r.mean_blind_ticks(), 0.0);
}

TEST(HostChaosRunTest, RunsAreDeterministic) {
  HostChaosRunConfig config = FastRun();
  config.migrate_every = 400;
  config.host_plan =
      fault::HostFaultPlan::Single(fault::HostFaultKind::kCrash, 0.0005, 13);
  const HostChaosRunResult a = RunHostChaosRun(config, /*seed=*/9);
  const HostChaosRunResult b = RunHostChaosRun(config, /*seed=*/9);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.blind_ticks, b.blind_ticks);
  EXPECT_EQ(a.missed_ticks, b.missed_ticks);
  EXPECT_EQ(a.attacked_serving_ticks, b.attacked_serving_ticks);
  EXPECT_EQ(a.first_alarm_tick, b.first_alarm_tick);
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (std::size_t i = 0; i < a.transitions.size(); ++i) {
    EXPECT_EQ(a.transitions[i].tick, b.transitions[i].tick);
    EXPECT_EQ(a.transitions[i].host, b.transitions[i].host);
  }
  ASSERT_EQ(a.handoff_events.size(), b.handoff_events.size());
  for (std::size_t i = 0; i < a.handoff_events.size(); ++i) {
    EXPECT_EQ(a.handoff_events[i].tick, b.handoff_events[i].tick);
    EXPECT_EQ(a.handoff_events[i].blind_ticks, b.handoff_events[i].blind_ticks);
  }
}

TEST(HostChaosRunTest, ForcedMigrationsCarryWarmHandoffs) {
  HostChaosRunConfig config = FastRun();
  config.migrate_every = 400;
  const HostChaosRunResult r = RunHostChaosRun(config, /*seed=*/5);
  // First forced migration at attack_start + 400 = 900, then every 400
  // ticks to the 3000-tick horizon.
  EXPECT_GE(r.migrations, 4);
  EXPECT_EQ(r.handoffs.attempts, static_cast<std::uint64_t>(r.migrations));
  EXPECT_EQ(r.handoffs.warm, r.handoffs.attempts)
      << "same profile + params on every host: all handoffs must be warm";
  ASSERT_EQ(r.handoff_events.size(), static_cast<std::size_t>(r.migrations));
  for (const HandoffEvent& e : r.handoff_events) {
    EXPECT_TRUE(e.forced);
    EXPECT_TRUE(e.warm);
    EXPECT_NE(e.status, "disabled");
    EXPECT_NE(e.from.host, e.to.host);
  }
}

TEST(HostChaosRunTest, ColdModeRecordsDisabledHandoffs) {
  HostChaosRunConfig config = FastRun();
  config.migrate_every = 400;
  config.warm_handoff = false;
  const HostChaosRunResult r = RunHostChaosRun(config, /*seed=*/5);
  EXPECT_GE(r.migrations, 4);
  EXPECT_EQ(r.handoffs.warm, 0u);
  EXPECT_EQ(r.handoffs.cold_other, r.handoffs.attempts);
  for (const HandoffEvent& e : r.handoff_events) {
    EXPECT_FALSE(e.warm);
    EXPECT_EQ(e.status, "disabled");
  }
}

TEST(HostChaosRunTest, ScheduledCrashEvacuatesVictimWithHandoff) {
  HostChaosRunConfig config = FastRun();
  fault::ScheduledHostFault crash;
  crash.tick = 900;  // victim's host, while the attack is running
  crash.host = 0;
  crash.kind = fault::HostFaultKind::kCrash;
  crash.duration = 600;
  config.host_plan.scheduled.push_back(crash);
  const HostChaosRunResult r = RunHostChaosRun(config, /*seed=*/6);

  EXPECT_EQ(r.host_faults.crashes, 1u);
  EXPECT_FALSE(r.transitions.empty());
  // Host 0 carried victim + attacker + benign; all must be re-placed.
  EXPECT_EQ(r.evacuation.started, 3u);
  EXPECT_EQ(r.evacuation.migrated, 3u);
  EXPECT_EQ(r.evacuation.throttled_in_place, 0u);
  // The victim's evacuation carried exactly one (warm, unforced) handoff.
  ASSERT_EQ(r.migrations, 1);
  ASSERT_EQ(r.handoff_events.size(), 1u);
  EXPECT_FALSE(r.handoff_events[0].forced);
  EXPECT_TRUE(r.handoff_events[0].warm);
  EXPECT_NE(r.first_alarm_tick, kInvalidTick)
      << "detection must survive the evacuation";
}

TEST(HostChaosSweepTest, SweepStructureAndWarmWin) {
  HostChaosSweepConfig sweep;
  sweep.run = FastRun();
  sweep.migration_periods = {400};
  sweep.crash_rates = {0.001};
  sweep.scheduled_crash_after = 400;
  sweep.scheduled_crash_down = 600;
  sweep.runs_per_cell = 1;
  const HostChaosSweepResult result = RunHostChaosSweep(sweep);

  ASSERT_EQ(result.migration_cells.size(), 1u);
  ASSERT_EQ(result.chaos_cells.size(), 1u);
  const HostChaosCell& evasion = result.migration_cells[0];
  EXPECT_FALSE(evasion.chaos);
  EXPECT_EQ(evasion.migrate_every, 400);
  EXPECT_EQ(evasion.warm.runs, 1);
  EXPECT_EQ(evasion.cold.runs, 1);
  EXPECT_GT(evasion.cold.migrations, 0);
  // The acceptance criterion, at cell granularity: warm strictly below cold
  // on both the blind window and the missed-alarm rate.
  EXPECT_LT(evasion.warm.mean_blind_ticks, evasion.cold.mean_blind_ticks);
  EXPECT_LT(evasion.warm.missed_alarm_rate, evasion.cold.missed_alarm_rate);

  const HostChaosCell& chaos = result.chaos_cells[0];
  EXPECT_TRUE(chaos.chaos);
  EXPECT_EQ(chaos.crash_rate, 0.001);
  EXPECT_GT(chaos.warm.evac_migrated, 0u);
  EXPECT_GT(chaos.warm.down_ticks, 0u);
  EXPECT_LT(chaos.warm.mean_blind_ticks, chaos.cold.mean_blind_ticks);

  EXPECT_TRUE(result.warm_strictly_better);
}

}  // namespace
}  // namespace sds::eval
