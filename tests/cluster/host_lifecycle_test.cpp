// Host state machine (src/cluster/host_lifecycle.h): scheduled and random
// faults walk up -> down -> recovering -> up deterministically; degraded
// hosts serve one tick in a stride; draining and permanent death behave.
#include "cluster/host_lifecycle.h"

#include <gtest/gtest.h>

#include <vector>

namespace sds::cluster {
namespace {

using fault::HostFaultKind;
using fault::HostFaultPlan;
using fault::ScheduledHostFault;

HostFaultPlan PlanWithScheduled(HostFaultKind kind, Tick tick, int host,
                                Tick duration) {
  HostFaultPlan plan;
  ScheduledHostFault fault;
  fault.tick = tick;
  fault.host = host;
  fault.kind = kind;
  fault.duration = duration;
  plan.scheduled.push_back(fault);
  return plan;
}

TEST(HostLifecycleTest, NullPlanServesEveryTickForever) {
  HostLifecycle lifecycle(3);
  for (Tick t = 0; t < 200; ++t) {
    lifecycle.BeginTick(t);
    for (int h = 0; h < 3; ++h) {
      EXPECT_TRUE(lifecycle.serving(h));
      EXPECT_TRUE(lifecycle.placeable(h));
      EXPECT_EQ(lifecycle.state(h), HostState::kUp);
    }
  }
  EXPECT_TRUE(lifecycle.transitions().empty());
  EXPECT_EQ(lifecycle.stats().injected_total(), 0u);
  EXPECT_EQ(lifecycle.up_hosts(), 3);
}

TEST(HostLifecycleTest, ScheduledCrashWalksDownRecoveringUp) {
  HostFaultPlan plan =
      PlanWithScheduled(HostFaultKind::kCrash, /*tick=*/10, /*host=*/0,
                        /*duration=*/20);
  plan.recovery_min_ticks = 5;
  plan.recovery_max_ticks = 5;  // deterministic recovery latency
  HostLifecycle lifecycle(2, plan);

  for (Tick t = 0; t < 60; ++t) {
    lifecycle.BeginTick(t);
    const bool host0_serving = lifecycle.serving(0);
    if (t < 10 || t >= 35) {
      EXPECT_TRUE(host0_serving) << "tick " << t;
    } else {
      EXPECT_FALSE(host0_serving) << "tick " << t;
      EXPECT_FALSE(lifecycle.placeable(0)) << "tick " << t;
    }
    EXPECT_TRUE(lifecycle.serving(1)) << "the other host is unaffected";
  }

  // Exact transition timeline: crash at 10, the 20-tick down window expires
  // at 30 (recovery attempt with latency 5), up again at 35.
  const auto& transitions = lifecycle.transitions();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].tick, 10);
  EXPECT_EQ(transitions[0].from, HostState::kUp);
  EXPECT_EQ(transitions[0].to, HostState::kDown);
  EXPECT_EQ(transitions[1].tick, 30);
  EXPECT_EQ(transitions[1].to, HostState::kRecovering);
  EXPECT_EQ(transitions[2].tick, 35);
  EXPECT_EQ(transitions[2].to, HostState::kUp);

  const auto& stats = lifecycle.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recovery_attempts, 1u);
  EXPECT_EQ(stats.recovery_failures, 0u);
  EXPECT_EQ(stats.down_ticks, 25u);  // 20 down + 5 recovering
}

TEST(HostLifecycleTest, DegradedHostServesOneTickInStride) {
  HostFaultPlan plan =
      PlanWithScheduled(HostFaultKind::kDegrade, /*tick=*/4, /*host=*/0,
                        /*duration=*/12);
  plan.degrade_stride = 4;
  HostLifecycle lifecycle(1, plan);

  int served = 0;
  for (Tick t = 0; t < 4; ++t) {
    lifecycle.BeginTick(t);
    EXPECT_TRUE(lifecycle.serving(0));
  }
  for (Tick t = 4; t < 16; ++t) {
    lifecycle.BeginTick(t);
    EXPECT_EQ(lifecycle.state(0), HostState::kDegraded);
    // Degraded hosts still accept placements — they are slow, not dead.
    EXPECT_TRUE(lifecycle.placeable(0));
    if (lifecycle.serving(0)) ++served;
  }
  // Serves exactly the stride phase: ticks 4, 8, 12 of the 12-tick window.
  EXPECT_EQ(served, 3);
  EXPECT_EQ(lifecycle.stats().degraded_windows, 1u);
  EXPECT_EQ(lifecycle.stats().degraded_skipped, 9u);

  lifecycle.BeginTick(16);
  EXPECT_EQ(lifecycle.state(0), HostState::kUp);
}

TEST(HostLifecycleTest, FlakyRecoveryFallsBackToDown) {
  HostFaultPlan plan =
      PlanWithScheduled(HostFaultKind::kCrash, /*tick=*/0, /*host=*/0,
                        /*duration=*/5);
  plan.set_rate(HostFaultKind::kFlakyRecovery, 1.0);  // every attempt fails
  plan.recovery_min_ticks = 2;
  plan.recovery_max_ticks = 2;
  plan.down_min_ticks = 5;
  plan.down_max_ticks = 5;
  HostLifecycle lifecycle(1, plan);

  for (Tick t = 0; t < 100; ++t) {
    lifecycle.BeginTick(t);
    EXPECT_FALSE(lifecycle.serving(0)) << "tick " << t;
  }
  const auto& stats = lifecycle.stats();
  EXPECT_GE(stats.recovery_attempts, 2u);
  EXPECT_EQ(stats.recovery_failures, stats.recovery_attempts);
  EXPECT_EQ(stats.down_ticks, 100u);
}

TEST(HostLifecycleTest, PermanentDeathNeverRecovers) {
  const HostFaultPlan plan = PlanWithScheduled(
      HostFaultKind::kPermanentDeath, /*tick=*/3, /*host=*/1, /*duration=*/0);
  HostLifecycle lifecycle(2, plan);
  for (Tick t = 0; t < 500; ++t) {
    lifecycle.BeginTick(t);
    if (t >= 3) {
      EXPECT_EQ(lifecycle.state(1), HostState::kDead);
      EXPECT_FALSE(lifecycle.serving(1));
      EXPECT_FALSE(lifecycle.placeable(1));
    }
  }
  EXPECT_EQ(lifecycle.stats().permanent_deaths, 1u);
  EXPECT_EQ(lifecycle.up_hosts(), 1);
}

TEST(HostLifecycleTest, DrainingServesButRefusesPlacements) {
  HostLifecycle lifecycle(2);
  lifecycle.BeginTick(0);
  lifecycle.Drain(0);
  EXPECT_EQ(lifecycle.state(0), HostState::kDraining);
  EXPECT_TRUE(lifecycle.serving(0));
  EXPECT_FALSE(lifecycle.placeable(0));
  EXPECT_EQ(lifecycle.up_hosts(), 2);  // draining still counts as up
  lifecycle.Undrain(0);
  EXPECT_EQ(lifecycle.state(0), HostState::kUp);
  EXPECT_TRUE(lifecycle.placeable(0));
}

TEST(HostLifecycleTest, SameSeedSameFaultScheduleDifferentSeedDiffers) {
  HostFaultPlan plan = HostFaultPlan::Single(HostFaultKind::kCrash, 0.01, 7);
  HostLifecycle a(4, plan);
  HostLifecycle b(4, plan);
  plan.seed = 8;
  HostLifecycle c(4, plan);
  for (Tick t = 0; t < 3000; ++t) {
    a.BeginTick(t);
    b.BeginTick(t);
    c.BeginTick(t);
  }
  ASSERT_GT(a.transitions().size(), 0u) << "rate high enough to fire";
  ASSERT_EQ(a.transitions().size(), b.transitions().size());
  for (std::size_t i = 0; i < a.transitions().size(); ++i) {
    EXPECT_EQ(a.transitions()[i].tick, b.transitions()[i].tick);
    EXPECT_EQ(a.transitions()[i].host, b.transitions()[i].host);
    EXPECT_EQ(a.transitions()[i].to, b.transitions()[i].to);
  }
  // A different seed draws a different schedule.
  bool differs = c.transitions().size() != a.transitions().size();
  for (std::size_t i = 0;
       !differs && i < a.transitions().size() && i < c.transitions().size();
       ++i) {
    differs = a.transitions()[i].tick != c.transitions()[i].tick ||
              a.transitions()[i].host != c.transitions()[i].host;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace sds::cluster
