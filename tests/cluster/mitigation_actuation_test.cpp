// State-machine behavior of the reworked MitigationEngine: retry/backoff,
// timeouts, escalation, throttle fallback, efficacy verification, rollback
// on retraction — plus the alarm-time telemetry pinning regression.
#include <string_view>

#include <gtest/gtest.h>

#include "attacks/bus_lock_attacker.h"
#include "cluster/mitigation.h"
#include "telemetry/telemetry.h"
#include "workloads/catalog.h"

namespace sds::cluster {
namespace {

WorkloadFactory AppFactory() {
  return [] { return workloads::MakeApp("kmeans"); };
}

WorkloadFactory AttackerFactory() {
  return [] {
    return std::make_unique<attacks::BusLockAttacker>(
        attacks::BusLockConfig{});
  };
}

struct Rig {
  Cluster cluster{2, HostConfig{}, 23};
  VmRef victim;
  VmRef attacker;

  Rig() {
    victim = cluster.Deploy(0, "victim", AppFactory());
    attacker = cluster.Deploy(0, "attacker", AttackerFactory());
  }

  void Tick(MitigationEngine& engine, int n) {
    for (int t = 0; t < n; ++t) {
      cluster.RunTick();
      engine.OnTick();
    }
  }

  // Ticks until the engine reaches a terminal state (or the cap runs out).
  void DriveToTerminal(MitigationEngine& engine, int cap = 4000) {
    for (int t = 0; t < cap; ++t) {
      if (engine.state() == MitigationState::kSettled ||
          engine.state() == MitigationState::kFailed) {
        return;
      }
      cluster.RunTick();
      engine.OnTick();
    }
  }
};

MitigationConfig FastConfig(MitigationPolicy policy) {
  MitigationConfig config;
  config.policy = policy;
  config.spare_host = 1;
  config.command_timeout = 16;
  config.max_attempts = 3;
  config.backoff_base = 2;
  config.backoff_cap = 8;
  return config;
}

TEST(MitigationActuationTest, NewNamesAreStable) {
  EXPECT_STREQ(MitigationPolicyName(MitigationPolicy::kThrottleFallback),
               "throttle-fallback");
  EXPECT_STREQ(MitigationStateName(MitigationState::kIdle), "idle");
  EXPECT_STREQ(MitigationStateName(MitigationState::kDispatched),
               "dispatched");
  EXPECT_STREQ(MitigationStateName(MitigationState::kInFlight), "in-flight");
  EXPECT_STREQ(MitigationStateName(MitigationState::kVerifying),
               "verifying");
  EXPECT_STREQ(MitigationStateName(MitigationState::kSettled), "settled");
  EXPECT_STREQ(MitigationStateName(MitigationState::kFailed), "failed");
}

TEST(MitigationActuationTest, CleanPathSettlesSynchronouslyAtAlarm) {
  Rig rig;
  rig.cluster.RunTick();
  MitigationEngine engine(rig.cluster, rig.victim,
                          FastConfig(MitigationPolicy::kMigrateVictim));
  EXPECT_EQ(engine.state(), MitigationState::kIdle);
  engine.OnAlarm(0);
  EXPECT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.settled_tick(), engine.mitigation_tick());
  EXPECT_EQ(engine.victim().host, 1);
  EXPECT_EQ(engine.stats().dispatches, 1u);
  EXPECT_EQ(engine.stats().retries, 0u);
}

TEST(MitigationActuationTest, RetriesThenEscalatesToThrottleOnAbort) {
  Rig rig;
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kMigrationAbort, 1.0, 5));
  MitigationEngine engine(rig.cluster, rig.victim,
                          FastConfig(MitigationPolicy::kMigrateVictim),
                          &actuator);
  engine.OnAlarm(0);
  rig.DriveToTerminal(engine);

  ASSERT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kThrottleFallback);
  EXPECT_EQ(engine.victim().host, 0);  // every migration aborted
  EXPECT_EQ(engine.stats().dispatches, 3u);  // max_attempts
  EXPECT_EQ(engine.stats().retries, 2u);
  EXPECT_EQ(engine.stats().escalations, 1u);
  // Unattributed: the hypervisor throttles everything except the victim.
  EXPECT_TRUE(rig.cluster.hypervisor(0).throttling_active());
  EXPECT_FALSE(rig.cluster.hypervisor(0).vm_throttled(engine.victim().id));
}

TEST(MitigationActuationTest, TimeoutCatchesLostCommands) {
  Rig rig;
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kCommandLost, 1.0, 5));
  MitigationEngine engine(rig.cluster, rig.victim,
                          FastConfig(MitigationPolicy::kMigrateVictim),
                          &actuator);
  engine.OnAlarm(0);
  EXPECT_EQ(engine.state(), MitigationState::kInFlight);
  rig.DriveToTerminal(engine);

  ASSERT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kThrottleFallback);
  EXPECT_EQ(engine.stats().timeouts, 3u);
  EXPECT_EQ(actuator.stats().cancelled, 3u);  // every lost command reaped
}

TEST(MitigationActuationTest, QuarantineEscalatesToMigrationWhenStopsBounce) {
  Rig rig;
  // Stops always bounce; migrations are untouched (the kind gate).
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kStopRejected, 1.0, 5));
  MitigationEngine engine(
      rig.cluster, rig.victim,
      FastConfig(MitigationPolicy::kQuarantineAttacker), &actuator);
  engine.OnAlarm(rig.attacker.id);
  rig.DriveToTerminal(engine);

  ASSERT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(engine.victim().host, 1);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.attacker));  // never stopped
  EXPECT_EQ(engine.stats().escalations, 1u);
  EXPECT_GE(engine.stats().retries, 2u);
}

TEST(MitigationActuationTest, ExhaustionWithoutFallbackFails) {
  Rig rig;
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kMigrationAbort, 1.0, 5));
  MitigationConfig config = FastConfig(MitigationPolicy::kMigrateVictim);
  config.allow_throttle_fallback = false;
  MitigationEngine engine(rig.cluster, rig.victim, config, &actuator);
  engine.OnAlarm(0);
  rig.DriveToTerminal(engine);

  EXPECT_EQ(engine.state(), MitigationState::kFailed);
  EXPECT_FALSE(engine.mitigated());
  EXPECT_FALSE(rig.cluster.hypervisor(0).throttling_active());
}

TEST(MitigationActuationTest, ThrottleFallbackPolicyActsDirectly) {
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim,
                          FastConfig(MitigationPolicy::kThrottleFallback));
  engine.OnAlarm(rig.attacker.id);
  EXPECT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kThrottleFallback);
  EXPECT_EQ(engine.stats().dispatches, 0u);  // no actuator command needed
  // Attributed: only the attacker is throttled.
  EXPECT_TRUE(rig.cluster.hypervisor(0).vm_throttled(rig.attacker.id));
  EXPECT_FALSE(rig.cluster.hypervisor(0).vm_throttled(rig.victim.id));
}

TEST(MitigationActuationTest, VerificationPassesAfterRealRelief) {
  Rig rig;
  // Warm the rate EWMA under attack so the alarm snapshot is the attacked
  // rate.
  MitigationConfig config = FastConfig(MitigationPolicy::kMigrateVictim);
  config.verify_window = 60;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  rig.Tick(engine, 200);
  engine.OnAlarm(0);
  EXPECT_EQ(engine.state(), MitigationState::kVerifying);
  rig.DriveToTerminal(engine);

  ASSERT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(engine.stats().verify_failures, 0u);
  // Settling waited for the verification window.
  EXPECT_GE(engine.settled_tick() - engine.mitigation_tick(),
            config.verify_window);
}

TEST(MitigationActuationTest, VerificationFailureEscalatesWhenReliefIsFake) {
  // The spare host hosts its own bus-locking attacker: migration "succeeds"
  // but relieves nothing, so efficacy verification must escalate to the
  // throttle.
  Rig rig;
  rig.cluster.Deploy(1, "attacker2", AttackerFactory());
  MitigationConfig config = FastConfig(MitigationPolicy::kMigrateVictim);
  config.verify_window = 60;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  rig.Tick(engine, 200);
  engine.OnAlarm(0);
  rig.DriveToTerminal(engine);

  ASSERT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.stats().verify_failures, 1u);
  EXPECT_EQ(engine.stats().escalations, 1u);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kThrottleFallback);
  // The victim did move; the throttle then cleared its new host.
  EXPECT_EQ(engine.victim().host, 1);
  EXPECT_TRUE(rig.cluster.hypervisor(1).throttling_active());
}

TEST(MitigationActuationTest, RollbackResumesQuarantinedAttacker) {
  Rig rig;
  MitigationConfig config = FastConfig(MitigationPolicy::kQuarantineAttacker);
  config.rollback_on_retraction = true;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  engine.OnAlarm(rig.attacker.id);
  ASSERT_EQ(engine.state(), MitigationState::kSettled);
  ASSERT_FALSE(rig.cluster.IsRunnable(rig.attacker));

  engine.OnRetraction();
  EXPECT_TRUE(engine.rolled_back());
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.attacker));
  EXPECT_EQ(engine.stats().rollbacks, 1u);
  // Still settled: the response happened, then was undone.
  EXPECT_EQ(engine.state(), MitigationState::kSettled);
}

TEST(MitigationActuationTest, RollbackMigratesVictimBack) {
  Rig rig;
  MitigationConfig config = FastConfig(MitigationPolicy::kMigrateVictim);
  config.rollback_on_retraction = true;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  engine.OnAlarm(0);
  ASSERT_EQ(engine.victim().host, 1);

  engine.OnRetraction();
  EXPECT_TRUE(engine.rolled_back());
  EXPECT_EQ(engine.victim().host, 0);
  EXPECT_TRUE(rig.cluster.IsRunnable(engine.victim()));
}

TEST(MitigationActuationTest, RetractionWithoutRollbackConfigIsIgnored) {
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim,
                          FastConfig(MitigationPolicy::kMigrateVictim));
  engine.OnAlarm(0);
  engine.OnRetraction();
  EXPECT_FALSE(engine.rolled_back());
  EXPECT_EQ(engine.victim().host, 1);
}

TEST(MitigationActuationTest, RollbackFailureIsCountedNotRetried) {
  Rig rig;
  MitigationConfig config = FastConfig(MitigationPolicy::kMigrateVictim);
  config.rollback_on_retraction = true;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  engine.OnAlarm(0);
  ASSERT_EQ(engine.victim().host, 1);

  // The migrated victim dies on the spare host (operator stop, crash, ...):
  // the rollback migration has no runnable source and must fail cleanly.
  rig.cluster.StopVm(engine.victim());
  engine.OnRetraction();
  EXPECT_FALSE(engine.rolled_back());
  EXPECT_EQ(engine.stats().rollback_failures, 1u);
  EXPECT_EQ(engine.stats().rollbacks, 0u);
}

TEST(MitigationActuationTest, RetractionBeforeApplyCancelsAndReArms) {
  Rig rig;
  fault::ActuationFaultPlan slow;
  slow.latency_min_ticks = 20;
  slow.latency_max_ticks = 20;
  Actuator actuator(rig.cluster, slow);
  MitigationConfig config = FastConfig(MitigationPolicy::kMigrateVictim);
  config.command_timeout = 64;
  config.rollback_on_retraction = true;
  MitigationEngine engine(rig.cluster, rig.victim, config, &actuator);

  engine.OnAlarm(0);
  rig.Tick(engine, 5);
  ASSERT_EQ(engine.state(), MitigationState::kInFlight);
  engine.OnRetraction();
  EXPECT_EQ(engine.state(), MitigationState::kIdle);
  EXPECT_FALSE(engine.mitigated());
  rig.Tick(engine, 30);
  EXPECT_EQ(engine.victim().host, 0);  // the cancelled command never ran

  // A fresh alarm re-arms the whole machine.
  engine.OnAlarm(0);
  rig.Tick(engine, 25);
  EXPECT_EQ(engine.state(), MitigationState::kSettled);
  EXPECT_EQ(engine.victim().host, 1);
}

// -- Alarm-time telemetry pinning (regression) -------------------------------

TEST(MitigationActuationTest, AuditsLandOnTheAlarmTimeHost) {
  // Regression: the one-shot engine resolved the telemetry handle AFTER
  // Migrate() had already updated victim_.host, so with per-host telemetry
  // the mitigation record landed on the DESTINATION host's audit log. An
  // operator asking "what happened on the attacked host?" found nothing.
  telemetry::Telemetry attacked_host_tel;
  telemetry::Telemetry spare_host_tel;
  std::vector<HostConfig> hosts(2);
  hosts[0].machine.telemetry = &attacked_host_tel;
  hosts[1].machine.telemetry = &spare_host_tel;
  Cluster cluster(hosts, 23);
  const VmRef victim = cluster.Deploy(0, "victim", AppFactory());
  cluster.Deploy(0, "attacker", AttackerFactory());

  MitigationEngine engine(cluster, victim,
                          MitigationPolicy::kMigrateVictim, /*spare=*/1);
  engine.OnAlarm(0);
  ASSERT_EQ(engine.victim().host, 1);

  int attacked_records = 0;
  for (const auto& r : attacked_host_tel.audit().records()) {
    if (std::string_view(r.check) == "mitigation") ++attacked_records;
  }
  int spare_records = 0;
  for (const auto& r : spare_host_tel.audit().records()) {
    if (std::string_view(r.check) == "mitigation") ++spare_records;
  }
  EXPECT_EQ(attacked_records, 1);
  EXPECT_EQ(spare_records, 0);
}

TEST(MitigationActuationTest, ActuationAuditTrailRecordsTheFight) {
  telemetry::Telemetry telemetry;
  HostConfig host;
  host.machine.telemetry = &telemetry;
  Cluster cluster(2, host, 23);
  const VmRef victim = cluster.Deploy(0, "victim", AppFactory());
  cluster.Deploy(0, "attacker", AttackerFactory());

  Actuator actuator(cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kMigrationAbort, 1.0, 5));
  MitigationEngine engine(cluster, victim,
                          FastConfig(MitigationPolicy::kMigrateVictim),
                          &actuator);
  engine.OnAlarm(0);
  for (int t = 0; t < 200 && engine.state() != MitigationState::kSettled;
       ++t) {
    cluster.RunTick();
    engine.OnTick();
  }

  int retries = 0;
  int escalations = 0;
  for (const auto& r : telemetry.audit().records()) {
    if (std::string_view(r.check) != "actuation") continue;
    if (std::string_view(r.channel) == "retry") ++retries;
    if (std::string_view(r.channel) == "escalate") {
      ++escalations;
      EXPECT_TRUE(r.violation);
    }
  }
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(escalations, 1);
}

}  // namespace
}  // namespace sds::cluster
