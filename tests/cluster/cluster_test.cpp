#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "workloads/catalog.h"

namespace sds::cluster {
namespace {

HostConfig DefaultHost() { return HostConfig{}; }

WorkloadFactory AppFactory(const std::string& app) {
  return [app] { return workloads::MakeApp(app); };
}

TEST(ClusterTest, DeploysOnRequestedHost) {
  Cluster cluster(3, DefaultHost(), 1);
  const VmRef a = cluster.Deploy(0, "a", AppFactory("bayes"));
  const VmRef b = cluster.Deploy(2, "b", AppFactory("scan"));
  EXPECT_EQ(a.host, 0);
  EXPECT_EQ(b.host, 2);
  EXPECT_EQ(cluster.hypervisor(0).vm_count(), 1u);
  EXPECT_EQ(cluster.hypervisor(1).vm_count(), 0u);
  EXPECT_EQ(cluster.hypervisor(2).vm_count(), 1u);
}

TEST(ClusterTest, RunTickAdvancesEveryHost) {
  Cluster cluster(2, DefaultHost(), 2);
  cluster.Deploy(0, "a", AppFactory("bayes"));
  for (int t = 0; t < 10; ++t) cluster.RunTick();
  EXPECT_EQ(cluster.hypervisor(0).now(), 10);
  EXPECT_EQ(cluster.hypervisor(1).now(), 10);
  EXPECT_EQ(cluster.now(), 10);
}

TEST(ClusterTest, DeployedVmMakesProgress) {
  Cluster cluster(1, DefaultHost(), 3);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  for (int t = 0; t < 100; ++t) cluster.RunTick();
  EXPECT_GT(cluster.counters(vm).llc_accesses, 1000u);
}

TEST(ClusterTest, MigrationStopsSourceAndStartsFresh) {
  Cluster cluster(2, DefaultHost(), 4);
  const VmRef vm = cluster.Deploy(0, "app", AppFactory("bayes"));
  for (int t = 0; t < 50; ++t) cluster.RunTick();
  const auto source_accesses = cluster.counters(vm).llc_accesses;
  EXPECT_GT(source_accesses, 0u);

  const VmRef moved = cluster.Migrate(vm, 1);
  EXPECT_EQ(moved.host, 1);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(cluster.hypervisor(1).vm(moved.id).name(), "app");

  for (int t = 0; t < 50; ++t) cluster.RunTick();
  // Source froze, destination progresses.
  EXPECT_EQ(cluster.counters(vm).llc_accesses, source_accesses);
  EXPECT_GT(cluster.counters(moved).llc_accesses, 0u);
  EXPECT_EQ(cluster.runnable_vms(0), 0);
  EXPECT_EQ(cluster.runnable_vms(1), 1);
}

TEST(ClusterTest, StopVmFreezesIt) {
  Cluster cluster(1, DefaultHost(), 5);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("scan"));
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  const auto before = cluster.counters(vm).llc_accesses;
  cluster.StopVm(vm);
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  EXPECT_EQ(cluster.counters(vm).llc_accesses, before);
}

TEST(ClusterTest, MigrateToSameHostAborts) {
  Cluster cluster(2, DefaultHost(), 6);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  EXPECT_DEATH(cluster.Migrate(vm, 0), "different host");
}

TEST(ClusterTest, InvalidRefAborts) {
  Cluster cluster(1, DefaultHost(), 7);
  VmRef bogus;
  EXPECT_DEATH(cluster.StopVm(bogus), "invalid VM reference");
}

TEST(ClusterTest, HostsAreIsolatedMachines) {
  // VMs on different hosts never contend: a heavy tenant on host 0 leaves a
  // tenant on host 1 untouched.
  Cluster light(2, DefaultHost(), 8);
  const VmRef solo = light.Deploy(1, "solo", AppFactory("bayes"));
  for (int t = 0; t < 100; ++t) light.RunTick();
  const auto solo_only = light.counters(solo).llc_accesses;

  Cluster busy(2, DefaultHost(), 8);
  busy.Deploy(0, "hog", AppFactory("scan"));
  const VmRef with_hog = busy.Deploy(1, "solo", AppFactory("bayes"));
  for (int t = 0; t < 100; ++t) busy.RunTick();
  EXPECT_EQ(busy.counters(with_hog).llc_accesses, solo_only);
}

}  // namespace
}  // namespace sds::cluster
