#include "cluster/cluster.h"

#include <vector>

#include <gtest/gtest.h>

#include "workloads/catalog.h"

namespace sds::cluster {
namespace {

HostConfig DefaultHost() { return HostConfig{}; }

WorkloadFactory AppFactory(const std::string& app) {
  return [app] { return workloads::MakeApp(app); };
}

TEST(ClusterTest, DeploysOnRequestedHost) {
  Cluster cluster(3, DefaultHost(), 1);
  const VmRef a = cluster.Deploy(0, "a", AppFactory("bayes"));
  const VmRef b = cluster.Deploy(2, "b", AppFactory("scan"));
  EXPECT_EQ(a.host, 0);
  EXPECT_EQ(b.host, 2);
  EXPECT_EQ(cluster.hypervisor(0).vm_count(), 1u);
  EXPECT_EQ(cluster.hypervisor(1).vm_count(), 0u);
  EXPECT_EQ(cluster.hypervisor(2).vm_count(), 1u);
}

TEST(ClusterTest, RunTickAdvancesEveryHost) {
  Cluster cluster(2, DefaultHost(), 2);
  cluster.Deploy(0, "a", AppFactory("bayes"));
  for (int t = 0; t < 10; ++t) cluster.RunTick();
  EXPECT_EQ(cluster.hypervisor(0).now(), 10);
  EXPECT_EQ(cluster.hypervisor(1).now(), 10);
  EXPECT_EQ(cluster.now(), 10);
}

TEST(ClusterTest, DeployedVmMakesProgress) {
  Cluster cluster(1, DefaultHost(), 3);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  for (int t = 0; t < 100; ++t) cluster.RunTick();
  EXPECT_GT(cluster.counters(vm).llc_accesses, 1000u);
}

TEST(ClusterTest, MigrationStopsSourceAndStartsFresh) {
  Cluster cluster(2, DefaultHost(), 4);
  const VmRef vm = cluster.Deploy(0, "app", AppFactory("bayes"));
  for (int t = 0; t < 50; ++t) cluster.RunTick();
  const auto source_accesses = cluster.counters(vm).llc_accesses;
  EXPECT_GT(source_accesses, 0u);

  const VmRef moved = cluster.Migrate(vm, 1);
  EXPECT_EQ(moved.host, 1);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(cluster.hypervisor(1).vm(moved.id).name(), "app");

  for (int t = 0; t < 50; ++t) cluster.RunTick();
  // Source froze, destination progresses.
  EXPECT_EQ(cluster.counters(vm).llc_accesses, source_accesses);
  EXPECT_GT(cluster.counters(moved).llc_accesses, 0u);
  EXPECT_EQ(cluster.runnable_vms(0), 0);
  EXPECT_EQ(cluster.runnable_vms(1), 1);
}

TEST(ClusterTest, StopVmFreezesIt) {
  Cluster cluster(1, DefaultHost(), 5);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("scan"));
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  const auto before = cluster.counters(vm).llc_accesses;
  cluster.StopVm(vm);
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  EXPECT_EQ(cluster.counters(vm).llc_accesses, before);
}

TEST(ClusterTest, MigrateToSameHostAborts) {
  Cluster cluster(2, DefaultHost(), 6);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  EXPECT_DEATH(cluster.Migrate(vm, 0), "different host");
}

TEST(ClusterTest, InvalidRefAborts) {
  Cluster cluster(1, DefaultHost(), 7);
  VmRef bogus;
  EXPECT_DEATH(cluster.StopVm(bogus), "invalid VM reference");
}

TEST(ClusterTest, DeployBeyondCapacityAborts) {
  std::vector<HostConfig> hosts(1);
  hosts[0].vm_capacity = 2;
  Cluster cluster(hosts, 9);
  cluster.Deploy(0, "a", AppFactory("bayes"));
  cluster.Deploy(0, "b", AppFactory("scan"));
  EXPECT_DEATH(cluster.Deploy(0, "c", AppFactory("bayes")),
               "host at capacity");
}

TEST(ClusterTest, MigrateToFullHostAborts) {
  std::vector<HostConfig> hosts(2);
  hosts[1].vm_capacity = 1;
  Cluster cluster(hosts, 9);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  cluster.Deploy(1, "occupant", AppFactory("scan"));
  EXPECT_DEATH(cluster.Migrate(vm, 1), "destination host at capacity");
}

TEST(ClusterTest, MigrateOfStoppedVmAborts) {
  Cluster cluster(2, DefaultHost(), 10);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  cluster.StopVm(vm);
  EXPECT_DEATH(cluster.Migrate(vm, 1), "cannot migrate");
}

TEST(ClusterTest, MigratingTheMigratedCopyKeepsWorking) {
  // Migrate twice: the fresh copy from the first migration is itself a valid
  // migration source; the original ref stays frozen throughout.
  Cluster cluster(3, DefaultHost(), 11);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  const VmRef first = cluster.Migrate(vm, 1);
  const VmRef second = cluster.Migrate(first, 2);
  EXPECT_EQ(second.host, 2);
  EXPECT_FALSE(cluster.IsRunnable(vm));
  EXPECT_FALSE(cluster.IsRunnable(first));
  EXPECT_TRUE(cluster.IsRunnable(second));
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  EXPECT_GT(cluster.counters(second).llc_accesses, 0u);
}

TEST(ClusterTest, StoppedVmReleasesItsCapacitySlot) {
  std::vector<HostConfig> hosts(1);
  hosts[0].vm_capacity = 1;
  Cluster cluster(hosts, 12);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  EXPECT_FALSE(cluster.HasCapacity(0));
  cluster.StopVm(vm);
  EXPECT_TRUE(cluster.HasCapacity(0));
  const VmRef next = cluster.Deploy(0, "b", AppFactory("scan"));
  EXPECT_TRUE(cluster.IsRunnable(next));
}

TEST(ClusterTest, ResumeAtFullHostAborts) {
  std::vector<HostConfig> hosts(1);
  hosts[0].vm_capacity = 1;
  Cluster cluster(hosts, 13);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  cluster.StopVm(vm);
  cluster.Deploy(0, "b", AppFactory("scan"));  // takes the freed slot
  EXPECT_DEATH(cluster.ResumeVm(vm), "cannot resume");
}

TEST(ClusterTest, ResumeRestoresProgress) {
  Cluster cluster(1, DefaultHost(), 14);
  const VmRef vm = cluster.Deploy(0, "a", AppFactory("bayes"));
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  cluster.StopVm(vm);
  const auto frozen = cluster.counters(vm).llc_accesses;
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  EXPECT_EQ(cluster.counters(vm).llc_accesses, frozen);
  cluster.ResumeVm(vm);
  for (int t = 0; t < 20; ++t) cluster.RunTick();
  EXPECT_GT(cluster.counters(vm).llc_accesses, frozen);
}

TEST(ClusterTest, HostsAreIsolatedMachines) {
  // VMs on different hosts never contend: a heavy tenant on host 0 leaves a
  // tenant on host 1 untouched.
  Cluster light(2, DefaultHost(), 8);
  const VmRef solo = light.Deploy(1, "solo", AppFactory("bayes"));
  for (int t = 0; t < 100; ++t) light.RunTick();
  const auto solo_only = light.counters(solo).llc_accesses;

  Cluster busy(2, DefaultHost(), 8);
  busy.Deploy(0, "hog", AppFactory("scan"));
  const VmRef with_hog = busy.Deploy(1, "solo", AppFactory("bayes"));
  for (int t = 0; t < 100; ++t) busy.RunTick();
  EXPECT_EQ(busy.counters(with_hog).llc_accesses, solo_only);
}

}  // namespace
}  // namespace sds::cluster
