#include "cluster/mitigation.h"

#include <string_view>

#include <gtest/gtest.h>

#include "attacks/bus_lock_attacker.h"
#include "telemetry/telemetry.h"
#include "workloads/catalog.h"

namespace sds::cluster {
namespace {

WorkloadFactory AppFactory(const std::string& app) {
  return [app] { return workloads::MakeApp(app); };
}

WorkloadFactory AttackerFactory() {
  return [] {
    return std::make_unique<attacks::BusLockAttacker>(
        attacks::BusLockConfig{});
  };
}

struct Rig {
  Cluster cluster{2, HostConfig{}, 11};
  VmRef victim;
  VmRef attacker;

  Rig() {
    victim = cluster.Deploy(0, "victim", AppFactory("kmeans"));
    attacker = cluster.Deploy(0, "attacker", AttackerFactory());
  }

  // Victim throughput (accesses per tick) over a window, at its current
  // placement.
  double VictimRate(const VmRef& placement, int ticks) {
    const auto before = cluster.counters(placement).llc_accesses;
    for (int t = 0; t < ticks; ++t) cluster.RunTick();
    return static_cast<double>(cluster.counters(placement).llc_accesses -
                               before) /
           ticks;
  }
};

TEST(MitigationTest, PolicyNames) {
  EXPECT_STREQ(MitigationPolicyName(MitigationPolicy::kNone), "none");
  EXPECT_STREQ(MitigationPolicyName(MitigationPolicy::kMigrateVictim),
               "migrate-victim");
  EXPECT_STREQ(MitigationPolicyName(MitigationPolicy::kQuarantineAttacker),
               "quarantine-attacker");
}

TEST(MitigationTest, NonePolicyDoesNothing) {
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim, MitigationPolicy::kNone,
                          -1);
  engine.OnAlarm(rig.attacker.id);
  EXPECT_FALSE(engine.mitigated());
  EXPECT_EQ(engine.victim().host, 0);
}

TEST(MitigationTest, MigrateVictimRestoresThroughput) {
  Rig rig;
  const double under_attack = rig.VictimRate(rig.victim, 300);

  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kMigrateVictim, /*spare=*/1);
  engine.OnAlarm(/*attributed=*/0);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(engine.victim().host, 1);

  // Warm up the new placement, then measure: the victim must be much
  // faster away from the attacker.
  rig.VictimRate(engine.victim(), 100);
  const double after = rig.VictimRate(engine.victim(), 300);
  EXPECT_GT(after, 1.3 * under_attack);
}

TEST(MitigationTest, QuarantineStopsTheAttacker) {
  Rig rig;
  const double under_attack = rig.VictimRate(rig.victim, 300);

  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kQuarantineAttacker, /*spare=*/1);
  engine.OnAlarm(rig.attacker.id);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kQuarantineAttacker);
  // Victim stays put; the attacker is frozen.
  EXPECT_EQ(engine.victim().host, 0);
  EXPECT_FALSE(rig.cluster.hypervisor(0).vm(rig.attacker.id).runnable());

  rig.VictimRate(engine.victim(), 100);
  const double after = rig.VictimRate(engine.victim(), 300);
  EXPECT_GT(after, 1.3 * under_attack);
}

TEST(MitigationTest, QuarantineWithoutAttributionFallsBackToMigration) {
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kQuarantineAttacker, /*spare=*/1);
  engine.OnAlarm(/*attributed=*/0);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(engine.victim().host, 1);
}

TEST(MitigationTest, IdempotentAfterFirstResponse) {
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kMigrateVictim, /*spare=*/1);
  engine.OnAlarm(0);
  const VmRef first = engine.victim();
  const Tick tick = engine.mitigation_tick();
  engine.OnAlarm(0);
  engine.OnAlarm(rig.attacker.id);
  EXPECT_EQ(engine.victim().host, first.host);
  EXPECT_EQ(engine.victim().id, first.id);
  EXPECT_EQ(engine.mitigation_tick(), tick);
}

TEST(MitigationTest, RecordsMitigationTick) {
  Rig rig;
  for (int t = 0; t < 25; ++t) rig.cluster.RunTick();
  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kMigrateVictim, /*spare=*/1);
  engine.OnAlarm(0);
  EXPECT_EQ(engine.mitigation_tick(), 25);
}

// -- Mitigation audit trail ---------------------------------------------------

struct AuditedRig {
  telemetry::Telemetry telemetry;
  Cluster cluster;
  VmRef victim;
  VmRef attacker;

  AuditedRig() : cluster(2, TelemetryHostConfig(&telemetry), 11) {
    victim = cluster.Deploy(0, "victim", AppFactory("kmeans"));
    attacker = cluster.Deploy(0, "attacker", AttackerFactory());
  }

  static HostConfig TelemetryHostConfig(telemetry::Telemetry* t) {
    HostConfig config;
    config.machine.telemetry = t;
    return config;
  }

  // The single mitigation audit record of the run.
  const telemetry::AuditRecord& MitigationRecord() {
    const telemetry::AuditRecord* found = nullptr;
    for (const auto& r : telemetry.audit().records()) {
      if (std::string_view(r.check) == "mitigation") {
        EXPECT_EQ(found, nullptr) << "mitigation audited more than once";
        found = &r;
      }
    }
    EXPECT_NE(found, nullptr) << "no mitigation audit record";
    return *found;
  }
};

TEST(MitigationTest, UnattributedFallbackIsAudited) {
  // The regression this pins: a provider reviewing a quarantine policy that
  // keeps migrating instead must find each unattributed alarm in the audit
  // stream, flagged as a fallback.
  AuditedRig rig;
  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kQuarantineAttacker, /*spare=*/1);
  engine.OnAlarm(/*attributed=*/0);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);

  const telemetry::AuditRecord& r = rig.MitigationRecord();
  EXPECT_STREQ(r.detector, "MitigationEngine");
  EXPECT_STREQ(r.channel, "migrate-victim");  // the APPLIED policy
  EXPECT_TRUE(r.violation);                   // fallback, not the intent
  EXPECT_TRUE(r.alarm);
  EXPECT_DOUBLE_EQ(r.value, 0.0);  // the (absent) attributed attacker
}

TEST(MitigationTest, SelfAttributedAlarmAlsoFallsBack) {
  // Identification can land on the victim itself (KStest scores the victim
  // too); quarantining the victim would complete the denial of service.
  AuditedRig rig;
  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kQuarantineAttacker, /*spare=*/1);
  engine.OnAlarm(rig.victim.id);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(engine.victim().host, 1);
  EXPECT_TRUE(rig.MitigationRecord().violation);
}

TEST(MitigationTest, AttributedQuarantineIsAuditedAsApplied) {
  AuditedRig rig;
  MitigationEngine engine(rig.cluster, rig.victim,
                          MitigationPolicy::kQuarantineAttacker, /*spare=*/1);
  engine.OnAlarm(rig.attacker.id);
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kQuarantineAttacker);

  const telemetry::AuditRecord& r = rig.MitigationRecord();
  EXPECT_STREQ(r.channel, "quarantine-attacker");
  EXPECT_FALSE(r.violation);  // the policy did what it says
  EXPECT_TRUE(r.alarm);
  EXPECT_DOUBLE_EQ(r.value, static_cast<double>(rig.attacker.id));
}

TEST(MitigationTest, RejectsBadSpareHost) {
  Rig rig;
  EXPECT_DEATH(MitigationEngine(rig.cluster, rig.victim,
                                MitigationPolicy::kMigrateVictim,
                                /*spare=*/0),
               "spare host");
}

}  // namespace
}  // namespace sds::cluster
