// EvacuationEngine (src/cluster/evacuation.h): dead/draining hosts get
// their VMs re-placed through the Actuator; when no destination exists the
// terminal fallback throttles in place; a host dying mid-actuation fails
// the in-flight command and the retry lands elsewhere.
#include "cluster/evacuation.h"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/actuator.h"
#include "cluster/cluster.h"
#include "cluster/host_lifecycle.h"
#include "workloads/catalog.h"

namespace sds::cluster {
namespace {

using fault::HostFaultKind;
using fault::HostFaultPlan;
using fault::ScheduledHostFault;

HostFaultPlan CrashAt(Tick tick, int host, Tick duration) {
  HostFaultPlan plan;
  ScheduledHostFault fault;
  fault.tick = tick;
  fault.host = host;
  fault.kind = HostFaultKind::kCrash;
  fault.duration = duration;
  plan.scheduled.push_back(fault);
  return plan;
}

struct Rig {
  Cluster cluster;
  HostLifecycle lifecycle;
  Actuator actuator;
  EvacuationEngine engine;

  Rig(int hosts, int capacity, const HostFaultPlan& host_plan,
      const fault::ActuationFaultPlan& actuation_plan = {},
      const EvacuationConfig& config = {})
      : cluster(hosts,
                [capacity] {
                  HostConfig hc;
                  hc.vm_capacity = capacity;
                  return hc;
                }(),
                /*seed=*/11),
        lifecycle(hosts, host_plan),
        actuator(cluster, actuation_plan),
        engine(cluster, lifecycle, actuator, config) {
    cluster.AttachLifecycle(&lifecycle);
  }

  VmRef DeployBenign(int host) {
    return cluster.Deploy(host, "benign",
                          [] { return workloads::MakeBenignUtility(); });
  }

  void RunTicks(Tick n) {
    for (Tick t = 0; t < n; ++t) {
      cluster.RunTick();
      actuator.OnTick();
      engine.OnTick();
    }
  }
};

TEST(EvacuationTest, CrashedHostIsEvacuatedToTheSpare) {
  Rig rig(2, /*capacity=*/4, CrashAt(/*tick=*/5, /*host=*/0, 500));
  const VmRef a = rig.DeployBenign(0);
  const VmRef b = rig.DeployBenign(0);
  rig.RunTicks(40);

  const auto& stats = rig.engine.stats();
  EXPECT_EQ(stats.started, 2u);
  EXPECT_EQ(stats.migrated, 2u);
  EXPECT_EQ(stats.throttled_in_place, 0u);
  EXPECT_TRUE(rig.engine.quiescent());
  // Both VMs landed on the only spare and kept running there.
  EXPECT_EQ(rig.cluster.runnable_vms(1), 2);
  ASSERT_EQ(rig.engine.records().size(), 2u);
  for (const EvacuationRecord& record : rig.engine.records()) {
    EXPECT_EQ(record.outcome, EvacuationOutcome::kMigrated);
    EXPECT_EQ(record.from.host, 0);
    EXPECT_EQ(record.to.host, 1);
    EXPECT_GE(record.finished, record.started);
  }
  (void)a;
  (void)b;
}

TEST(EvacuationTest, DrainingHostIsEvacuatedWhileStillServing) {
  Rig rig(2, /*capacity=*/4, HostFaultPlan{});
  rig.DeployBenign(0);
  rig.RunTicks(3);
  rig.lifecycle.Drain(0);
  rig.RunTicks(10);
  EXPECT_EQ(rig.engine.stats().migrated, 1u);
  EXPECT_EQ(rig.cluster.runnable_vms(0), 0);
  EXPECT_EQ(rig.cluster.runnable_vms(1), 1);
}

TEST(EvacuationTest, NoUsableDestinationThrottlesInPlace) {
  // The only spare is at capacity, so every placement attempt fails and the
  // engine must fall back to throttling the stranded VM where it sits.
  EvacuationConfig config;
  config.max_attempts = 3;
  config.backoff_base = 1;
  config.backoff_cap = 2;
  config.throttle_ticks = 1000;
  Rig rig(2, /*capacity=*/1, CrashAt(/*tick=*/5, /*host=*/0, 500),
          fault::ActuationFaultPlan{}, config);
  rig.DeployBenign(0);
  rig.DeployBenign(1);  // fills the spare
  rig.RunTicks(60);

  const auto& stats = rig.engine.stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_EQ(stats.migrated, 0u);
  EXPECT_EQ(stats.throttled_in_place, 1u);
  EXPECT_GE(stats.no_destination, static_cast<std::uint64_t>(
                                      config.max_attempts));
  EXPECT_TRUE(rig.engine.quiescent());
  ASSERT_EQ(rig.engine.records().size(), 1u);
  EXPECT_EQ(rig.engine.records()[0].outcome,
            EvacuationOutcome::kThrottledInPlace);
}

TEST(EvacuationTest, AllSparesDownThrottlesInPlace) {
  HostFaultPlan plan = CrashAt(/*tick=*/5, /*host=*/0, 500);
  ScheduledHostFault second;
  second.tick = 5;
  second.host = 1;
  second.kind = HostFaultKind::kCrash;
  second.duration = 500;
  plan.scheduled.push_back(second);
  EvacuationConfig config;
  config.max_attempts = 2;
  config.backoff_base = 1;
  config.backoff_cap = 2;
  Rig rig(2, /*capacity=*/4, plan, fault::ActuationFaultPlan{}, config);
  rig.DeployBenign(0);
  rig.RunTicks(40);

  EXPECT_EQ(rig.engine.stats().migrated, 0u);
  EXPECT_EQ(rig.engine.stats().throttled_in_place, 1u);
}

TEST(EvacuationTest, HostDiesMidActuationAndRetryLandsElsewhere) {
  // Compose the two fault planes: actuation commands take 10 ticks, and the
  // first destination (host 1, most free slots at submit) crashes while the
  // evacuation command is in flight. The completion must fail the command
  // (mid-actuation host death), and the retry must land on host 2.
  HostFaultPlan plan = CrashAt(/*tick=*/5, /*host=*/0, 500);
  ScheduledHostFault mid;
  mid.tick = 10;  // between submit (~tick 5) and completion (~tick 15)
  mid.host = 1;
  mid.kind = HostFaultKind::kCrash;
  mid.duration = 500;
  plan.scheduled.push_back(mid);

  fault::ActuationFaultPlan actuation;
  actuation.latency_min_ticks = 10;
  actuation.latency_max_ticks = 10;

  EvacuationConfig config;
  config.backoff_base = 2;
  config.backoff_cap = 4;
  Rig rig(3, /*capacity=*/4, plan, actuation, config);
  rig.DeployBenign(0);
  rig.DeployBenign(2);  // host 1 starts emptier than host 2
  rig.RunTicks(80);

  const auto& stats = rig.engine.stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_EQ(stats.migrated, 1u);
  EXPECT_GE(stats.retries, 1u) << "the mid-actuation death must cost a retry";
  ASSERT_EQ(rig.engine.records().size(), 1u);
  EXPECT_EQ(rig.engine.records()[0].outcome, EvacuationOutcome::kMigrated);
  EXPECT_EQ(rig.engine.records()[0].to.host, 2);
  EXPECT_EQ(rig.cluster.runnable_vms(2), 2);
}

TEST(EvacuationTest, FaultFreeClusterNeverStartsATask) {
  Rig rig(2, /*capacity=*/4, HostFaultPlan{});
  rig.DeployBenign(0);
  rig.RunTicks(50);
  EXPECT_EQ(rig.engine.stats().started, 0u);
  EXPECT_TRUE(rig.engine.records().empty());
  EXPECT_TRUE(rig.engine.quiescent());
}

}  // namespace
}  // namespace sds::cluster
