#include "cluster/actuator.h"

#include <gtest/gtest.h>

#include "attacks/bus_lock_attacker.h"
#include "workloads/catalog.h"

namespace sds::cluster {
namespace {

WorkloadFactory AppFactory() {
  return [] { return workloads::MakeApp("kmeans"); };
}

WorkloadFactory AttackerFactory() {
  return [] {
    return std::make_unique<attacks::BusLockAttacker>(
        attacks::BusLockConfig{});
  };
}

struct Rig {
  Cluster cluster{2, HostConfig{}, 17};
  VmRef victim;
  VmRef attacker;

  Rig() {
    victim = cluster.Deploy(0, "victim", AppFactory());
    attacker = cluster.Deploy(0, "attacker", AttackerFactory());
  }

  void Tick(Actuator& actuator, int n) {
    for (int t = 0; t < n; ++t) {
      cluster.RunTick();
      actuator.OnTick();
    }
  }
};

fault::ActuationFaultPlan LatencyPlan(Tick lo, Tick hi) {
  fault::ActuationFaultPlan plan;
  plan.latency_min_ticks = lo;
  plan.latency_max_ticks = hi;
  return plan;
}

TEST(ActuatorTest, EnumNamesAreStable) {
  EXPECT_STREQ(ActuationOpName(ActuationOp::kMigrate), "migrate");
  EXPECT_STREQ(ActuationOpName(ActuationOp::kStop), "stop");
  EXPECT_STREQ(ActuationOpName(ActuationOp::kResume), "resume");
  EXPECT_STREQ(CommandStatusName(CommandStatus::kInFlight), "in-flight");
  EXPECT_STREQ(CommandStatusName(CommandStatus::kCancelled), "cancelled");
  EXPECT_STREQ(ActuationErrorName(ActuationError::kConflict), "conflict");
  EXPECT_STREQ(ActuationErrorName(ActuationError::kSourceGone),
               "source-gone");
  EXPECT_STREQ(
      fault::ActuationFaultKindName(fault::ActuationFaultKind::kCommandLost),
      "command-lost");
  EXPECT_STREQ(fault::ActuationFaultKindName(
                   fault::ActuationFaultKind::kSpareAtCapacity),
               "spare-at-capacity");
}

TEST(ActuatorTest, NullPlanMigratesSynchronously) {
  Rig rig;
  Actuator actuator(rig.cluster);
  EXPECT_FALSE(actuator.plan().enabled());

  const CommandId id = actuator.SubmitMigrate(rig.victim, 1);
  const CommandResult& r = actuator.result(id);
  EXPECT_EQ(r.status, CommandStatus::kSucceeded);
  EXPECT_EQ(r.error, ActuationError::kNone);
  EXPECT_EQ(r.placement.host, 1);
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_TRUE(rig.cluster.IsRunnable(r.placement));
  EXPECT_FALSE(rig.cluster.IsRunnable(rig.victim));  // stopped at the source
  EXPECT_EQ(actuator.stats().completed, 1u);
}

TEST(ActuatorTest, LatencyDelaysExecution) {
  Rig rig;
  Actuator actuator(rig.cluster, LatencyPlan(5, 5));
  const CommandId id = actuator.SubmitMigrate(rig.victim, 1);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kInFlight);
  rig.Tick(actuator, 4);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kInFlight);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.victim));  // nothing moved yet
  rig.Tick(actuator, 1);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kSucceeded);
  EXPECT_EQ(actuator.result(id).placement.host, 1);
  EXPECT_EQ(actuator.stats().latency_ticks, 5u);
}

TEST(ActuatorTest, LostCommandNeverCompletesUntilCancelled) {
  Rig rig;
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kCommandLost, 1.0, 3));
  const CommandId id = actuator.SubmitStop(rig.attacker);
  rig.Tick(actuator, 50);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kInFlight);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.attacker));  // never executed
  EXPECT_EQ(actuator.stats().lost, 1u);

  actuator.Cancel(id);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kCancelled);
  rig.Tick(actuator, 10);
  // Cancelled commands stay dead even after more ticks.
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kCancelled);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.attacker));
  EXPECT_EQ(actuator.stats().cancelled, 1u);
}

TEST(ActuatorTest, MigrationAbortLeavesSourceRunning) {
  Rig rig;
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kMigrationAbort, 1.0, 3));
  const CommandId id = actuator.SubmitMigrate(rig.victim, 1);
  const CommandResult& r = actuator.result(id);
  EXPECT_EQ(r.status, CommandStatus::kFailed);
  EXPECT_EQ(r.error, ActuationError::kAborted);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.victim));
  EXPECT_EQ(rig.cluster.runnable_vms(1), 0);
  EXPECT_EQ(actuator.stats().failed, 1u);
  EXPECT_EQ(actuator.stats().injected_total(), 1u);
}

TEST(ActuatorTest, SpareHostDownOpensAWindowThatExpires) {
  Rig rig;
  auto plan = fault::ActuationFaultPlan::Single(
      fault::ActuationFaultKind::kSpareHostDown, 1.0, 3);
  plan.host_down_min_ticks = 10;
  plan.host_down_max_ticks = 10;
  Actuator actuator(rig.cluster, plan);

  const CommandId id = actuator.SubmitMigrate(rig.victim, 1);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kFailed);
  EXPECT_EQ(actuator.result(id).error, ActuationError::kHostDown);
  EXPECT_FALSE(actuator.host_usable(1));
  EXPECT_TRUE(actuator.host_usable(0));
  rig.Tick(actuator, 10);
  EXPECT_TRUE(actuator.host_usable(1));
}

TEST(ActuatorTest, StopRejectedLeavesTargetRunning) {
  Rig rig;
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kStopRejected, 1.0, 3));
  const CommandId id = actuator.SubmitStop(rig.attacker);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kFailed);
  EXPECT_EQ(actuator.result(id).error, ActuationError::kRejected);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.attacker));
}

TEST(ActuatorTest, StopFaultKindsDoNotApplyToMigrations) {
  Rig rig;
  // A plan that rejects every stop must not perturb migrations at all.
  Actuator actuator(rig.cluster,
                    fault::ActuationFaultPlan::Single(
                        fault::ActuationFaultKind::kStopRejected, 1.0, 3));
  const CommandId id = actuator.SubmitMigrate(rig.victim, 1);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kSucceeded);
  EXPECT_EQ(actuator.stats().injected_total(), 0u);
}

TEST(ActuatorTest, DuplicateSubmitIsRejectedAsConflict) {
  Rig rig;
  Actuator actuator(rig.cluster, LatencyPlan(10, 10));
  const CommandId first = actuator.SubmitStop(rig.victim);
  const CommandId second = actuator.SubmitMigrate(rig.victim, 1);
  EXPECT_NE(first, second);
  EXPECT_EQ(actuator.result(second).status, CommandStatus::kFailed);
  EXPECT_EQ(actuator.result(second).error, ActuationError::kConflict);
  EXPECT_EQ(actuator.stats().conflicts, 1u);

  // The original command is unaffected by the rejected duplicate.
  rig.Tick(actuator, 10);
  EXPECT_EQ(actuator.result(first).status, CommandStatus::kSucceeded);
  EXPECT_FALSE(rig.cluster.IsRunnable(rig.victim));

  // With the slot free again, a new command for the same VM is accepted.
  const CommandId third = actuator.SubmitResume(rig.victim);
  rig.Tick(actuator, 10);
  EXPECT_EQ(actuator.result(third).status, CommandStatus::kSucceeded);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.victim));
}

TEST(ActuatorTest, ResumeRestoresAStoppedVm) {
  Rig rig;
  Actuator actuator(rig.cluster);
  actuator.SubmitStop(rig.attacker);
  EXPECT_FALSE(rig.cluster.IsRunnable(rig.attacker));
  const CommandId id = actuator.SubmitResume(rig.attacker);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kSucceeded);
  EXPECT_TRUE(rig.cluster.IsRunnable(rig.attacker));
}

TEST(ActuatorTest, MigrateOfStoppedSourceFailsSourceGone) {
  Rig rig;
  Actuator actuator(rig.cluster);
  actuator.SubmitStop(rig.victim);
  const CommandId id = actuator.SubmitMigrate(rig.victim, 1);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kFailed);
  EXPECT_EQ(actuator.result(id).error, ActuationError::kSourceGone);
}

TEST(ActuatorTest, MigrateToFullHostFailsNoCapacity) {
  std::vector<HostConfig> hosts(2);
  hosts[1].vm_capacity = 1;
  Cluster cluster(hosts, 17);
  const VmRef victim = cluster.Deploy(0, "victim", AppFactory());
  cluster.Deploy(1, "occupant", AppFactory());

  Actuator actuator(cluster);
  const CommandId id = actuator.SubmitMigrate(victim, 1);
  EXPECT_EQ(actuator.result(id).status, CommandStatus::kFailed);
  EXPECT_EQ(actuator.result(id).error, ActuationError::kNoCapacity);
  EXPECT_TRUE(cluster.IsRunnable(victim));
}

TEST(ActuatorTest, FaultScheduleIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t plan_seed) {
    Rig rig;
    Actuator actuator(rig.cluster,
                      fault::ActuationFaultPlan::Single(
                          fault::ActuationFaultKind::kMigrationAbort, 0.5,
                          plan_seed, 1, 6));
    std::vector<std::pair<CommandStatus, Tick>> out;
    VmRef vm = rig.victim;
    for (int i = 0; i < 6; ++i) {
      const CommandId id =
          actuator.SubmitMigrate(vm, vm.host == 0 ? 1 : 0);
      rig.Tick(actuator, 8);
      const CommandResult& r = actuator.result(id);
      out.emplace_back(r.status, r.completed - r.submitted);
      if (r.status == CommandStatus::kSucceeded) vm = r.placement;
    }
    return out;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // different stream, different schedule
}

}  // namespace
}  // namespace sds::cluster
