// Regression pins for the unattributed-alarm mitigation path.
//
// A quarantine policy must NEVER stop a VM on an alarm that names nobody
// (culprit 0) or names the victim itself: both fall through to migrating
// the victim. The KStest baseline's attribution default is exactly that
// sentinel — identified_attacker() is 0 until an identification sweep
// concludes, and an unmeasurable candidate is scored inconclusive-WORST, so
// "no evidence" can never convict. The forensic-suspect preference
// (MitigationConfig::prefer_forensic_suspect) is the only sanctioned way to
// fill in a missing attribution, and only from a real co-tenant suspect.
#include <string_view>

#include <gtest/gtest.h>

#include "attacks/bus_lock_attacker.h"
#include "cluster/mitigation.h"
#include "detect/kstest_detector.h"
#include "telemetry/telemetry.h"
#include "workloads/catalog.h"

namespace sds::cluster {
namespace {

WorkloadFactory AppFactory(const std::string& app) {
  return [app] { return workloads::MakeApp(app); };
}

WorkloadFactory AttackerFactory() {
  return [] {
    return std::make_unique<attacks::BusLockAttacker>(
        attacks::BusLockConfig{});
  };
}

struct Rig {
  telemetry::Telemetry telemetry;
  Cluster cluster;
  VmRef victim;
  VmRef attacker;

  Rig() : cluster(2, TelemetryHostConfig(&telemetry), 11) {
    victim = cluster.Deploy(0, "victim", AppFactory("kmeans"));
    attacker = cluster.Deploy(0, "attacker", AttackerFactory());
  }

  static HostConfig TelemetryHostConfig(telemetry::Telemetry* t) {
    HostConfig config;
    config.machine.telemetry = t;
    return config;
  }

  MitigationConfig QuarantineConfig() const {
    MitigationConfig config;
    config.policy = MitigationPolicy::kQuarantineAttacker;
    config.spare_host = 1;
    return config;
  }

  bool AuditHasChannel(std::string_view channel) const {
    for (const auto& r : telemetry.audit().records()) {
      if (std::string_view(r.channel) == channel) return true;
    }
    return false;
  }
};

TEST(MitigationUnattributedTest, CulpritZeroNeverQuarantines) {
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim, rig.QuarantineConfig());
  engine.OnAlarm(/*attributed_attacker=*/0);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_EQ(engine.victim().host, 1);
  // The (unnamed) attacker was never touched.
  EXPECT_TRUE(rig.cluster.hypervisor(0).vm(rig.attacker.id).runnable());
}

TEST(MitigationUnattributedTest, VictimSelfAttributionNeverQuarantines) {
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim, rig.QuarantineConfig());
  engine.OnAlarm(rig.victim.id);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  // The victim keeps running at its new placement; nobody was stopped.
  const VmRef moved = engine.victim();
  EXPECT_EQ(moved.host, 1);
  EXPECT_TRUE(rig.cluster.hypervisor(moved.host).vm(moved.id).runnable());
  EXPECT_TRUE(rig.cluster.hypervisor(0).vm(rig.attacker.id).runnable());
}

TEST(MitigationUnattributedTest, KstestDefaultAttributionIsUnattributed) {
  // The baseline's attribution starts at the 0 sentinel and stays there
  // until an identification sweep concludes; feeding it straight into a
  // quarantine engine must take the migrate fallback, not stop VM 0.
  Rig rig;
  detect::KsTestDetector detector(rig.cluster.hypervisor(0), rig.victim.id,
                                  detect::KsTestParams{});
  EXPECT_EQ(detector.identified_attacker(), 0u);

  MitigationEngine engine(rig.cluster, rig.victim, rig.QuarantineConfig());
  engine.OnAlarm(detector.identified_attacker());
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
}

TEST(MitigationUnattributedTest, ForensicSuspectFillsInWhenPreferred) {
  Rig rig;
  MitigationConfig config = rig.QuarantineConfig();
  config.prefer_forensic_suspect = true;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  engine.OnAlarm(/*attributed_attacker=*/0,
                 /*forensic_suspect=*/rig.attacker.id);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kQuarantineAttacker);
  EXPECT_EQ(engine.victim().host, 0);
  EXPECT_FALSE(rig.cluster.hypervisor(0).vm(rig.attacker.id).runnable());
  EXPECT_TRUE(rig.AuditHasChannel("forensic_substitution"));
}

TEST(MitigationUnattributedTest, ForensicSuspectIgnoredByDefault) {
  // Without the opt-in, the two-argument overload behaves exactly like the
  // one-argument path: unattributed alarms migrate.
  Rig rig;
  MitigationEngine engine(rig.cluster, rig.victim, rig.QuarantineConfig());
  engine.OnAlarm(/*attributed_attacker=*/0,
                 /*forensic_suspect=*/rig.attacker.id);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_TRUE(rig.cluster.hypervisor(0).vm(rig.attacker.id).runnable());
  EXPECT_FALSE(rig.AuditHasChannel("forensic_substitution"));
}

TEST(MitigationUnattributedTest, PrimaryAttributionBeatsForensicSuspect) {
  // When the KStest sweep DID name someone, the forensic suspect is only a
  // second opinion — the perturbation-based culprit wins.
  Rig rig;
  const VmRef bystander = rig.cluster.Deploy(0, "bystander",
                                             AppFactory("terasort"));
  MitigationConfig config = rig.QuarantineConfig();
  config.prefer_forensic_suspect = true;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  engine.OnAlarm(rig.attacker.id, /*forensic_suspect=*/bystander.id);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kQuarantineAttacker);
  EXPECT_FALSE(rig.cluster.hypervisor(0).vm(rig.attacker.id).runnable());
  EXPECT_TRUE(rig.cluster.hypervisor(0).vm(bystander.id).runnable());
  EXPECT_FALSE(rig.AuditHasChannel("forensic_substitution"));
}

TEST(MitigationUnattributedTest, UselessForensicSuspectStillFallsBack) {
  // A suspect of 0 (unattributed report) or the victim itself cannot stand
  // in; the engine migrates as before.
  Rig rig;
  MitigationConfig config = rig.QuarantineConfig();
  config.prefer_forensic_suspect = true;
  MitigationEngine engine(rig.cluster, rig.victim, config);
  engine.OnAlarm(/*attributed_attacker=*/0, /*forensic_suspect=*/0);
  ASSERT_TRUE(engine.mitigated());
  EXPECT_EQ(engine.applied_policy(), MitigationPolicy::kMigrateVictim);
  EXPECT_FALSE(rig.AuditHasChannel("forensic_substitution"));
}

}  // namespace
}  // namespace sds::cluster
