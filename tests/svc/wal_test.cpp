// WAL framing and torn-tail recovery (DESIGN.md §14): encode/scan round
// trips, and — the crash-consistency workhorse — a scan truncated at EVERY
// byte offset of the final frame must keep exactly the intact prefix and
// report a torn tail, never misparse or crash. The checksum, version and
// field-stream rungs of the scan's own rejection ladder are each pinned.
#include "svc/wal.h"

#include <gtest/gtest.h>

#include <string>

#include "common/snapshot.h"
#include "obs/snapshot.h"

namespace sds::svc {
namespace {

SvcSample MakeSample(TenantId tenant, Tick tick, std::uint64_t offset) {
  SvcSample s;
  s.tenant = tenant;
  s.tick = tick;
  s.access_num = 2000 + offset;
  s.miss_num = 500 + offset;
  s.offset = offset;
  return s;
}

WalRecord EventRecord(std::uint64_t lsn, const SvcSample& sample,
                      std::uint32_t disposition) {
  WalRecord r;
  r.kind = WalRecordKind::kEvent;
  r.lsn = lsn;
  r.sample = sample;
  r.disposition = disposition;
  return r;
}

WalRecord TickRecord(std::uint64_t lsn, Tick tick) {
  WalRecord r;
  r.kind = WalRecordKind::kTick;
  r.lsn = lsn;
  r.tick = tick;
  return r;
}

void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// A frame with a CORRECT header for an arbitrary payload — the scan must
// get past checksum verification and reject on payload content.
std::string FrameAround(const std::string& payload) {
  std::string frame;
  AppendU32(&frame, static_cast<std::uint32_t>(payload.size()));
  AppendU64(&frame, Fnv1a(payload));
  frame += payload;
  return frame;
}

TEST(WalTest, EventAndTickRoundTrip) {
  const SvcSample sample = MakeSample(3, 77, 41);
  const std::string log = WalWriter::EncodeFrame(EventRecord(9, sample, 2)) +
                          WalWriter::EncodeFrame(TickRecord(10, 78));

  const WalScanResult r = WalReader::Scan(log);
  EXPECT_EQ(r.stop, WalScanStop::kCleanEnd);
  EXPECT_EQ(r.valid_bytes, log.size());
  ASSERT_EQ(r.records.size(), 2u);

  EXPECT_EQ(r.records[0].kind, WalRecordKind::kEvent);
  EXPECT_EQ(r.records[0].lsn, 9u);
  EXPECT_EQ(r.records[0].sample.tenant, sample.tenant);
  EXPECT_EQ(r.records[0].sample.tick, sample.tick);
  EXPECT_EQ(r.records[0].sample.access_num, sample.access_num);
  EXPECT_EQ(r.records[0].sample.miss_num, sample.miss_num);
  EXPECT_EQ(r.records[0].sample.offset, sample.offset);
  EXPECT_EQ(r.records[0].disposition, 2u);

  EXPECT_EQ(r.records[1].kind, WalRecordKind::kTick);
  EXPECT_EQ(r.records[1].lsn, 10u);
  EXPECT_EQ(r.records[1].tick, 78);
}

TEST(WalTest, EmptyLogIsCleanEnd) {
  const WalScanResult r = WalReader::Scan("");
  EXPECT_EQ(r.stop, WalScanStop::kCleanEnd);
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_TRUE(r.records.empty());
}

// The crash-recovery workhorse: a write torn at ANY byte of the final frame
// (header or payload, including zero surviving bytes) leaves a log whose
// scan yields exactly the intact prefix.
TEST(WalTest, TornFinalFrameAtEveryByteOffset) {
  const std::string prefix =
      WalWriter::EncodeFrame(EventRecord(1, MakeSample(0, 5, 1), 0)) +
      WalWriter::EncodeFrame(TickRecord(2, 6));
  const std::string final_frame =
      WalWriter::EncodeFrame(EventRecord(3, MakeSample(1, 6, 2), 0));

  for (std::size_t cut = 0; cut < final_frame.size(); ++cut) {
    const std::string log = prefix + final_frame.substr(0, cut);
    const WalScanResult r = WalReader::Scan(log);
    ASSERT_EQ(r.records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(r.valid_bytes, prefix.size()) << "cut=" << cut;
    EXPECT_EQ(r.stop,
              cut == 0 ? WalScanStop::kCleanEnd : WalScanStop::kTornFrame)
        << "cut=" << cut;
  }

  // And the whole frame present again scans clean.
  const WalScanResult whole = WalReader::Scan(prefix + final_frame);
  EXPECT_EQ(whole.records.size(), 3u);
  EXPECT_EQ(whole.stop, WalScanStop::kCleanEnd);
  EXPECT_EQ(whole.valid_bytes, prefix.size() + final_frame.size());
}

TEST(WalTest, CorruptPayloadByteStopsWithBadChecksum) {
  const std::string first =
      WalWriter::EncodeFrame(TickRecord(1, 10));
  std::string second =
      WalWriter::EncodeFrame(EventRecord(2, MakeSample(4, 11, 9), 1));
  second[second.size() - 3] ^= 0x20;  // flip a payload bit

  const WalScanResult r = WalReader::Scan(first + second);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 1u);
  EXPECT_EQ(r.valid_bytes, first.size());
  EXPECT_EQ(r.stop, WalScanStop::kBadChecksum);
}

TEST(WalTest, OtherReleaseVersionStopsWithBadVersion) {
  // A well-checksummed frame whose payload was sealed by a "future" release.
  SnapshotWriter payload;
  payload.U32(kWalPayloadVersion + 1);
  payload.U32(static_cast<std::uint32_t>(WalRecordKind::kTick));
  payload.U64(1);
  payload.I64(5);

  const WalScanResult r = WalReader::Scan(FrameAround(payload.data()));
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, 0u);
  EXPECT_EQ(r.stop, WalScanStop::kBadVersion);
}

TEST(WalTest, MalformedFieldStreamStopsWithBadRecord) {
  // Unknown record kind, good checksum.
  SnapshotWriter unknown_kind;
  unknown_kind.U32(kWalPayloadVersion);
  unknown_kind.U32(99);
  unknown_kind.U64(1);
  const WalScanResult a = WalReader::Scan(FrameAround(unknown_kind.data()));
  EXPECT_TRUE(a.records.empty());
  EXPECT_EQ(a.stop, WalScanStop::kBadRecord);

  // Known kind, field stream cut short (no tick field), good checksum.
  SnapshotWriter short_stream;
  short_stream.U32(kWalPayloadVersion);
  short_stream.U32(static_cast<std::uint32_t>(WalRecordKind::kTick));
  short_stream.U64(1);
  const WalScanResult b = WalReader::Scan(FrameAround(short_stream.data()));
  EXPECT_TRUE(b.records.empty());
  EXPECT_EQ(b.stop, WalScanStop::kBadRecord);

  // Known kind with TRAILING bytes after the last field: also corrupt.
  SnapshotWriter trailing;
  trailing.U32(kWalPayloadVersion);
  trailing.U32(static_cast<std::uint32_t>(WalRecordKind::kTick));
  trailing.U64(1);
  trailing.I64(5);
  trailing.U64(0xdead);
  const WalScanResult c = WalReader::Scan(FrameAround(trailing.data()));
  EXPECT_TRUE(c.records.empty());
  EXPECT_EQ(c.stop, WalScanStop::kBadRecord);
}

// The WAL payload opens with the checkpoint envelope's version pin, so one
// release bump invalidates both halves of the durable state together.
TEST(WalTest, PayloadVersionIsTheSnapshotPin) {
  EXPECT_EQ(kWalPayloadVersion, obs::kSnapshotVersion);
}

}  // namespace
}  // namespace sds::svc
