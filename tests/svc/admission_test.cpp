// The ingest admission ladder (DESIGN.md §14): fixed rung ORDER — quarantine
// beats insane beats future beats stale beats backpressure — plus the
// backpressure tiers (admit / coalesce / shed by queue depth) and the
// offense -> quarantine machinery for repeat poison-input offenders.
#include "svc/admission.h"

#include <gtest/gtest.h>

#include "svc/tenant_table.h"

namespace sds::svc {
namespace {

PipelineConfig SmallPipeline() {
  PipelineConfig c;
  c.det.window = 20;
  c.det.step = 5;
  c.profile_len = 30;
  return c;
}

AdmissionConfig TestConfig() {
  AdmissionConfig c;
  c.max_future_ticks = 50;
  c.quarantine_offense_threshold = 3;
  c.quarantine_ticks = 100;
  c.coalesce_depth = 4;
  c.shed_depth = 8;
  return c;
}

SvcSample Sane(Tick tick) {
  SvcSample s;
  s.tenant = 1;
  s.tick = tick;
  s.access_num = 2000;
  s.miss_num = 500;
  return s;
}

SvcSample Insane(Tick tick) {
  SvcSample s = Sane(tick);
  s.miss_num = s.access_num + 1;  // misses exceed accesses: impossible
  return s;
}

TEST(AdmissionTest, CleanSampleIsAdmitted) {
  EXPECT_EQ(JudgeSample(Sane(10), TestConfig(), 10, nullptr, 0, false),
            Disposition::kAdmit);
}

TEST(AdmissionTest, QuarantineOutranksEveryLaterRung) {
  TenantEntry entry(SmallPipeline());
  entry.quarantined_until = 100;
  // Even an insane sample from a quarantined tenant is classified by the
  // EARLIER rung — the ladder order is fixed.
  EXPECT_EQ(JudgeSample(Insane(10), TestConfig(), 10, &entry, 0, false),
            Disposition::kRejectQuarantined);
  // Sentence served: the same insane sample now reaches the sanity rung.
  EXPECT_EQ(JudgeSample(Insane(100), TestConfig(), 100, &entry, 0, false),
            Disposition::kRejectInsane);
}

TEST(AdmissionTest, InsaneCountersAreRejected) {
  const AdmissionConfig config = TestConfig();
  EXPECT_EQ(JudgeSample(Insane(10), config, 10, nullptr, 0, false),
            Disposition::kRejectInsane);

  // Delta ceiling: one tick of data may not move the counter more than
  // max_delta_per_tick...
  SvcSample burst = Sane(10);
  burst.access_num = config.sanity.max_delta_per_tick + 1;
  burst.miss_num = 0;
  EXPECT_EQ(JudgeSample(burst, config, 10, nullptr, 0, false),
            Disposition::kRejectInsane);

  // ...but the allowance scales with the tick gap since the tenant's newest
  // enqueued sample (same scaling detect/degrade applies after gaps).
  TenantEntry entry(SmallPipeline());
  entry.last_enqueued_tick = 0;
  SvcSample gap = burst;
  gap.tick = 10;
  EXPECT_EQ(JudgeSample(gap, config, 10, &entry, 0, false),
            Disposition::kAdmit);
}

TEST(AdmissionTest, FutureTimestampsAreRejectedBeyondSkew) {
  const AdmissionConfig config = TestConfig();
  // Exactly at the tolerated skew: fine.
  EXPECT_EQ(JudgeSample(Sane(10 + config.max_future_ticks), config, 10,
                        nullptr, 0, false),
            Disposition::kAdmit);
  EXPECT_EQ(JudgeSample(Sane(10 + config.max_future_ticks + 1), config, 10,
                        nullptr, 0, false),
            Disposition::kRejectFuture);
}

TEST(AdmissionTest, StaleAndDuplicateTicksAreRejected) {
  TenantEntry entry(SmallPipeline());
  entry.last_enqueued_tick = 20;
  // Duplicate (== watermark) and out-of-order (< watermark) are stale...
  EXPECT_EQ(JudgeSample(Sane(20), TestConfig(), 25, &entry, 0, false),
            Disposition::kRejectStale);
  EXPECT_EQ(JudgeSample(Sane(15), TestConfig(), 25, &entry, 0, false),
            Disposition::kRejectStale);
  // ...progress is not.
  EXPECT_EQ(JudgeSample(Sane(21), TestConfig(), 25, &entry, 0, false),
            Disposition::kAdmit);
}

TEST(AdmissionTest, BackpressureTiersByQueueDepth) {
  const AdmissionConfig config = TestConfig();
  // Below coalesce depth: admit.
  EXPECT_EQ(JudgeSample(Sane(10), config, 10, nullptr,
                        config.coalesce_depth - 1, true),
            Disposition::kAdmit);
  // Deep queue + an entry to merge into: coalesce.
  EXPECT_EQ(JudgeSample(Sane(10), config, 10, nullptr, config.coalesce_depth,
                        true),
            Disposition::kCoalesce);
  // Deep queue but nothing of this tenant to merge into: still admit — the
  // coalesce tier never drops a tenant's FIRST queued sample.
  EXPECT_EQ(JudgeSample(Sane(10), config, 10, nullptr, config.coalesce_depth,
                        false),
            Disposition::kAdmit);
  // At shed depth the sample is dropped regardless of mergeability.
  EXPECT_EQ(JudgeSample(Sane(10), config, 10, nullptr, config.shed_depth,
                        true),
            Disposition::kShed);
}

TEST(AdmissionTest, OnlyInsaneAndFutureAreOffenses) {
  EXPECT_TRUE(DispositionIsOffense(Disposition::kRejectInsane));
  EXPECT_TRUE(DispositionIsOffense(Disposition::kRejectFuture));
  EXPECT_FALSE(DispositionIsOffense(Disposition::kRejectStale));
  EXPECT_FALSE(DispositionIsOffense(Disposition::kRejectMalformed));
  EXPECT_FALSE(DispositionIsOffense(Disposition::kRejectQuarantined));
  EXPECT_FALSE(DispositionIsOffense(Disposition::kShed));
  EXPECT_FALSE(DispositionIsOffense(Disposition::kCoalesce));
  EXPECT_FALSE(DispositionIsOffense(Disposition::kAdmit));
}

TEST(AdmissionTest, RepeatOffenderIsQuarantined) {
  const AdmissionConfig config = TestConfig();
  TenantEntry entry(SmallPipeline());

  EXPECT_FALSE(RecordOffense(entry, config, 10));
  EXPECT_FALSE(RecordOffense(entry, config, 11));
  EXPECT_EQ(entry.offenses, 2u);
  EXPECT_EQ(entry.quarantined_until, kInvalidTick);

  // Third strike: quarantine starts, counter resets for the next cycle.
  EXPECT_TRUE(RecordOffense(entry, config, 12));
  EXPECT_EQ(entry.offenses, 0u);
  EXPECT_EQ(entry.quarantined_until, 12 + config.quarantine_ticks);

  EXPECT_EQ(JudgeSample(Sane(13), config, 13, &entry, 0, false),
            Disposition::kRejectQuarantined);
}

TEST(AdmissionTest, DispositionNamesAreStable) {
  // Inspection tooling keys on these strings; renames are format breaks.
  EXPECT_STREQ(DispositionName(Disposition::kAdmit), "admit");
  EXPECT_STREQ(DispositionName(Disposition::kCoalesce), "coalesce");
  EXPECT_STREQ(DispositionName(Disposition::kShed), "shed");
  EXPECT_STREQ(DispositionName(Disposition::kRejectMalformed),
               "reject_malformed");
  EXPECT_STREQ(DispositionName(Disposition::kRejectInsane), "reject_insane");
  EXPECT_STREQ(DispositionName(Disposition::kRejectFuture), "reject_future");
  EXPECT_STREQ(DispositionName(Disposition::kRejectStale), "reject_stale");
  EXPECT_STREQ(DispositionName(Disposition::kRejectQuarantined),
               "reject_quarantined");
}

}  // namespace
}  // namespace sds::svc
