// DetectionService crash consistency (DESIGN.md §14): WAL-before-apply,
// checkpoint + replay recovery, transport-offset redelivery dedupe,
// idempotent tick advances — and the torn-write sweep: a crash torn at
// EVERY byte offset of a mid-stream WAL append must recover to a decision
// log, alarm sequence and accounting bit-identical to a never-crashed run.
#include "svc/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/service_plan.h"
#include "svc/store.h"
#include "svc/wal.h"

namespace sds::svc {
namespace {

// SplitMix64 finalizer — the repo's stateless deterministic-noise idiom.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Draw01(std::uint64_t seed, std::uint64_t tenant, Tick tick,
              std::uint64_t salt) {
  std::uint64_t h = Mix(seed ^ (salt << 48));
  h = Mix(h ^ (tenant << 24));
  h = Mix(h ^ static_cast<std::uint64_t>(tick));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

SvcConfig TestConfig() {
  SvcConfig c;
  c.pipeline.mode = PipelineMode::kSds;
  c.pipeline.det.window = 20;
  c.pipeline.det.step = 5;
  c.pipeline.det.h_c = 3;
  // Wide band: the attack below shifts the mean by hundreds of profile
  // sigmas, so detection is unaffected while clean noise never alarms.
  c.pipeline.det.boundary_k = 25.0;
  c.pipeline.profile_len = 40;
  c.admission.max_future_ticks = 50;
  c.admission.coalesce_depth = 12;
  c.admission.shed_depth = 24;
  c.max_tenants = 4;
  c.drain_per_tick = 8;
  c.checkpoint_every_ticks = 25;
  return c;
}

// One sample per tenant per tick; tenant 0 shifts its statistics hard at
// `attack_start` (the service-level attack signal).
std::vector<SvcSample> BuildFeed(std::uint32_t tenants, Tick ticks,
                                 Tick attack_start, std::uint64_t seed) {
  std::vector<SvcSample> feed;
  std::uint64_t offset = 1;
  for (Tick t = 0; t < ticks; ++t) {
    for (std::uint32_t u = 0; u < tenants; ++u) {
      double a = 2200.0 + 600.0 * Draw01(seed, u, t, 1);
      if (u == 0 && t >= attack_start) a += 50000.0;
      SvcSample s;
      s.tenant = u;
      s.tick = t;
      s.access_num = static_cast<std::uint64_t>(a);
      s.miss_num = static_cast<std::uint64_t>(a * 0.25);
      s.offset = offset++;
      feed.push_back(s);
    }
  }
  return feed;
}

// Drives the whole feed (advancing data time from the samples' ticks) and
// quiesces. Safe to re-run on a recovered service: processed offsets and
// ticks deduplicate. Returns false when the service died mid-drive.
bool DriveFeed(DetectionService& service, const std::vector<SvcSample>& feed,
               Tick feed_ticks) {
  for (const SvcSample& s : feed) {
    if (!service.AdvanceTick(s.tick)) return false;
    if (!service.Offer(s)) return false;
  }
  Tick t = feed_ticks;
  while (service.queue_depth() > 0) {
    if (!service.AdvanceTick(t++)) return false;
  }
  return true;
}

TEST(ServiceTest, ColdStartDetectsTheAttackedTenantOnly) {
  const auto feed = BuildFeed(3, 250, 150, 7);
  MemStore store;
  DetectionService service(TestConfig(), &store);
  EXPECT_FALSE(service.Recover());  // nothing durable yet: cold start
  ASSERT_TRUE(DriveFeed(service, feed, 250));

  ASSERT_EQ(service.alarm_log().size(), 1u);
  EXPECT_EQ(service.alarm_log()[0].tenant, 0u);
  EXPECT_GE(service.alarm_log()[0].tick, 150);
  ASSERT_FALSE(service.decision_log().empty());
  EXPECT_TRUE(service.decision_log()[0].active);

  const SvcAccounting& a = service.accounting();
  EXPECT_EQ(a.offered, feed.size());
  EXPECT_EQ(a.admitted + a.coalesced + a.shed, feed.size());
  EXPECT_EQ(a.samples_drained, a.admitted + a.coalesced);
  EXPECT_EQ(service.transport_watermark(), feed.size());
  EXPECT_GT(service.incarnation().checkpoints_written, 0u);
}

TEST(ServiceTest, RedeliveryDedupesAgainstTheWatermark) {
  const auto feed = BuildFeed(3, 120, 60, 7);
  MemStore store;
  DetectionService service(TestConfig(), &store);
  service.Recover();
  ASSERT_TRUE(DriveFeed(service, feed, 120));

  const SvcAccounting before = service.accounting();
  const auto decisions = service.decision_log();
  const auto alarms = service.alarm_log();

  // The feed replays from the beginning (at-least-once): every event dedupes
  // at the watermark, nothing is re-judged, nothing changes.
  ASSERT_TRUE(DriveFeed(service, feed, 120));
  EXPECT_EQ(service.accounting(), before);
  EXPECT_EQ(service.decision_log(), decisions);
  EXPECT_EQ(service.alarm_log(), alarms);
  EXPECT_EQ(service.incarnation().redelivered_deduped, feed.size());
}

TEST(ServiceTest, TickAdvanceIsIdempotent) {
  MemStore store;
  DetectionService service(TestConfig(), &store);
  service.Recover();
  ASSERT_TRUE(service.AdvanceTick(5));
  const std::uint64_t ticks = service.accounting().ticks_processed;
  // At or behind the clock: accepted (redelivered drive loops hit this on
  // every replayed event) but processed zero times.
  EXPECT_TRUE(service.AdvanceTick(5));
  EXPECT_TRUE(service.AdvanceTick(3));
  EXPECT_EQ(service.accounting().ticks_processed, ticks);
  EXPECT_EQ(service.current_tick(), 5);
}

TEST(ServiceTest, MalformedLinesAreAccountedNotFatal) {
  MemStore store;
  DetectionService service(TestConfig(), &store);
  service.Recover();
  ASSERT_TRUE(service.AdvanceTick(0));
  ASSERT_TRUE(service.OfferMalformed(1));
  ASSERT_TRUE(service.OfferMalformed(2));
  EXPECT_EQ(service.accounting().rejected_malformed, 2u);
  EXPECT_EQ(service.accounting().offered, 2u);
  EXPECT_FALSE(service.dead());
}

TEST(ServiceTest, RepeatInsaneOffenderIsQuarantined) {
  SvcConfig config = TestConfig();
  config.admission.quarantine_offense_threshold = 3;
  config.admission.quarantine_ticks = 100;
  MemStore store;
  DetectionService service(config, &store);
  service.Recover();

  std::uint64_t offset = 1;
  for (Tick t = 0; t < 4; ++t) {
    ASSERT_TRUE(service.AdvanceTick(t));
    SvcSample s;
    s.tenant = 9;
    s.tick = t;
    s.access_num = 1000;
    s.miss_num = 2000;  // impossible: offense
    s.offset = offset++;
    ASSERT_TRUE(service.Offer(s));
  }
  const SvcAccounting& a = service.accounting();
  EXPECT_EQ(a.rejected_insane, 3u);
  EXPECT_EQ(a.quarantines_started, 1u);
  // The fourth sample (sane or not) is serving the sentence.
  EXPECT_EQ(a.rejected_quarantined, 1u);
}

TEST(ServiceTest, CheckpointTruncatesWalAndRestoresState) {
  const auto feed = BuildFeed(3, 120, 60, 7);
  MemStore store;
  DetectionService service(TestConfig(), &store);
  service.Recover();
  ASSERT_TRUE(DriveFeed(service, feed, 120));
  ASSERT_TRUE(service.Checkpoint());
  EXPECT_TRUE(store.ReadWal().empty());

  // A clean restart from the checkpoint alone (no WAL tail, no redelivery)
  // restores the full pinned state.
  MemStore revived_store = store.Reincarnate();
  DetectionService revived(TestConfig(), &revived_store);
  ASSERT_TRUE(revived.Recover());
  EXPECT_TRUE(revived.incarnation().recovered_from_checkpoint);
  EXPECT_EQ(revived.incarnation().recovery_replayed_records, 0u);
  EXPECT_EQ(revived.current_tick(), service.current_tick());
  EXPECT_EQ(revived.transport_watermark(), service.transport_watermark());
  EXPECT_EQ(revived.accounting(), service.accounting());
  EXPECT_EQ(revived.decision_log(), service.decision_log());
  EXPECT_EQ(revived.alarm_log(), service.alarm_log());
}

TEST(ServiceTest, ConfigChangeOrphansDurableState) {
  const auto feed = BuildFeed(3, 80, 40, 7);
  MemStore store;
  {
    DetectionService service(TestConfig(), &store);
    service.Recover();
    ASSERT_TRUE(DriveFeed(service, feed, 80));
    ASSERT_TRUE(service.Checkpoint());
  }
  // A differently-tuned service must refuse the old checkpoint (fingerprint
  // mismatch) and start cold rather than feed stale analyzer windows into
  // new detectors.
  SvcConfig retuned = TestConfig();
  retuned.pipeline.det.boundary_k += 1.0;
  MemStore restarted_store = store.Reincarnate();
  DetectionService restarted(retuned, &restarted_store);
  EXPECT_FALSE(restarted.Recover());
  EXPECT_FALSE(restarted.incarnation().recovered_from_checkpoint);
  EXPECT_EQ(restarted.incarnation().checkpoint_status,
            obs::SnapshotStatus::kBadFingerprint);
  EXPECT_EQ(restarted.accounting().offered, 0u);
}

TEST(ServiceTest, DeadServiceRefusesEveryMutation) {
  fault::ServiceFaultPlan plan =
      fault::ServiceFaultPlan::Single(fault::ServiceFaultKind::kCrashMidWalAppend,
                                      3, 0.5);
  MemStore store(plan);
  DetectionService service(TestConfig(), &store);
  service.Recover();
  const auto feed = BuildFeed(2, 30, 999, 7);
  EXPECT_FALSE(DriveFeed(service, feed, 30));
  EXPECT_TRUE(service.dead());
  EXPECT_FALSE(service.Offer(feed.back()));
  EXPECT_FALSE(service.OfferMalformed(feed.size() + 1));
  EXPECT_FALSE(service.AdvanceTick(1000));
  EXPECT_FALSE(service.Checkpoint());
}

// The headline robustness pin at service level: tear a mid-stream WAL
// append at EVERY byte offset (0 surviving bytes .. the whole frame) and
// the recovered service, re-driven over the same at-least-once feed, must
// match the never-crashed reference bit for bit.
TEST(ServiceTest, TornWalAppendAtEveryByteOffsetRecoversBitIdentical) {
  const SvcConfig config = TestConfig();
  const Tick kTicks = 120;
  const auto feed = BuildFeed(3, kTicks, 60, 7);

  MemStore ref_store;
  DetectionService reference(config, &ref_store);
  reference.Recover();
  ASSERT_TRUE(DriveFeed(reference, feed, kTicks));
  ASSERT_GE(reference.alarm_log().size(), 1u);
  const std::uint64_t ref_appends =
      reference.incarnation().wal_frames_appended;
  ASSERT_GT(ref_appends, 10u);

  // The longest frame either record kind produces bounds the sweep; a
  // byte_offset past the torn frame's actual length clamps to "whole frame
  // persisted, then the process died".
  WalRecord event;
  event.kind = WalRecordKind::kEvent;
  event.sample = feed[0];
  const std::size_t max_frame = WalWriter::EncodeFrame(event).size();

  const std::uint64_t crash_op = (ref_appends * 2) / 3;
  for (std::size_t cut = 0; cut <= max_frame; ++cut) {
    fault::ServiceFaultPlan plan = fault::ServiceFaultPlan::Single(
        fault::ServiceFaultKind::kCrashMidWalAppend, crash_op);
    plan.points[0].byte_offset = static_cast<std::int64_t>(cut);

    MemStore doomed_store(plan);
    DetectionService doomed(config, &doomed_store);
    doomed.Recover();
    EXPECT_FALSE(DriveFeed(doomed, feed, kTicks)) << "cut=" << cut;
    ASSERT_TRUE(doomed_store.crashed()) << "cut=" << cut;

    MemStore recovered_store = doomed_store.Reincarnate();
    DetectionService recovered(config, &recovered_store);
    recovered.Recover();
    ASSERT_TRUE(DriveFeed(recovered, feed, kTicks)) << "cut=" << cut;

    EXPECT_EQ(recovered.decision_log(), reference.decision_log())
        << "cut=" << cut;
    EXPECT_EQ(recovered.alarm_log(), reference.alarm_log()) << "cut=" << cut;
    EXPECT_EQ(recovered.accounting(), reference.accounting())
        << "cut=" << cut;
  }
}

// Same pin for the checkpoint plane: a checkpoint torn mid-write must leave
// the previous good checkpoint in charge, and recovery + redelivery must
// still match the reference.
TEST(ServiceTest, TornCheckpointRecoversFromThePreviousOne) {
  const SvcConfig config = TestConfig();
  const Tick kTicks = 120;
  const auto feed = BuildFeed(3, kTicks, 60, 7);

  MemStore ref_store;
  DetectionService reference(config, &ref_store);
  reference.Recover();
  ASSERT_TRUE(DriveFeed(reference, feed, kTicks));
  const std::uint64_t ref_ckpts =
      reference.incarnation().checkpoints_written;
  ASSERT_GE(ref_ckpts, 3u);

  for (const double fraction : {0.0, 0.3, 0.9}) {
    fault::ServiceFaultPlan plan = fault::ServiceFaultPlan::Single(
        fault::ServiceFaultKind::kCrashMidCheckpoint, ref_ckpts / 2,
        fraction);
    MemStore doomed_store(plan);
    DetectionService doomed(config, &doomed_store);
    doomed.Recover();
    EXPECT_FALSE(DriveFeed(doomed, feed, kTicks));

    MemStore recovered_store = doomed_store.Reincarnate();
    DetectionService recovered(config, &recovered_store);
    recovered.Recover();
    // The torn blob never got promoted: recovery reads the previous good
    // checkpoint (there were >= 2 before the crash ordinal).
    EXPECT_TRUE(recovered.incarnation().recovered_from_checkpoint);
    ASSERT_TRUE(DriveFeed(recovered, feed, kTicks));

    EXPECT_EQ(recovered.decision_log(), reference.decision_log());
    EXPECT_EQ(recovered.alarm_log(), reference.alarm_log());
    EXPECT_EQ(recovered.accounting(), reference.accounting());
  }
}

}  // namespace
}  // namespace sds::svc
