// Bounded-memory tenant table (DESIGN.md §14): LRU eviction with loud
// accounting — created / evictions / readmissions counters, lossy-by-design
// eviction (a returning tenant re-profiles from scratch), deterministic
// recency order, and the checkpoint round trip that keeps all of it across
// a service restart.
#include "svc/tenant_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/snapshot.h"
#include "pcm/pcm_sampler.h"

namespace sds::svc {
namespace {

PipelineConfig SmallPipeline() {
  PipelineConfig c;
  c.det.window = 20;
  c.det.step = 5;
  c.det.h_c = 3;
  c.profile_len = 30;
  return c;
}

// Feeds `n` admitted samples into the tenant's pipeline so its state is
// distinguishable from a fresh one.
void WarmEntry(TenantEntry& entry, int n) {
  for (int i = 0; i < n; ++i) {
    pcm::PcmSample s;
    s.tick = i;
    s.access_num = 1000 + static_cast<std::uint64_t>(i);
    s.miss_num = 200;
    entry.pipeline.OnSample(s);
  }
}

TEST(TenantTableTest, TouchCreatesOnceAndCounts) {
  TenantTable table(SmallPipeline(), 4);
  table.Touch(7);
  table.Touch(8);
  table.Touch(7);  // existing: promoted, not re-created
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.stats().created, 2u);
  EXPECT_EQ(table.stats().evictions, 0u);
  EXPECT_EQ(table.stats().readmissions, 0u);
  EXPECT_NE(table.Find(7), nullptr);
  EXPECT_EQ(table.Find(99), nullptr);
}

TEST(TenantTableTest, EvictsLeastRecentlyTouched) {
  TenantTable table(SmallPipeline(), 3);
  table.Touch(1);
  table.Touch(2);
  table.Touch(3);
  table.Touch(1);  // promote 1; LRU is now 2
  table.Touch(4);  // over capacity: 2 is evicted

  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Find(2), nullptr);
  EXPECT_NE(table.Find(1), nullptr);
  EXPECT_EQ(table.stats().evictions, 1u);
  EXPECT_EQ(table.RecencyOrder(), (std::vector<TenantId>{4, 1, 3}));
}

TEST(TenantTableTest, ReadmissionIsCountedAndStartsFresh) {
  TenantTable table(SmallPipeline(), 2);
  TenantEntry& victim = table.Touch(10);
  WarmEntry(victim, 12);
  victim.offenses = 2;
  victim.last_enqueued_tick = 11;
  ASSERT_EQ(victim.pipeline.samples_seen(), 12u);

  table.Touch(11);
  table.Touch(12);  // evicts 10 (the LRU)
  ASSERT_EQ(table.Find(10), nullptr);
  EXPECT_EQ(table.stats().evictions, 1u);

  // Tenant 10 returns: a READMISSION, rebuilt from scratch — warm-up trace,
  // offense record and stale watermark are gone (lossy by design, loudly
  // counted).
  TenantEntry& back = table.Touch(10);  // evicts 11 (at capacity)
  EXPECT_EQ(table.stats().readmissions, 1u);
  EXPECT_EQ(table.stats().evictions, 2u);
  EXPECT_EQ(back.pipeline.samples_seen(), 0u);
  EXPECT_EQ(back.offenses, 0u);
  EXPECT_EQ(back.last_enqueued_tick, kInvalidTick);

  // Another eviction + return of tenant 10 counts again; the returning
  // tenant 11 is itself a readmission by now.
  table.Touch(11);  // evicts 12; 11 returns (readmission 2)
  table.Touch(12);  // evicts 10; 12 returns (readmission 3)
  table.Touch(10);  // evicts 11; 10 returns (readmission 4)
  EXPECT_EQ(table.stats().evictions, 5u);
  EXPECT_EQ(table.stats().readmissions, 4u);
}

TEST(TenantTableTest, FindNeverPromotes) {
  TenantTable table(SmallPipeline(), 2);
  table.Touch(1);
  table.Touch(2);
  // Find/FindMutable must not disturb recency: 1 stays the LRU victim.
  EXPECT_NE(table.Find(1), nullptr);
  EXPECT_NE(table.FindMutable(1), nullptr);
  table.Touch(3);
  EXPECT_EQ(table.Find(1), nullptr);
  EXPECT_NE(table.Find(2), nullptr);
}

TEST(TenantTableTest, SaveRestoreRoundTrip) {
  TenantTable table(SmallPipeline(), 3);
  table.Touch(1);
  table.Touch(2);
  table.Touch(3);
  table.Touch(4);  // evicts 1
  TenantEntry& t2 = table.Touch(2);
  t2.offenses = 2;
  t2.quarantined_until = 500;
  t2.last_enqueued_tick = 42;
  WarmEntry(t2, 7);

  SnapshotWriter w;
  table.SaveState(w);

  TenantTable restored(SmallPipeline(), 3);
  SnapshotReader r(w.data());
  ASSERT_TRUE(restored.RestoreState(r));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(restored.size(), table.size());
  EXPECT_EQ(restored.RecencyOrder(), table.RecencyOrder());
  EXPECT_EQ(restored.stats().created, table.stats().created);
  EXPECT_EQ(restored.stats().evictions, table.stats().evictions);
  EXPECT_EQ(restored.stats().readmissions, table.stats().readmissions);

  const TenantEntry* back = restored.Find(2);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->offenses, 2u);
  EXPECT_EQ(back->quarantined_until, 500);
  EXPECT_EQ(back->last_enqueued_tick, 42);
  EXPECT_EQ(back->pipeline.samples_seen(), 7u);

  // The evicted-ever set survived: tenant 1 returning is a readmission in
  // the restored table exactly as it would have been in the original.
  restored.Touch(5);  // evicts 3 in both worlds... exercise eviction parity
  table.Touch(5);
  EXPECT_EQ(restored.RecencyOrder(), table.RecencyOrder());
  restored.Touch(1);
  table.Touch(1);
  EXPECT_EQ(restored.stats().readmissions, table.stats().readmissions);
  EXPECT_GE(restored.stats().readmissions, 1u);
}

TEST(TenantTableTest, RestoreRejectsOverCapacityAndGarbage) {
  TenantTable table(SmallPipeline(), 4);
  table.Touch(1);
  table.Touch(2);
  SnapshotWriter w;
  table.SaveState(w);

  // A checkpoint holding more tenants than this table's capacity is refused
  // (config mismatch), as is a truncated field stream.
  TenantTable tiny(SmallPipeline(), 1);
  SnapshotReader r(w.data());
  EXPECT_FALSE(tiny.RestoreState(r));

  TenantTable fresh(SmallPipeline(), 4);
  SnapshotReader truncated(
      std::string_view(w.data()).substr(0, w.data().size() / 2));
  EXPECT_FALSE(fresh.RestoreState(truncated));
}

}  // namespace
}  // namespace sds::svc
