// periodic_monitor: SDS/P period tracking on a periodic application.
//
// Profiles FaceNet (or PCA), prints the profiled period, then monitors the
// live period while an LLC cleansing attack starts mid-run — showing the
// computed-period sequence deviate and the SDS/P alarm fire, exactly the
// decision path of paper Figure 8.
//
//   periodic_monitor --app=facenet --attack=llc-cleansing
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "detect/period.h"
#include "detect/profile.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv, {"app", "attack", "seconds", "seed"})) return 1;
  const std::string app = flags.GetString("app", "facenet");
  const auto attack = flags.GetString("attack", "llc-cleansing") == "bus-lock"
                          ? eval::AttackKind::kBusLock
                          : eval::AttackKind::kLlcCleansing;
  const double seconds = flags.GetDouble("seconds", 180.0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 9));

  const TickClock clock;
  detect::DetectorParams params;

  // Profile the period from a clean window.
  eval::ScenarioConfig base;
  base.app = app;
  const auto clean = eval::CollectCleanSamples(base, 12000, seed + 1);
  const auto profile = detect::BuildSdsProfile(clean, params);
  if (!profile.periodic()) {
    std::printf("'%s' did not classify as periodic — SDS/P does not apply "
                "(try facenet or pca)\n",
                app.c_str());
    return 1;
  }
  const detect::PeriodProfile period_profile = profile.miss_period
                                                   ? *profile.miss_period
                                                   : *profile.access_period;
  const pcm::Channel channel =
      profile.miss_period ? pcm::Channel::kMissNum : pcm::Channel::kAccessNum;
  std::printf("%s is periodic: p = %.1f MA steps (%.1fs of wall time), ACF "
              "strength %.2f, channel %s\n",
              app.c_str(), period_profile.period,
              period_profile.period * static_cast<double>(params.step) *
                  clock.tpcm_seconds(),
              period_profile.strength, pcm::ChannelName(channel));
  std::printf("monitoring with W_P = 2p, a period check every %zu MA values, "
              "alarm after %d consecutive deviations > %.0f%%\n\n",
              params.delta_wp, params.h_p, params.period_tolerance * 100);

  // Live monitoring with the attack at the midpoint.
  const Tick total = clock.ToTicks(seconds);
  const Tick attack_start = total / 2;
  const auto samples =
      eval::RunMeasurementStudy(app, attack, total, attack_start, seed);

  detect::PeriodAnalyzer analyzer(period_profile, params);
  Tick alarm_tick = kInvalidTick;
  Tick tick = 0;
  for (const auto& s : samples) {
    ++tick;
    const auto check = analyzer.Observe(pcm::SampleValue(s, channel));
    if (!check) continue;
    std::printf("  t=%6.1fs  period=%-6s %s\n",
                clock.ToSeconds(tick),
                check->period
                    ? (std::to_string(*check->period).substr(0, 4)).c_str()
                    : "none",
                check->abnormal ? "ABNORMAL" : "ok");
    if (alarm_tick == kInvalidTick && analyzer.attack_active()) {
      alarm_tick = tick;
      std::printf("  >>> SDS/P ALARM at t=%.1fs (%.1fs after the %s attack "
                  "started at t=%.1fs)\n",
                  clock.ToSeconds(tick),
                  clock.ToSeconds(tick - attack_start),
                  eval::AttackName(attack), clock.ToSeconds(attack_start));
    }
  }
  if (alarm_tick == kInvalidTick) {
    std::printf("\nno alarm raised — unexpected for this configuration\n");
    return 1;
  }
  return 0;
}
