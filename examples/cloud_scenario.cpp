// cloud_scenario: the paper's full evaluation deployment, SDS and the
// KStest baseline side by side on the same attack timeline.
//
// One victim VM (configurable application), one attack VM, seven benign
// tenants. The run follows Section 5.1: a clean stage, then the attack
// starts at the midpoint. Because the two detectors must not interfere
// (KStest throttles VMs), each runs in its own identically-seeded scenario,
// and the example prints a merged timeline of their decisions.
//
//   cloud_scenario --app=terasort --attack=llc-cleansing --seconds=300
#include <cstdio>
#include <memory>
#include <algorithm>
#include <string>

#include "common/flags.h"
#include "detect/kstest_detector.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/scenario.h"

namespace {

using namespace sds;

struct TimelineEntry {
  double t = 0.0;
  std::string event;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv, {"app", "attack", "seconds", "seed"})) return 1;
  const std::string app = flags.GetString("app", "terasort");
  const auto attack = flags.GetString("attack", "bus-lock") == "llc-cleansing"
                          ? eval::AttackKind::kLlcCleansing
                          : eval::AttackKind::kBusLock;
  const double seconds = flags.GetDouble("seconds", 240.0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 5));

  const TickClock clock;
  const Tick total = clock.ToTicks(seconds);
  const Tick attack_start = total / 2;

  std::printf("deployment: victim=%s + attack VM (%s at t=%.0fs) + 7 benign "
              "tenants\n\n",
              app.c_str(), eval::AttackName(attack),
              clock.ToSeconds(attack_start));

  // Profile for SDS.
  eval::ScenarioConfig base;
  base.app = app;
  detect::DetectorParams params;
  const auto clean = eval::CollectCleanSamples(base, 12000, seed + 1);
  const auto profile = detect::BuildSdsProfile(clean, params);

  // Two identically-seeded worlds, one per detector.
  eval::ScenarioConfig cfg;
  cfg.app = app;
  cfg.attack = attack;
  cfg.attack_start = attack_start;
  cfg.seed = seed;
  eval::Scenario world_sds = eval::BuildScenario(cfg);
  eval::Scenario world_ks = eval::BuildScenario(cfg);

  detect::SdsDetector sds(*world_sds.hypervisor, world_sds.victim, profile,
                          params, detect::SdsMode::kCombined);
  detect::KsTestParams ks_params;
  detect::KsTestDetector kstest(*world_ks.hypervisor, world_ks.victim,
                                ks_params);

  std::vector<TimelineEntry> timeline;
  timeline.push_back({clock.ToSeconds(attack_start),
                      std::string("ATTACK (") + eval::AttackName(attack) +
                          ") launched"});
  bool sds_state = false;
  bool ks_state = false;
  for (Tick t = 0; t < total; ++t) {
    world_sds.hypervisor->RunTick();
    sds.OnTick();
    world_ks.hypervisor->RunTick();
    kstest.OnTick();
    const double now = clock.ToSeconds(world_sds.hypervisor->now());
    if (sds.attack_active() != sds_state) {
      sds_state = sds.attack_active();
      timeline.push_back({now, sds_state ? "SDS: alarm RAISED"
                                         : "SDS: alarm cleared"});
    }
    if (kstest.attack_active() != ks_state) {
      ks_state = kstest.attack_active();
      std::string event = ks_state ? "KStest: alarm RAISED" : "KStest: alarm cleared";
      if (ks_state && kstest.identified_attacker() != 0) {
        event += " (identified VM " +
                 std::to_string(kstest.identified_attacker()) + ", '" +
                 world_ks.hypervisor->vm(kstest.identified_attacker()).name() +
                 "')";
      }
      timeline.push_back({now, event});
    }
  }

  std::sort(timeline.begin(), timeline.end(),
            [](const TimelineEntry& a, const TimelineEntry& b) {
              return a.t < b.t;
            });
  std::printf("timeline:\n");
  for (const auto& e : timeline) {
    const bool pre_attack = e.t < clock.ToSeconds(attack_start);
    std::printf("  t=%7.1fs  %s%s\n", e.t, e.event.c_str(),
                pre_attack && e.event.find("RAISED") != std::string::npos
                    ? "   <-- false positive"
                    : "");
  }
  std::printf(
      "\nthrottling performed by KStest: %llu sweeps; reference refreshes "
      "pause all co-located VMs for 1s every 30s.\n",
      static_cast<unsigned long long>(kstest.identification_sweeps()));
  return 0;
}
