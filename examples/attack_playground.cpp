// attack_playground: run any catalog application against any attack and any
// detection scheme from the command line, and dump the sampled statistics.
//
//   attack_playground --app=facenet --attack=bus-lock --seconds=120
//                     --attack-at=60 --csv   (one command line)
//
// With --csv the raw per-tick AccessNum/MissNum series is printed (one row
// per T_PCM interval) for external plotting; without it a compact summary of
// the two stages plus ASCII sparklines is shown.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/flags.h"
#include "common/types.h"
#include "detect/profile.h"
#include "eval/experiment.h"
#include "eval/scenario.h"
#include "stats/descriptive.h"
#include "workloads/catalog.h"

namespace {

sds::eval::AttackKind ParseAttack(const std::string& s) {
  if (s == "bus-lock") return sds::eval::AttackKind::kBusLock;
  if (s == "llc-cleansing") return sds::eval::AttackKind::kLlcCleansing;
  if (s == "none") return sds::eval::AttackKind::kNone;
  std::fprintf(stderr, "unknown attack '%s' (bus-lock | llc-cleansing | none)\n",
               s.c_str());
  std::exit(1);
}

void PrintStageSummary(const char* stage,
                       const std::vector<double>& access,
                       const std::vector<double>& miss) {
  std::printf("  %-12s AccessNum mean %10.1f sd %8.1f | MissNum mean %9.1f sd %7.1f\n",
              stage, sds::Mean(access), sds::StdDev(access), sds::Mean(miss),
              sds::StdDev(miss));
}

}  // namespace

int main(int argc, char** argv) {
  sds::Flags flags;
  if (!flags.Parse(argc, argv,
                   {"app", "attack", "seconds", "attack-at", "seed", "csv"})) {
    return 1;
  }
  const std::string app = flags.GetString("app", "kmeans");
  if (!sds::workloads::IsKnownApp(app)) {
    std::fprintf(stderr, "unknown app '%s'; known apps:", app.c_str());
    for (const auto& info : sds::workloads::AppCatalog()) {
      std::fprintf(stderr, " %s", info.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  const auto attack = ParseAttack(flags.GetString("attack", "bus-lock"));
  const double seconds = flags.GetDouble("seconds", 120.0);
  const double attack_at = flags.GetDouble("attack-at", seconds / 2.0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  const sds::TickClock clock;
  const sds::Tick total = clock.ToTicks(seconds);
  const sds::Tick start = clock.ToTicks(attack_at);

  const auto samples =
      sds::eval::RunMeasurementStudy(app, attack, total, start, seed);
  const auto access =
      sds::detect::ChannelSeries(samples, sds::pcm::Channel::kAccessNum);
  const auto miss =
      sds::detect::ChannelSeries(samples, sds::pcm::Channel::kMissNum);

  if (flags.GetBool("csv", false)) {
    sds::CsvWriter csv(std::cout);
    csv.Row("tick", "seconds", "access_num", "miss_num");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      csv.Row(static_cast<long long>(i), clock.ToSeconds(static_cast<sds::Tick>(i)),
              access[i], miss[i]);
    }
    return 0;
  }

  const auto split = static_cast<std::size_t>(start);
  const std::vector<double> access_before(access.begin(),
                                          access.begin() + static_cast<long>(split));
  const std::vector<double> access_after(access.begin() + static_cast<long>(split),
                                         access.end());
  const std::vector<double> miss_before(miss.begin(),
                                        miss.begin() + static_cast<long>(split));
  const std::vector<double> miss_after(miss.begin() + static_cast<long>(split),
                                       miss.end());

  std::printf("%s under %s (attack from t=%.0fs of %.0fs, seed %llu)\n",
              app.c_str(), sds::eval::AttackName(attack), attack_at, seconds,
              static_cast<unsigned long long>(seed));
  PrintStageSummary("no attack:", access_before, miss_before);
  if (attack != sds::eval::AttackKind::kNone) {
    PrintStageSummary("under attack:", access_after, miss_after);
    std::printf("  AccessNum change: %+.1f%%   MissNum change: %+.1f%%\n",
                100.0 * (sds::Mean(access_after) / sds::Mean(access_before) - 1.0),
                100.0 * (sds::Mean(miss_after) / sds::Mean(miss_before) - 1.0));
  }
  std::printf("  AccessNum  |%s|\n", sds::Sparkline(access, 100).c_str());
  std::printf("  MissNum    |%s|\n", sds::Sparkline(miss, 100).c_str());
  return 0;
}
