// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build the standard cloud deployment (victim + attacker + 7 benign
//      VMs on one simulated server).
//   2. Profile the victim application while it is known clean.
//   3. Attach the SDS detector and run: 60 s clean, then a bus locking
//      attack — and watch the alarm fire.
//   4. Read the detector's decision audit trail back out of the attached
//      telemetry handle (the same data --telemetry_out + trace_inspect use),
//      and reconstruct the incident timeline: attack -> first check ->
//      violation streak -> alarm, with the detection delay decomposed.
//   5. With the hardware attribution ledger enabled, ask the forensics
//      engine WHO did it: the alarm collapses the evidence window into a
//      ranked-suspect forensic report (DESIGN.md section 15).
//
// Build & run:  ./build/examples/quickstart
//               ./build/examples/quickstart --trace_out quickstart_trace.json
// The optional --trace_out writes a Chrome/Perfetto trace of the whole run
// (open in ui.perfetto.dev) with one track per telemetry layer plus the
// profiler's span slices.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "detect/forensics.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/scenario.h"
#include "telemetry/perfetto.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeline.h"

int main(int argc, char** argv) {
  using namespace sds;
  Flags flags;
  if (!flags.Parse(argc, argv,
                   {{"trace_out",
                     "write a Perfetto/Chrome trace JSON of the run here"}})) {
    return flags.help_requested() ? 0 : 1;
  }
  const std::string trace_out = flags.GetString("trace_out", "");
  const TickClock clock;  // 1 tick = T_PCM = 0.01 s of virtual time

  // One telemetry handle for the whole run: attaching it to the machine
  // config is the only wiring observability needs. The span profiler rides
  // on the same handle; enabling it here times every instrumented layer.
  telemetry::Telemetry telemetry;
  telemetry.profiler().Enable(telemetry::ProfileClock::kWall);

  // -- Stage 1: profile the application while the VM is known clean. ------
  eval::ScenarioConfig base;
  base.app = "kmeans";
  const auto clean_samples =
      eval::CollectCleanSamples(base, clock.ToTicks(120.0), /*seed=*/7);
  detect::DetectorParams params;  // Table 1 defaults
  const detect::SdsProfile profile =
      detect::BuildSdsProfile(clean_samples, params);
  std::printf("profiled %s: AccessNum mu=%.0f sigma=%.0f, periodic=%s\n",
              base.app.c_str(), profile.access_boundary.mean,
              profile.access_boundary.stddev,
              profile.periodic() ? "yes" : "no");

  // -- Deployment: attack VM co-located, attack launches at t=60 s. --------
  eval::ScenarioConfig cfg;
  cfg.app = "kmeans";
  cfg.attack = eval::AttackKind::kBusLock;
  cfg.attack_start = clock.ToTicks(60.0);
  cfg.seed = 42;
  cfg.machine.telemetry = &telemetry;
  // Tag inter-VM evictions and bus stalls with their culprit so the alarm
  // below can be attributed from hardware evidence (off by default; the
  // ledger never perturbs simulated timing, only records it).
  cfg.machine.attribution = true;
  eval::Scenario scenario = eval::BuildScenario(cfg);

  detect::SdsDetector detector(*scenario.hypervisor, scenario.victim, profile,
                               params, detect::SdsMode::kCombined);
  detect::ForensicsEngine forensics(*scenario.hypervisor, scenario.victim);

  // -- Run 120 s and report the first alarm. -------------------------------
  const Tick total = clock.ToTicks(120.0);
  Tick alarm_tick = kInvalidTick;
  for (Tick t = 0; t < total; ++t) {
    scenario.hypervisor->RunTick();
    detector.OnTick();
    forensics.OnTick();
    if (alarm_tick == kInvalidTick && detector.attack_active()) {
      alarm_tick = scenario.hypervisor->now();
      forensics.OnAlarm(alarm_tick);
    }
  }

  if (alarm_tick == kInvalidTick) {
    std::printf("no alarm raised — unexpected, check the configuration\n");
    return 1;
  }
  std::printf(
      "attack launched at t=%.0fs; SDS raised the alarm at t=%.1fs "
      "(detection delay %.1fs)\n",
      clock.ToSeconds(cfg.attack_start), clock.ToSeconds(alarm_tick),
      clock.ToSeconds(alarm_tick - cfg.attack_start));

  // -- Why did it fire? Ask the audit log for the decisive check. ----------
  for (const auto& rec : telemetry.audit().records()) {
    if (!rec.alarm || !rec.violation || rec.tick != alarm_tick) continue;
    std::printf(
        "decisive %s %s check on %s: value %.0f outside [%.0f, %.0f] "
        "by %.2f sigma-margins, %d consecutive violations\n",
        rec.detector, rec.check, rec.channel, rec.value, rec.lower, rec.upper,
        rec.margin, rec.consecutive);
    break;
  }

  // -- And WHO: the hardware attribution ledger's verdict. -----------------
  if (!forensics.reports().empty()) {
    detect::WriteForensicReportText(std::cout, forensics.reports().front());
    std::cout.flush();
  }

  // -- And WHEN: the reconstructed incident timeline with the detection
  // delay split into sampling wait / detector compute / debounce. ----------
  const auto incidents = telemetry::ReconstructIncidents(
      telemetry, {.attack_start = cfg.attack_start});
  telemetry::WriteIncidentReport(std::cout, incidents, telemetry);
  std::cout.flush();

  std::printf(
      "(%llu events traced, %zu decisions audited; a full JSONL stream of "
      "this is what bench --telemetry_out writes)\n",
      static_cast<unsigned long long>(telemetry.tracer().emitted()),
      telemetry.audit().size());

  if (!trace_out.empty()) {
    if (!telemetry::WritePerfettoTraceFile(telemetry, trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("perfetto trace written to %s (open in ui.perfetto.dev or "
                "chrome://tracing)\n",
                trace_out.c_str());
  }
  return 0;
}
