// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build the standard cloud deployment (victim + attacker + 7 benign
//      VMs on one simulated server).
//   2. Profile the victim application while it is known clean.
//   3. Attach the SDS detector and run: 60 s clean, then a bus locking
//      attack — and watch the alarm fire.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "eval/scenario.h"

int main() {
  using namespace sds;
  const TickClock clock;  // 1 tick = T_PCM = 0.01 s of virtual time

  // -- Stage 1: profile the application while the VM is known clean. ------
  eval::ScenarioConfig base;
  base.app = "kmeans";
  const auto clean_samples =
      eval::CollectCleanSamples(base, clock.ToTicks(120.0), /*seed=*/7);
  detect::DetectorParams params;  // Table 1 defaults
  const detect::SdsProfile profile =
      detect::BuildSdsProfile(clean_samples, params);
  std::printf("profiled %s: AccessNum mu=%.0f sigma=%.0f, periodic=%s\n",
              base.app.c_str(), profile.access_boundary.mean,
              profile.access_boundary.stddev,
              profile.periodic() ? "yes" : "no");

  // -- Deployment: attack VM co-located, attack launches at t=60 s. --------
  eval::ScenarioConfig cfg;
  cfg.app = "kmeans";
  cfg.attack = eval::AttackKind::kBusLock;
  cfg.attack_start = clock.ToTicks(60.0);
  cfg.seed = 42;
  eval::Scenario scenario = eval::BuildScenario(cfg);

  detect::SdsDetector detector(*scenario.hypervisor, scenario.victim, profile,
                               params, detect::SdsMode::kCombined);

  // -- Run 120 s and report the first alarm. -------------------------------
  const Tick total = clock.ToTicks(120.0);
  Tick alarm_tick = kInvalidTick;
  for (Tick t = 0; t < total; ++t) {
    scenario.hypervisor->RunTick();
    detector.OnTick();
    if (alarm_tick == kInvalidTick && detector.attack_active()) {
      alarm_tick = scenario.hypervisor->now();
    }
  }

  if (alarm_tick == kInvalidTick) {
    std::printf("no alarm raised — unexpected, check the configuration\n");
    return 1;
  }
  std::printf(
      "attack launched at t=%.0fs; SDS raised the alarm at t=%.1fs "
      "(detection delay %.1fs)\n",
      clock.ToSeconds(cfg.attack_start), clock.ToSeconds(alarm_tick),
      clock.ToSeconds(alarm_tick - cfg.attack_start));
  return 0;
}
